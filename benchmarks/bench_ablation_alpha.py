"""A1 — ablation: the collision-threshold percentage alpha.

DESIGN.md §7 calls out the alpha* = (z*p1 + p2)/(1+z) choice; this ablation
shows what breaks off-optimum: alpha near p2 floods the candidate set with
false positives, alpha near p1 starves recall (false negatives).

Full table:  c2lsh-harness ablation-alpha
"""

import pytest

from repro import C2LSH, PageManager
from repro.core import design_params
from repro.eval import Table, evaluate_results
from repro.hashing import PStableFamily

K = 10


def _positions(mnist):
    base = design_params(mnist.n, PStableFamily(mnist.dim, c=2), c=2)
    span = base.p1 - base.p2
    return base, [
        ("near-p2", base.p2 + 0.10 * span),
        ("optimal", base.alpha),
        ("near-p1", base.p1 - 0.10 * span),
    ]


@pytest.mark.parametrize("position", ["near-p2", "optimal", "near-p1"])
def test_query(benchmark, position, mnist):
    base, positions = _positions(mnist)
    alpha = dict(positions)[position]
    index = C2LSH(c=2, alpha=alpha, m=base.m, seed=0,
                  page_manager=PageManager()).fit(mnist.data)
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_alpha_ablation(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        base, positions = _positions(mnist)
        table = Table(["alpha", "position", "ratio", "recall", "candidates",
                       "io_pages"],
                      title=f"A1. Threshold ablation on {mnist.name} (k={K})")
        rows = {}
        for label, alpha in positions:
            index = C2LSH(c=2, alpha=alpha, m=base.m, seed=0,
                          page_manager=PageManager()).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K], true_dists[:, :K], K)
            table.add(f"{alpha:.4f}", label, f"{s.ratio:.4f}",
                      f"{s.recall:.4f}", f"{s.candidates:.0f}",
                      f"{s.io_reads:.0f}")
            rows[label] = s
        table.print()
        # Shape: a permissive threshold floods candidates; the strict one
        # verifies fewer than the permissive one.
        assert rows["near-p2"].candidates >= rows["optimal"].candidates
        assert rows["near-p1"].candidates <= rows["near-p2"].candidates

    benchmark.pedantic(run, rounds=1, iterations=1)
