"""A2 — ablation: incremental virtual rehashing vs full recounting.

DESIGN.md §7: because radius-R buckets nest, C2LSH only scans the newly
uncovered sub-ranges per radius step. This ablation re-scans everything at
every radius (same answers, strictly more I/O) to price that design choice.

Full table:  c2lsh-harness ablation-rehash
"""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.eval import Table, evaluate_results

K = 10


def _small_unit(mnist):
    """A quarter of the near-distance unit, forcing multi-round searches."""
    from repro.core.scaling import estimate_base_radius

    return estimate_base_radius(mnist.data, rng=0) / 4.0


@pytest.fixture(scope="module", params=[True, False],
                ids=["incremental", "recount"])
def index_pair(request, mnist):
    index = C2LSH(c=2, seed=0, incremental=request.param,
                  base_radius=_small_unit(mnist),
                  page_manager=PageManager()).fit(mnist.data)
    return request.param, index


def test_query(benchmark, index_pair, mnist):
    _, index = index_pair
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_rehash_ablation(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["mode", "recall", "io_pages", "scanned_entries"],
                      title=f"A2. Virtual-rehashing ablation on {mnist.name}")
        stats = {}
        answers = {}
        for label, incremental in (("incremental", True), ("recount", False)):
            index = C2LSH(c=2, seed=0, incremental=incremental,
                          page_manager=PageManager()).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K], true_dists[:, :K], K)
            table.add(label, f"{s.recall:.4f}", f"{s.io_reads:.0f}",
                      f"{s.scanned_entries:.0f}")
            stats[label] = s
            answers[label] = [r.ids for r in results]
        table.print()
        # Identical answers, strictly more work without incrementality.
        for a, b in zip(answers["incremental"], answers["recount"]):
            assert np.array_equal(a, b)
        assert stats["recount"].io_reads >= stats["incremental"].io_reads
        assert stats["recount"].scanned_entries \
            >= stats["incremental"].scanned_entries

    benchmark.pedantic(run, rounds=1, iterations=1)
