"""Adaptive vs. classic probing I/O frontier, tracked in ``BENCH_adaptive.json``.

Measures, on the paper's dataset profiles, how many pages per query the
query-adaptive probing engine (``probe="adaptive"``) reads compared to the
classic paper-exact schedule at what recall, and where a tuned multi-probe
E2LSH baseline sits on the same axes::

    python benchmarks/bench_adaptive.py            # full run + 3x gate
    python benchmarks/bench_adaptive.py --smoke    # tiny sizes, no gate

Per profile the sweep records the classic anchor, three adaptive
configurations along the savings/recall frontier (certified-exits only;
the provisional-T2 default; an aggressive provisional variant), and the
:class:`repro.baselines.MultiProbeLSH` comparison point. ``--probe``
restricts the sweep to one mode (``classic``/``adaptive``/``both``); the
probe mode is recorded next to the kernel tier in the JSON config.

Two correctness guards ship with the numbers: ``identical_contract``
asserts that adaptive mode with the early exits disabled
(``chunks=1, start_estimate=False``) is bit-identical to classic on the
gate profile — ids, distances, stats, page charges — and the non-smoke
exit code enforces ``--min-page-ratio`` (default 3x): the best adaptive
configuration must read at least that many times fewer pages per query
than classic at equal-or-better recall on the gate profile.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AdaptiveConfig, C2LSH, MultiProbeLSH, PageManager  # noqa: E402
from repro.data import load_profile  # noqa: E402
from repro.kernels import active_backend  # noqa: E402
from repro.obs import provenance  # noqa: E402

#: The frontier sweep: label -> AdaptiveConfig. Ordered from the
#: conservative certified-exits-only end to the aggressive provisional end.
CONFIGS = {
    "certified-ch16": AdaptiveConfig(chunks=16, provisional_exit=False),
    "provisional-default": AdaptiveConfig(chunks=16),
    "provisional-aggressive": AdaptiveConfig(
        chunks=16, provisional_min_frac=0.33, provisional_pool_mult=8.0),
}

STAT_FIELDS = ("rounds", "final_radius", "candidates", "scanned_entries",
               "terminated_by", "io_reads")


def _build(ds, seed):
    return C2LSH(c=2, delta=0.1, seed=seed,
                 page_manager=PageManager()).fit(ds.data)


def _recall(results, true_ids):
    hit = sum(np.intersect1d(r.ids, t).size
              for r, t in zip(results, true_ids))
    return hit / true_ids.size


def _measure(results, true_ids, n_queries):
    return {
        "pages_per_query": round(
            sum(r.stats.io_reads for r in results) / n_queries, 1),
        "recall": round(_recall(results, true_ids), 4),
        "probes_issued": int(sum(r.stats.probes_issued for r in results)),
        "probes_skipped": int(sum(r.stats.probes_skipped
                                  for r in results)),
    }


def identical_contract(ds, k, seed):
    """Bit-parity of exact-mode adaptive vs. classic on this profile."""
    classic = _build(ds, seed).query_batch(ds.queries, k=k)
    exact = _build(ds, seed).query_batch(
        ds.queries, k=k,
        probe=AdaptiveConfig(chunks=1, start_estimate=False))
    for c, a in zip(classic, exact):
        if not (np.array_equal(c.ids, a.ids)
                and np.array_equal(c.distances, a.distances)):
            return False
        if any(getattr(c.stats, f) != getattr(a.stats, f)
               for f in STAT_FIELDS):
            return False
    return True


def run_profile(name, scale, n_queries, k, seed, probe_modes):
    ds = load_profile(name, scale=scale, n_queries=n_queries, seed=0)
    true_ids, _ = ds.ground_truth(k)
    entry = {"profile": name, "n": int(ds.n), "dim": int(ds.dim),
             "queries": int(n_queries), "k": int(k), "runs": {}}

    if "classic" in probe_modes:
        index = _build(ds, seed)
        t0 = time.perf_counter()
        results = index.query_batch(ds.queries, k=k)
        entry["runs"]["classic"] = dict(
            _measure(results, true_ids, n_queries),
            seconds=round(time.perf_counter() - t0, 4))
        print(f"  {name}/classic: "
              f"{entry['runs']['classic']['pages_per_query']} pages/q, "
              f"recall {entry['runs']['classic']['recall']}")

    if "adaptive" in probe_modes:
        for label, config in CONFIGS.items():
            index = _build(ds, seed)
            t0 = time.perf_counter()
            results = index.query_batch(ds.queries, k=k, probe=config)
            entry["runs"][label] = dict(
                _measure(results, true_ids, n_queries),
                seconds=round(time.perf_counter() - t0, 4))
            print(f"  {name}/{label}: "
                  f"{entry['runs'][label]['pages_per_query']} pages/q, "
                  f"recall {entry['runs'][label]['recall']}")

    # Multi-probe E2LSH comparison point (independent baseline, always
    # classic-probed — it has no adaptive mode).
    baseline = MultiProbeLSH(K=8, L=8, n_probes=16, seed=seed,
                             page_manager=PageManager()).fit(ds.data)
    results = baseline.query_batch(ds.queries, k=k)
    entry["runs"]["multiprobe-e2lsh"] = {
        "pages_per_query": round(
            sum(r.stats.io_reads for r in results) / n_queries, 1),
        "recall": round(_recall(results, true_ids), 4),
    }
    print(f"  {name}/multiprobe-e2lsh: "
          f"{entry['runs']['multiprobe-e2lsh']['pages_per_query']} "
          f"pages/q, recall {entry['runs']['multiprobe-e2lsh']['recall']}")

    classic = entry["runs"].get("classic")
    if classic:
        for label in CONFIGS:
            run = entry["runs"].get(label)
            if run and run["pages_per_query"] > 0:
                run["pages_ratio_vs_classic"] = round(
                    classic["pages_per_query"] / run["pages_per_query"],
                    3)
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="profile subsample fraction")
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--profiles", nargs="+",
                        default=["nus", "mnist"],
                        help="dataset profiles; the first is the gate "
                             "profile")
    parser.add_argument("--probe", choices=["classic", "adaptive", "both"],
                        default="both",
                        help="which probing modes to sweep")
    parser.add_argument("--min-page-ratio", type=float, default=3.0,
                        help="gate: best adaptive config must read this "
                             "many times fewer pages than classic at "
                             "equal-or-better recall")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_adaptive.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, contract check only, no gate")
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.queries = 0.02, 6
        args.profiles = args.profiles[:1]

    probe_modes = (("classic", "adaptive") if args.probe == "both"
                   else (args.probe,))

    profiles = [run_profile(name, args.scale, args.queries, args.k,
                            args.seed, probe_modes)
                for name in args.profiles]

    gate = load_profile(args.profiles[0], scale=args.scale,
                        n_queries=args.queries, seed=0)
    contract_ok = identical_contract(gate, args.k, args.seed)
    print(f"identical_contract({args.profiles[0]}): {contract_ok}")

    result = {
        "config": {
            "scale": args.scale, "queries": args.queries, "k": args.k,
            "seed": args.seed, "profiles": args.profiles,
            "probe": args.probe,
            "gate_profile": args.profiles[0],
            "min_page_ratio": args.min_page_ratio,
            "adaptive_configs": {
                label: {
                    "chunks": cfg.chunks,
                    "start_estimate": cfg.start_estimate,
                    "ordered_probes": cfg.ordered_probes,
                    "early_exit": cfg.early_exit,
                    "provisional_exit": cfg.provisional_exit,
                    "provisional_min_frac": cfg.provisional_min_frac,
                    "provisional_pool_mult": cfg.provisional_pool_mult,
                } for label, cfg in CONFIGS.items()
            },
        },
        "kernels": active_backend(),
        "profiles": profiles,
        "identical_contract": contract_ok,
        "smoke": args.smoke,
    }

    failures = []
    if not contract_ok:
        failures.append("exact-mode adaptive is not bit-identical to "
                        "classic on the gate profile")
    if not args.smoke and args.probe == "both":
        runs = profiles[0]["runs"]
        classic = runs["classic"]
        best = max(
            (runs[label] for label in CONFIGS
             if label in runs
             and runs[label]["recall"] >= classic["recall"]),
            key=lambda r: r.get("pages_ratio_vs_classic", 0.0),
            default=None)
        ratio = (best or {}).get("pages_ratio_vs_classic", 0.0)
        result["gate"] = {
            "pages_ratio": ratio,
            "classic_recall": classic["recall"],
            "passed": ratio >= args.min_page_ratio,
        }
        print(f"gate: best adaptive config reads {ratio:.2f}x fewer "
              f"pages at recall >= classic "
              f"({classic['recall']})")
        if ratio < args.min_page_ratio:
            failures.append(
                f"pages ratio {ratio:.2f}x below {args.min_page_ratio}x "
                f"on {args.profiles[0]}")

    result["provenance"] = provenance()
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
