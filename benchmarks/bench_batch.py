"""Sequential-vs-batch query throughput, tracked in ``BENCH_batch.json``.

The lockstep batch engine (:mod:`repro.core.batchengine`) promises the
same answers as a plain :meth:`C2LSH.query` loop at a multiple of the
throughput. This script measures both paths on the standard synthetic
profile (standard-normal points, default n=10k, dim=32, Q=64), checks the
results really are identical, and writes the numbers to a JSON file so the
speedup is tracked across future changes::

    python benchmarks/bench_batch.py                # full run, ~10 s
    python benchmarks/bench_batch.py --smoke        # small sizes for CI

The batch path is expected to reach at least ``--min-speedup`` (default
3.0) times the sequential queries/sec at the full size; the exit code
reflects it so CI can gate on regressions. ``--smoke`` checks only
equivalence — tiny workloads leave no room for the batch win.

``--backend`` pins the kernel tier (:mod:`repro.kernels`) for the timed
region: ``numpy`` or ``numba`` force that tier, ``auto`` (default) takes
the import-time selection, and ``both`` runs the whole measurement once
per installed tier and records them side by side under ``"tiers"`` —
answers must be identical across tiers as well as across paths. Every
result is stamped with the active tier (``"kernels"``), and
``repro.kernels.warmup()`` runs before timing so numba's one-off JIT
compilation never lands inside the measured region.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import C2LSH, kernels  # noqa: E402
from repro.kernels import KernelBackendError  # noqa: E402
from repro.obs import Histogram, provenance  # noqa: E402


def _latency_summary(results):
    """p50/p95/p99 per-query latency (ms) from ``QueryStats.elapsed_s``.

    Only meaningful for the sequential path, where each query is timed
    individually. Batch-path queries are stamped when their radius round
    terminates, measured from the *batch* start — nearly one identical
    wall-clock value per batch, so percentiles over them are noise; the
    batch section reports ``amortized_ms`` (batch seconds / Q) instead.
    """
    hist = Histogram("latency.seconds")
    for r in results:
        hist.observe(r.stats.elapsed_s)
    snap = hist.snapshot()
    return {
        "p50_ms": round(snap["p50"] * 1e3, 4),
        "p95_ms": round(snap["p95"] * 1e3, 4),
        "p99_ms": round(snap["p99"] * 1e3, 4),
        "mean_ms": round(snap["mean"] * 1e3, 4),
        "max_ms": round(snap["max"] * 1e3, 4),
    }


def run_once(n, dim, n_queries, k, seed, n_jobs):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, dim))
    queries = rng.standard_normal((n_queries, dim))

    index = C2LSH(seed=seed).fit(data)
    # Warm both paths so neither pays first-call costs (JIT compilation on
    # the numba tier, lazy rank matrix, numpy internals) inside the timed
    # region.
    kernels.warmup()
    index.query(queries[0], k=k)
    index.query_batch(queries[:2], k=k)

    t0 = time.perf_counter()
    seq = [index.query(q, k=k) for q in queries]
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    bat = index.query_batch(queries, k=k, n_jobs=n_jobs)
    t_bat = time.perf_counter() - t0

    identical = all(
        np.array_equal(s.ids, b.ids)
        and np.array_equal(s.distances, b.distances)
        and s.stats.terminated_by == b.stats.terminated_by
        for s, b in zip(seq, bat)
    )
    return {
        "config": {"n": n, "dim": dim, "queries": n_queries, "k": k,
                   "seed": seed, "n_jobs": n_jobs},
        "kernels": kernels.active_backend(),
        "sequential": {"seconds": round(t_seq, 4),
                       "queries_per_sec": round(n_queries / t_seq, 2),
                       "latency": _latency_summary(seq)},
        "batch": {"seconds": round(t_bat, 4),
                  "queries_per_sec": round(n_queries / t_bat, 2),
                  "amortized_ms": round(t_bat / n_queries * 1e3, 4)},
        "speedup": round(t_seq / t_bat, 3),
        "identical_results": identical,
    }


def _print_run(result):
    """Human-readable summary of one run_once() result."""
    lat = result["sequential"]["latency"]
    print(f"kernels:    {result['kernels']['backend']}")
    print(f"{'sequential:':<12}{result['sequential']['seconds']:.3f}s "
          f"({result['sequential']['queries_per_sec']:.1f} q/s)  "
          f"p50={lat['p50_ms']:.2f}ms p95={lat['p95_ms']:.2f}ms "
          f"p99={lat['p99_ms']:.2f}ms")
    print(f"{'batch:':<12}{result['batch']['seconds']:.3f}s "
          f"({result['batch']['queries_per_sec']:.1f} q/s)  "
          f"amortized={result['batch']['amortized_ms']:.2f}ms/query")
    print(f"speedup:    {result['speedup']:.2f}x  "
          f"identical={result['identical_results']}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-jobs", type=int, default=None,
                        help="thread pool size for distance verification")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "numpy", "numba", "both"],
                        help="kernel tier to measure (both = one run per "
                             "installed tier, recorded under 'tiers')")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_batch.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, equivalence check only (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.dim, args.queries = 1500, 16, 12

    print(f"n={args.n} dim={args.dim} Q={args.queries} k={args.k}")

    if args.backend == "both":
        tiers = {}
        for name in ("numpy", "numba"):
            try:
                kernels.select(name)
            except KernelBackendError as exc:
                tiers[name] = {"available": False, "reason": str(exc)}
                print(f"[{name}] unavailable: {exc}")
                continue
            print(f"[{name}]")
            entry = run_once(args.n, args.dim, args.queries, args.k,
                             args.seed, args.n_jobs)
            entry["available"] = True
            tiers[name] = entry
            _print_run(entry)
        kernels.select(None)  # restore the environment's own choice
        ran = [t for t in tiers.values() if t.get("available")]
        # Headline numbers come from the fastest tier that actually ran,
        # so the gate below keeps meaning "best configuration regressed".
        result = dict(max(ran, key=lambda t: t["speedup"]))
        result["tiers"] = tiers
        result["identical_results"] = all(t["identical_results"]
                                          for t in ran)
        if len(ran) == 2:
            ratio = (tiers["numba"]["batch"]["queries_per_sec"]
                     / tiers["numpy"]["batch"]["queries_per_sec"])
            result["numba_batch_speedup"] = round(ratio, 3)
            print(f"numba/numpy batch throughput: {ratio:.2f}x")
    else:
        kernels.select(None if args.backend == "auto" else args.backend)
        result = run_once(args.n, args.dim, args.queries, args.k,
                          args.seed, args.n_jobs)
        _print_run(result)
    result["smoke"] = args.smoke
    # Environment stamp: BENCH files are only comparable (see
    # ``python -m repro.obs diff``) across matching provenance.
    result["provenance"] = provenance()

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not result["identical_results"]:
        print("FAIL: batch results differ from sequential", file=sys.stderr)
        return 1
    if not args.smoke and result["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x below "
              f"{args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
