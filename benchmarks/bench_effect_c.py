"""F4 — effect of the approximation ratio c.

Regenerates the paper's c-sensitivity figure: c=3 needs far fewer hash
tables (cheaper index and queries) but admits a looser c^2 = 9 guarantee;
c=2 pays more for tighter answers.

Full figure:  c2lsh-harness effect-c
"""

import pytest

from repro import C2LSH, PageManager
from repro.eval import Table, evaluate_results

K = 10


@pytest.fixture(scope="module", params=[2, 3])
def c2lsh_at_c(request, mnist):
    c = request.param
    index = C2LSH(c=c, seed=0, page_manager=PageManager()).fit(mnist.data)
    return c, index


def test_query(benchmark, c2lsh_at_c, mnist):
    _, index = c2lsh_at_c
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_effect_of_c(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["c", "m", "l", "ratio", "recall", "io_pages",
                       "candidates"],
                      title=f"F4. Effect of c on {mnist.name} (k={K})")
        stats = {}
        for c in (2, 3):
            index = C2LSH(c=c, seed=0,
                          page_manager=PageManager()).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K], true_dists[:, :K], K)
            table.add(c, index.params.m, index.params.l, f"{s.ratio:.4f}",
                      f"{s.recall:.4f}", f"{s.io_reads:.0f}",
                      f"{s.candidates:.0f}")
            stats[c] = (index.params.m, s)
        table.print()
        # Shape: larger c => fewer tables; accuracy may only degrade.
        assert stats[3][0] < stats[2][0]
        assert stats[3][1].ratio >= stats[2][1].ratio - 0.01

    benchmark.pedantic(run, rounds=1, iterations=1)
