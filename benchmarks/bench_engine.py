"""E3 — substrate micro-benchmarks: the hot paths under the indexes.

Performance-regression tracking for the primitives everything else is
built on: the lockstep binary search, one radius expansion of the counting
engine, Z-order interleaving, the B+-tree descent, and the external sort.
These are the paths the repro band flagged ("hashing loops slow without C
extensions") — keeping them measured keeps them honest.
"""

import numpy as np
import pytest

from repro.core.batchengine import BatchQueryCounter
from repro.core.counting import CollisionCounter
from repro.storage import BPlusTree, PageManager
from repro.storage.extsort import ExternalSorter
from repro.storage.vsearch import row_searchsorted
from repro.storage.zorder import interleave, llcp

N, M = 20_000, 200
Q = 64  # batch width for the lockstep-engine benchmarks


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    bucket_ids = rng.integers(-500, 500, size=(N, M))
    counter = CollisionCounter(bucket_ids)
    qids = rng.integers(-500, 500, size=M)
    return counter, qids


def test_row_searchsorted(benchmark, engine):
    counter, qids = engine
    result = benchmark(
        lambda: row_searchsorted(counter.sorted_ids, qids, side="left"))
    assert result.shape == (M,)


def test_expand_first_round(benchmark, engine):
    counter, qids = engine

    def first_round():
        qc = counter.start_query(qids)
        return qc.expand(1)

    touched = benchmark(first_round)
    assert touched.size >= 0


def test_expand_full_walk(benchmark, engine):
    counter, qids = engine

    def walk():
        qc = counter.start_query(qids)
        radius = 1
        while not qc.exhausted and radius < 2 ** 20:
            qc.expand(radius)
            radius *= 2
        return qc.counts

    counts = benchmark.pedantic(walk, rounds=3, iterations=1)
    assert counts.max() <= M


def test_row_searchsorted_batched(benchmark, engine):
    """All Q x M binary searches of a batch round in one call."""
    counter, _ = engine
    rng = np.random.default_rng(4)
    targets = rng.integers(-500, 500, size=(Q, M))
    result = benchmark(
        lambda: row_searchsorted(counter.sorted_ids, targets, side="left"))
    assert result.shape == (Q, M)


def test_batch_expand_first_round(benchmark, engine):
    """One lockstep radius round for a whole batch of queries."""
    counter, _ = engine
    rng = np.random.default_rng(5)
    qids = rng.integers(-500, 500, size=(Q, M))
    active = np.arange(Q)

    def first_round():
        bc = BatchQueryCounter(counter, qids)
        return bc.expand(1, active)

    scanned, _ = benchmark.pedantic(first_round, rounds=3, iterations=1)
    assert scanned.shape == (Q,)


def test_zorder_interleave(benchmark):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2 ** 10, size=(N, 8))
    codes = benchmark.pedantic(lambda: interleave(values, 10), rounds=3,
                               iterations=1)
    assert codes.shape[0] == N


def test_zorder_llcp(benchmark):
    rng = np.random.default_rng(2)
    values = rng.integers(0, 2 ** 10, size=(N, 8))
    codes = interleave(values, 10)
    lengths = benchmark(lambda: llcp(codes, codes[0], 80))
    assert lengths[0] == 80


def test_btree_search(benchmark):
    tree = BPlusTree(list(range(N)), list(range(N)), leaf_capacity=341,
                     fanout=256)
    positions = benchmark(lambda: [tree.search_position(k)
                                   for k in range(0, N, 997)])
    assert positions[0] == 0


def test_external_sort(benchmark):
    rng = np.random.default_rng(3)
    keys = rng.integers(-10**6, 10**6, size=N)
    sorter = ExternalSorter(PageManager(), memory_pages=8)
    order = benchmark.pedantic(lambda: sorter.sorted_order(keys), rounds=3,
                               iterations=1)
    assert np.array_equal(order, np.argsort(keys, kind="stable"))
