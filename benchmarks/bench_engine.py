"""E3 — substrate micro-benchmarks: the hot paths under the indexes.

Performance-regression tracking for the primitives everything else is
built on: the lockstep binary search, one radius expansion of the counting
engine, Z-order interleaving, the B+-tree descent, and the external sort.
These are the paths the repro band flagged ("hashing loops slow without C
extensions") — keeping them measured keeps them honest.
"""

import numpy as np
import pytest

from repro import C2LSH, FaultInjector, QueryBudget
from repro.core.batchengine import BatchQueryCounter
from repro.core.counting import CollisionCounter
from repro.obs import SnapshotSink, tracing
from repro.storage import BPlusTree, PageManager
from repro.storage.extsort import ExternalSorter
from repro.storage.vsearch import row_searchsorted
from repro.storage.zorder import interleave, llcp

N, M = 20_000, 200
Q = 64  # batch width for the lockstep-engine benchmarks


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(0)
    bucket_ids = rng.integers(-500, 500, size=(N, M))
    counter = CollisionCounter(bucket_ids)
    qids = rng.integers(-500, 500, size=M)
    return counter, qids


def test_row_searchsorted(benchmark, engine):
    counter, qids = engine
    result = benchmark(
        lambda: row_searchsorted(counter.sorted_ids, qids, side="left"))
    assert result.shape == (M,)


def test_expand_first_round(benchmark, engine):
    counter, qids = engine

    def first_round():
        qc = counter.start_query(qids)
        return qc.expand(1)

    touched = benchmark(first_round)
    assert touched.size >= 0


def test_expand_full_walk(benchmark, engine):
    counter, qids = engine

    def walk():
        qc = counter.start_query(qids)
        radius = 1
        while not qc.exhausted and radius < 2 ** 20:
            qc.expand(radius)
            radius *= 2
        return qc.counts

    counts = benchmark.pedantic(walk, rounds=3, iterations=1)
    assert counts.max() <= M


def test_row_searchsorted_batched(benchmark, engine):
    """All Q x M binary searches of a batch round in one call."""
    counter, _ = engine
    rng = np.random.default_rng(4)
    targets = rng.integers(-500, 500, size=(Q, M))
    result = benchmark(
        lambda: row_searchsorted(counter.sorted_ids, targets, side="left"))
    assert result.shape == (Q, M)


def test_batch_expand_first_round(benchmark, engine):
    """One lockstep radius round for a whole batch of queries."""
    counter, _ = engine
    rng = np.random.default_rng(5)
    qids = rng.integers(-500, 500, size=(Q, M))
    active = np.arange(Q)

    def first_round():
        bc = BatchQueryCounter(counter, qids)
        return bc.expand(1, active)

    scanned, _ = benchmark.pedantic(first_round, rounds=3, iterations=1)
    assert scanned.shape == (Q,)


def test_zorder_interleave(benchmark):
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2 ** 10, size=(N, 8))
    codes = benchmark.pedantic(lambda: interleave(values, 10), rounds=3,
                               iterations=1)
    assert codes.shape[0] == N


def test_zorder_llcp(benchmark):
    rng = np.random.default_rng(2)
    values = rng.integers(0, 2 ** 10, size=(N, 8))
    codes = interleave(values, 10)
    lengths = benchmark(lambda: llcp(codes, codes[0], 80))
    assert lengths[0] == 80


def test_btree_search(benchmark):
    tree = BPlusTree(list(range(N)), list(range(N)), leaf_capacity=341,
                     fanout=256)
    positions = benchmark(lambda: [tree.search_position(k)
                                   for k in range(0, N, 997)])
    assert positions[0] == 0


def test_external_sort(benchmark):
    rng = np.random.default_rng(3)
    keys = rng.integers(-10**6, 10**6, size=N)
    sorter = ExternalSorter(PageManager(), memory_pages=8)
    order = benchmark.pedantic(lambda: sorter.sorted_order(keys), rounds=3,
                               iterations=1)
    assert np.array_equal(order, np.argsort(keys, kind="stable"))


@pytest.fixture(scope="module")
def fitted_index():
    """A fitted C2LSH index plus one warm query for the tracing overhead
    pair below."""
    rng = np.random.default_rng(6)
    data = rng.standard_normal((5_000, 24))
    index = C2LSH(seed=0).fit(data)
    query = rng.standard_normal(24)
    index.query(query, k=10)  # warm lazy state outside the timed region
    return index, query


def test_query_untraced(benchmark, fitted_index):
    """Baseline full-query latency with telemetry disabled (the default).

    Pairs with :func:`test_query_traced`; the gap between the two is the
    observability overhead, which the obs subsystem promises stays
    negligible when no trace is active.
    """
    index, query = fitted_index
    result = benchmark(lambda: index.query(query, k=10))
    assert result.ids.size > 0


def test_query_traced(benchmark, fitted_index):
    """Full-query latency under an active SnapshotSink trace."""
    index, query = fitted_index

    def traced():
        with tracing(SnapshotSink(), keep_events=False):
            return index.query(query, k=10)

    result = benchmark(traced)
    assert result.ids.size > 0


@pytest.fixture(scope="module")
def accounted_index():
    """A fitted index *with* page accounting, for the reliability pair.

    The fault-injection hook lives on the page manager's charge path, so
    the unguarded baseline needs a page manager too — otherwise the pair
    would measure accounting cost, not guard cost.
    """
    rng = np.random.default_rng(7)
    data = rng.standard_normal((5_000, 24))
    query = rng.standard_normal(24)

    plain = C2LSH(seed=0, page_manager=PageManager()).fit(data)
    guarded_pm = PageManager(fault_injector=FaultInjector())
    guarded = C2LSH(seed=0, page_manager=guarded_pm).fit(data)
    plain.query(query, k=10)
    guarded.query(query, k=10)
    return plain, guarded, query


def test_query_unguarded(benchmark, accounted_index):
    """Baseline accounted-query latency without any reliability hooks.

    Pairs with :func:`test_query_guarded`; the gap is the cost of the
    no-fault fault-injector consult plus a generous (never-binding) query
    budget, which the reliability layer promises stays within a couple of
    percent.
    """
    plain, _, query = accounted_index
    result = benchmark(lambda: plain.query(query, k=10))
    assert result.ids.size > 0


def test_query_guarded(benchmark, accounted_index):
    """Accounted-query latency with an idle injector and a slack budget."""
    _, guarded, query = accounted_index
    budget = QueryBudget(deadline_s=3600.0, max_io_pages=10**9,
                         max_candidates=10**9)
    result = benchmark(lambda: guarded.query(query, k=10, budget=budget))
    assert result.ids.size > 0
    assert not result.stats.degraded
