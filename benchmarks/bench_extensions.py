"""E1 — extensions: QALSH, Multi-Probe LSH, and the l1 (Cauchy) family.

Beyond the 2012 paper's own experiments, this module measures the
extension modules DESIGN.md §7 lists against baseline C2LSH under the same
cost model:

* QALSH's query-aware windows need ~2.6x fewer tables for equal recall;
* Multi-Probe LSH matches many-table E2LSH with a fraction of the index;
* the 1-stable (Cauchy) family runs C2LSH over Manhattan distance with
  virtual rehashing intact.
"""

import numpy as np
import pytest

from repro import C2LSH, MultiProbeLSH, PageManager, QALSH
from repro.data import exact_knn
from repro.eval import Table, evaluate_results
from repro.hashing import CauchyFamily

K = 10


@pytest.fixture(scope="module")
def l1_truth(mnist):
    return exact_knn(mnist.data, mnist.queries, K, metric="manhattan")


@pytest.mark.parametrize("method", ["c2lsh", "qalsh", "mplsh", "l1-c2lsh"])
def test_query(benchmark, method, mnist):
    index = {
        "c2lsh": lambda: C2LSH(c=2, seed=0),
        "qalsh": lambda: QALSH(c=2, seed=0),
        "mplsh": lambda: MultiProbeLSH(K=8, L=8, n_probes=16, seed=0),
        "l1-c2lsh": lambda: C2LSH(family=CauchyFamily(mnist.dim, c=2),
                                  c=2, seed=0),
    }[method]().fit(mnist.data)
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_extension_comparison(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(
            ["method", "tables", "index_pages", "ratio", "recall",
             "io_pages", "candidates"],
            title=f"E1. Extensions vs C2LSH on {mnist.name} (k={K})",
        )
        rows = {}
        for name, factory in (
            ("c2lsh", lambda pm: C2LSH(c=2, seed=0, page_manager=pm)),
            ("qalsh", lambda pm: QALSH(c=2, seed=0, page_manager=pm)),
            ("mplsh", lambda pm: MultiProbeLSH(K=8, L=8, n_probes=16,
                                               seed=0, page_manager=pm)),
        ):
            pm = PageManager()
            index = factory(pm).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K],
                                 true_dists[:, :K], K)
            tables = index.params.m if name == "c2lsh" else \
                (index.m if name == "qalsh" else index.L)
            table.add(name, tables, index.index_pages(), f"{s.ratio:.4f}",
                      f"{s.recall:.4f}", f"{s.io_reads:.0f}",
                      f"{s.candidates:.0f}")
            rows[name] = (tables, s)
        table.print()
        # QALSH's published improvement: fewer tables, no recall collapse.
        assert rows["qalsh"][0] < rows["c2lsh"][0]
        assert rows["qalsh"][1].recall >= rows["c2lsh"][1].recall - 0.1

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_print_l1_family(benchmark, mnist, l1_truth):
    def run():
        true_ids, true_dists = l1_truth
        index = C2LSH(family=CauchyFamily(mnist.dim, c=2), c=2,
                      seed=0, page_manager=PageManager()).fit(mnist.data)
        results = index.query_batch(mnist.queries, k=K)
        s = evaluate_results(results, true_ids, true_dists, K)
        table = Table(["family", "metric", "ratio", "recall", "candidates"],
                      title="E1b. l1 (Cauchy) family under C2LSH")
        table.add("cauchy", "manhattan", f"{s.ratio:.4f}",
                  f"{s.recall:.4f}", f"{s.candidates:.0f}")
        table.print()
        assert s.recall > 0.8
        assert s.ratio < 1.1

    benchmark.pedantic(run, rounds=1, iterations=1)
