"""T2 — index size and build time for every method.

Regenerates the paper's index-overhead table: C2LSH's m single-function
tables against LSB-forest's trees and E2LSH's compound tables, all priced
by the same PageManager.

Full table:  c2lsh-harness table-index
"""

import pytest

from repro import C2LSH, E2LSH, LSBForest, PageManager, QALSH
from repro.eval import Table


def _factories():
    return {
        "c2lsh": lambda pm: C2LSH(c=2, seed=0, page_manager=pm),
        "qalsh": lambda pm: QALSH(c=2, seed=0, page_manager=pm),
        "lsb": lambda pm: LSBForest(n_trees=10, seed=0, page_manager=pm),
        "e2lsh": lambda pm: E2LSH(K=8, L=64, seed=0, page_manager=pm),
    }


@pytest.mark.parametrize("method", sorted(_factories()))
def test_build(benchmark, method, mnist):
    factory = _factories()[method]

    def build():
        return factory(PageManager()).fit(mnist.data)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert index.index_pages() > 0


def test_print_index_size_table(benchmark, mnist):
    def run():
        table = Table(["method", "index_pages", "note"],
                      title=f"T2. Index sizes on {mnist.name} (n={mnist.n})")
        for name, factory in _factories().items():
            index = factory(PageManager()).fit(mnist.data)
            table.add(name, index.index_pages(), "built")
        K_th, L_th = E2LSH.theoretical_parameters(mnist.n)
        m_th, L_lsb = LSBForest.theoretical_parameters(mnist.n, mnist.dim)
        pm = PageManager()
        per_table = pm.pages_for(mnist.n, 12)
        table.add("e2lsh(theory)", L_th * per_table, f"K={K_th} L={L_th}")
        table.add("lsb(theory)", L_lsb * per_table, f"m={m_th} L={L_lsb}")
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_c2lsh_smaller_than_theoretical_forests(benchmark):
    """The paper's index-size claim: at million-point scale, C2LSH's
    m ~ log n tables undercut E2LSH's L ~ n^rho tables (each table holds
    one entry per point, so table counts compare index sizes)."""
    def run():
        from repro.core import design_params
        from repro.hashing import PStableFamily

        n = 1_000_000
        m = design_params(n, PStableFamily(50, c=2), c=2).m
        _, L_th = E2LSH.theoretical_parameters(n)
        assert m < L_th

    benchmark.pedantic(run, rounds=1, iterations=1)
