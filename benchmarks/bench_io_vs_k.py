"""F2 — I/O cost (pages read per query) vs k.

Regenerates the paper's efficiency figure under the shared page-cost model:
C2LSH's I/O grows gently with k and sits below the linear scan at scale,
while LSB-forest trades I/O against its coarser accuracy.

Full figure:  c2lsh-harness vs-k
"""

import pytest

from repro.eval import Table, evaluate_results

KS = (1, 10, 20, 50, 100)


@pytest.mark.parametrize("method", ["c2lsh", "qalsh", "lsb", "linear"])
def test_query_io_at_k10(benchmark, method, mnist, mnist_indexes):
    index = mnist_indexes[method]
    q = mnist.queries[0]

    def one_query():
        return index.query(q, k=10)

    result = benchmark(one_query)
    assert result.stats.io_reads > 0


def test_print_io_vs_k(benchmark, mnist, mnist_indexes, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["method", "k", "io_pages", "candidates"],
                      title=f"F2. I/O cost vs k on {mnist.name}")
        io = {}
        for name, index in mnist_indexes.items():
            for k in KS:
                results = index.query_batch(mnist.queries, k=k)
                s = evaluate_results(results, true_ids[:, :k],
                                     true_dists[:, :k], k)
                table.add(name, k, f"{s.io_reads:.0f}", f"{s.candidates:.0f}")
                io[(name, k)] = s.io_reads
        table.print()
        # Shape: I/O is non-decreasing in k for the counting methods, and the
        # linear scan's I/O is flat.
        for name in ("c2lsh", "qalsh"):
            assert io[(name, 100)] >= io[(name, 1)]
        assert io[("linear", 1)] == io[("linear", 100)]

    benchmark.pedantic(run, rounds=1, iterations=1)
