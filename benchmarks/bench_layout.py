"""A5 — ablation: raw-vector file layout (verification locality).

LSH candidates are spatially clustered by construction; laying the data
file out along a Z-order curve lets one page read serve several verified
candidates. This bench prices the three layouts of
:class:`repro.storage.DataFile` under identical answers.

Full table:  c2lsh-harness layout
"""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.eval import Table, evaluate_results

K = 10
LAYOUTS = ("scattered", "id", "zorder")


@pytest.fixture(scope="module", params=LAYOUTS)
def layout_index(request, mnist):
    index = C2LSH(c=2, seed=0, data_layout=request.param,
                  page_manager=PageManager()).fit(mnist.data)
    return request.param, index


def test_query(benchmark, layout_index, mnist):
    _, index = layout_index
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_layout_ablation(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["layout", "recall", "io_pages", "candidates"],
                      title=f"A5. Data-file layout on {mnist.name} (k={K})")
        io = {}
        answers = {}
        for layout in LAYOUTS:
            index = C2LSH(c=2, seed=0, data_layout=layout,
                          page_manager=PageManager()).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K],
                                 true_dists[:, :K], K)
            table.add(layout, f"{s.recall:.4f}", f"{s.io_reads:.0f}",
                      f"{s.candidates:.0f}")
            io[layout] = s.io_reads
            answers[layout] = [r.ids for r in results]
        table.print()
        # Identical answers; locality only ever lowers the bill.
        for a, b in zip(answers["scattered"], answers["zorder"]):
            assert np.array_equal(a, b)
        assert io["id"] <= io["scattered"]
        assert io["zorder"] <= io["id"] + 1

    benchmark.pedantic(run, rounds=1, iterations=1)
