"""T1 — parameter table: cost of deriving (w, p1, p2, alpha, m, l).

Regenerates the paper's parameter-settings table and benchmarks the
parameter machinery itself (it runs on every index build).

Full table:  c2lsh-harness table-params
"""

import pytest

from repro.core import design_params
from repro.eval import Table
from repro.hashing import PStableFamily


@pytest.mark.parametrize("c", [2, 3])
def test_design_params(benchmark, c, mnist):
    family = PStableFamily(mnist.dim, c=c)
    params = benchmark(design_params, mnist.n, family, c)
    assert 1 <= params.l <= params.m
    assert params.p2 < params.alpha < params.p1


def test_print_parameter_table(benchmark, mnist, color):
    """Emit the T1 rows for the record (captured by pytest unless -s)."""
    def run():
        table = Table(["dataset", "n", "c", "w", "p1", "p2", "alpha", "m", "l"],
                      title="T1. C2LSH parameters")
        for ds in (mnist, color):
            for c in (2, 3):
                p = design_params(ds.n, PStableFamily(ds.dim, c=c), c=c)
                table.add(ds.name, ds.n, c, f"{p.w:.3f}", f"{p.p1:.4f}",
                          f"{p.p2:.4f}", f"{p.alpha:.4f}", p.m, p.l)
        table.print()

    benchmark.pedantic(run, rounds=1, iterations=1)
