"""F1 — overall ratio vs k for every method.

Regenerates the paper's accuracy figure: C2LSH's ratio stays near 1.0 and
below LSB-forest's across k, with the exact scan as the 1.0 floor.

Full figure:  c2lsh-harness vs-k
"""

import pytest

from repro.eval import Table, evaluate_results

KS = (1, 10, 20, 50, 100)


@pytest.mark.parametrize("method", ["c2lsh", "qalsh", "lsb", "e2lsh",
                                    "linear"])
def test_query_at_k10(benchmark, method, mnist, mnist_indexes):
    """Benchmark one k=10 query per method (the figure's midpoint)."""
    index = mnist_indexes[method]
    queries = mnist.queries
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % queries.shape[0]]
        state["i"] += 1
        return index.query(q, k=10)

    result = benchmark(one_query)
    assert len(result) <= 10


def test_print_ratio_vs_k(benchmark, mnist, mnist_indexes, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["method", "k", "ratio", "recall"],
                      title=f"F1. Overall ratio vs k on {mnist.name}")
        ratios = {}
        for name, index in mnist_indexes.items():
            for k in KS:
                results = index.query_batch(mnist.queries, k=k)
                s = evaluate_results(results, true_ids[:, :k],
                                     true_dists[:, :k], k)
                table.add(name, k, f"{s.ratio:.4f}", f"{s.recall:.4f}")
                ratios[(name, k)] = s.ratio
        table.print()
        # Shape assertions from the paper: exact scan is the floor and C2LSH
        # is at least as accurate as LSB-forest at every k.
        for k in KS:
            assert ratios[("linear", k)] == pytest.approx(1.0)
            assert ratios[("c2lsh", k)] <= ratios[("lsb", k)] + 0.05
            assert ratios[("c2lsh", k)] < 4.0  # the c^2 guarantee, c=2

    benchmark.pedantic(run, rounds=1, iterations=1)
