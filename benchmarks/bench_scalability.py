"""A3 — scalability in n and dim.

Regenerates the scalability study on controlled synthetic clusters: C2LSH's
verified-candidate count grows sub-linearly in n (the dynamic counting
claim), while the linear scan grows linearly by construction.

Full table:  c2lsh-harness scalability
"""

import pytest

from repro import C2LSH, LinearScan, PageManager
from repro.data import exact_knn, gaussian_clusters, split_queries
from repro.eval import Table, evaluate_results

K = 10
N_GRID = (2_000, 4_000, 8_000)
D_GRID = (16, 64)
N_QUERIES = 10


def _make(n, dim, seed=0):
    raw = gaussian_clusters(n + N_QUERIES, dim, n_clusters=20,
                            cluster_std=1.5, spread=10.0, seed=seed)
    return split_queries(raw, N_QUERIES, seed=seed + 1)


@pytest.mark.parametrize("n", N_GRID)
def test_build_scaling(benchmark, n):
    data, _ = _make(n, 32)

    def build():
        return C2LSH(c=2, seed=0).fit(data)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert index.is_fitted


@pytest.mark.parametrize("dim", D_GRID)
def test_query_scaling_in_dim(benchmark, dim):
    data, queries = _make(4_000, dim)
    index = C2LSH(c=2, seed=0).fit(data)
    benchmark(lambda: index.query(queries[0], k=K))


def test_print_scalability(benchmark):
    def run():
        table = Table(["n", "dim", "method", "recall", "candidates",
                       "io_pages"],
                      title="A3. Scalability (synthetic clusters)")
        fractions = {}
        for n in N_GRID:
            data, queries = _make(n, 32)
            true_ids, true_dists = exact_knn(data, queries, K)
            for name, factory in (
                ("c2lsh", lambda: C2LSH(c=2, seed=0,
                                        page_manager=PageManager())),
                ("linear", lambda: LinearScan(page_manager=PageManager())),
            ):
                index = factory().fit(data)
                results = index.query_batch(queries, k=K)
                s = evaluate_results(results, true_ids, true_dists, K)
                table.add(n, 32, name, f"{s.recall:.4f}",
                          f"{s.candidates:.0f}", f"{s.io_reads:.0f}")
                if name == "c2lsh":
                    fractions[n] = s.candidates / n
        table.print()
        # Shape: the verified fraction shrinks as n grows (beta = 100/n).
        assert fractions[N_GRID[-1]] < fractions[N_GRID[0]]

    benchmark.pedantic(run, rounds=1, iterations=1)
