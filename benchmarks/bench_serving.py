"""Serving front-end under open-loop load, tracked in ``BENCH_serving.json``.

Closed-loop load generators (send, wait, send) hide overload: the
generator slows down with the server, so the server never sees more than
it can take. This harness is **open-loop** — requests are launched on a
fixed schedule regardless of how the server is doing, which is what real
clients do and what admission control exists for.

Three phases:

1. **baseline** — closed-loop exactness + service-rate calibration: every
   served answer must be bit-identical to a direct ``index.query``;
   the measured throughput defines "capacity".
2. **offered = capacity × factor** (default 2.0) — the overload phase.
   The server must *shed, not queue*: every response is well-formed
   (``ok`` or an explicit ``shed`` with a documented reason), admitted
   requests still meet their deadline at the p99 (queue wait counts
   against it), and memory stays bounded by construction.
3. The server's ``serving.*`` metrics snapshot is recorded alongside the
   client-side numbers, so ``python -m repro.obs diff`` can gate shed
   rates and latency percentiles across commits.

::

    python benchmarks/bench_serving.py            # full run, ~15 s
    python benchmarks/bench_serving.py --smoke    # small + short, for CI

Exit code is non-zero when exactness fails, a response is malformed,
the overload phase failed to shed (meaning the queue absorbed 2x load —
it is not bounded), or admitted p99 blew the deadline gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import C2LSH, QueryClient, QueryServer, ServerConfig  # noqa: E402
from repro.obs import Histogram, MetricsRegistry, provenance  # noqa: E402
from repro.serving import SHED_REASONS  # noqa: E402


def _percentiles(seconds):
    if not seconds:
        return {"count": 0}
    hist = Histogram("latency.seconds")
    for s in seconds:
        hist.observe(s)
    snap = hist.snapshot()
    return {
        "count": len(seconds),
        "p50_ms": round(snap["p50"] * 1e3, 3),
        "p95_ms": round(snap["p95"] * 1e3, 3),
        "p99_ms": round(snap["p99"] * 1e3, 3),
        "mean_ms": round(snap["mean"] * 1e3, 3),
        "max_ms": round(snap["max"] * 1e3, 3),
    }


class _FlooredIndex:
    """Delegate with a minimum per-batch service time.

    The repo-scale index answers a coalesced batch in well under a
    millisecond, which makes "2x capacity" a race against client-side
    syscall rates instead of a test of admission control. Padding every
    batch to a fixed floor emulates the heavier index a serving tier
    actually fronts, and makes the overload phase's shedding
    deterministic across hardware. ``--service-floor-ms 0`` disables it.
    """

    def __init__(self, inner, floor_s):
        self._inner = inner
        self._floor_s = floor_s
        self.dim = inner._data.shape[1]

    def query_batch(self, queries, k=1, budget=None):
        t0 = time.perf_counter()
        results = self._inner.query_batch(queries, k=k, budget=budget)
        pad = self._floor_s - (time.perf_counter() - t0)
        if pad > 0:
            time.sleep(pad)
        return results


def capacity_phase(server, queries, k, window, total):
    """Saturated-but-bounded pipeline through one connection: q/s.

    Closed-loop one-at-a-time querying is latency-bound (every request
    pays a full round trip plus the batch floor), so it underestimates
    the coalesced service rate by an order of magnitude; an unbounded
    burst overflows the admission queue and gets shed, underestimating
    it a different way. Keeping exactly ``window`` requests outstanding
    (send one per response) saturates the batch engine without ever
    tripping admission — the rate the overload factor is measured
    against. No deadline is sent, so nothing can be shed.
    """
    served = 0
    with QueryClient("127.0.0.1", server.port) as client:
        t0 = time.perf_counter()
        sent = 0
        for _ in range(min(window, total)):
            client.send(queries[sent % len(queries)], k=k)
            sent += 1
        for _ in range(total):
            resp = client.recv()
            if resp["status"] == "ok":
                served += 1
            if sent < total:
                client.send(queries[sent % len(queries)], k=k)
                sent += 1
        elapsed = time.perf_counter() - t0
    qps = served / elapsed if served else 1.0
    return {
        "window": window,
        "requests": total,
        "served": served,
        "seconds": round(elapsed, 4),
        "queries_per_sec": round(qps, 2),
    }, qps


def baseline_phase(server, index, queries, k):
    """Closed-loop exactness check against the direct path.

    No deadlines here on purpose: a deadline budget degrades
    nondeterministically (that is its job under load), so the
    bit-identity contract is checked on unbudgeted requests.
    """
    latencies = []
    exact = True
    with QueryClient("127.0.0.1", server.port) as client:
        t0 = time.perf_counter()
        for q in queries:
            sent = time.perf_counter()
            resp = client.query(q, k=k)
            latencies.append(time.perf_counter() - sent)
            direct = index.query(q, k=k)
            if (resp["status"] != "ok"
                    or resp["ids"] != [int(i) for i in direct.ids]
                    or not np.array_equal(np.asarray(resp["distances"]),
                                          direct.distances)):
                exact = False
        elapsed = time.perf_counter() - t0
    qps = len(queries) / elapsed
    return {
        "queries": len(queries),
        "seconds": round(elapsed, 4),
        "queries_per_sec": round(qps, 2),
        "latency": _percentiles(latencies),
        "identical_results": exact,
    }, qps


class _OpenLoopClient(threading.Thread):
    """One connection: a sender on a fixed schedule plus an inline reader.

    The sender never waits for responses (that would close the loop);
    a paired reader thread drains them, timestamping end-to-end latency
    per request id. Both threads share the socket — sends from one,
    recvs from the other — which the protocol permits.
    """

    def __init__(self, port, queries, k, deadline_s, send_times):
        super().__init__(daemon=True)
        self.client = QueryClient("127.0.0.1", port)
        self.queries = queries
        self.k = k
        self.deadline_s = deadline_s
        self.send_times = send_times
        self.sent_at = {}
        self.responses = []
        self.errors = []

    def run(self):
        reader = threading.Thread(target=self._read, daemon=True)
        reader.start()
        start = time.perf_counter()
        for i, offset in enumerate(self.send_times):
            delay = start + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            q = self.queries[i % len(self.queries)]
            stamp = time.perf_counter()
            req_id = self.client.send(q, k=self.k,
                                      deadline_s=self.deadline_s)
            self.sent_at[req_id] = stamp
        reader.join(timeout=max(30.0, 4 * self.deadline_s))
        self.client.close()

    def _read(self):
        try:
            for _ in range(len(self.send_times)):
                resp = self.client.recv()
                self.responses.append((time.perf_counter(), resp))
        except (ConnectionError, OSError) as exc:
            self.errors.append(repr(exc))


def overload_phase(server, queries, k, deadline_s, rate_qps, duration_s,
                   n_clients):
    """Open-loop at ``rate_qps`` for ``duration_s`` across ``n_clients``."""
    n_requests = max(n_clients, int(rate_qps * duration_s))
    # Evenly spaced schedule, interleaved round-robin across clients so
    # the aggregate arrival process hits the target rate.
    offsets = np.arange(n_requests) / rate_qps
    clients = []
    for c in range(n_clients):
        clients.append(_OpenLoopClient(
            server.port, queries, k, deadline_s,
            send_times=offsets[c::n_clients] - offsets[c::n_clients][0]
            if len(offsets[c::n_clients]) else []))
    t0 = time.perf_counter()
    for c in clients:
        c.start()
    for c in clients:
        c.join(timeout=duration_s + max(60.0, 10 * deadline_s))
    elapsed = time.perf_counter() - t0

    ok_latencies, shed, malformed, errors = [], {}, [], []
    answered = 0
    for c in clients:
        errors.extend(c.errors)
        for stamp, resp in c.responses:
            answered += 1
            status = resp.get("status")
            if status == "ok":
                sent = c.sent_at.get(resp.get("id"))
                if sent is not None:
                    ok_latencies.append(stamp - sent)
            elif status == "shed":
                reason = resp.get("reason")
                if reason not in SHED_REASONS:
                    malformed.append(resp)
                shed[reason] = shed.get(reason, 0) + 1
            else:
                malformed.append(resp)
    return {
        "offered_qps": round(rate_qps, 2),
        "duration_s": round(elapsed, 3),
        "clients": n_clients,
        "requests": n_requests,
        "answered": answered,
        "admitted_ok": len(ok_latencies),
        "shed": shed,
        "shed_total": sum(shed.values()),
        "malformed": len(malformed),
        "transport_errors": errors,
        "ok_latency": _percentiles(ok_latencies),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--queries", type=int, default=48,
                        help="distinct query vectors (recycled under load)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deadline-ms", type=float, default=500.0,
                        help="per-request end-to-end deadline (keep it a "
                             "few multiples of one batch's service time)")
    parser.add_argument("--overload-factor", type=float, default=2.0,
                        help="offered load as a multiple of capacity")
    parser.add_argument("--duration-s", type=float, default=5.0,
                        help="overload phase length")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--p99-slack", type=float, default=1.5,
                        help="admitted p99 must stay under deadline x this")
    parser.add_argument("--service-floor-ms", type=float, default=10.0,
                        help="minimum per-batch service time (emulates a "
                             "heavier index; 0 disables)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_serving.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes and a short overload burst (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.dim, args.queries = 1500, 16, 16
        args.duration_s = min(args.duration_s, 2.0)

    deadline_s = args.deadline_ms / 1e3
    rng = np.random.default_rng(args.seed)
    data = rng.standard_normal((args.n, args.dim))
    queries = rng.standard_normal((args.queries, args.dim))
    index = C2LSH(seed=args.seed).fit(data)
    index.query(queries[0], k=args.k)  # warm caches outside the timing
    served_index = index
    if args.service_floor_ms > 0:
        served_index = _FlooredIndex(index, args.service_floor_ms / 1e3)

    config = ServerConfig(
        queue_capacity=args.queue_capacity, max_batch=args.max_batch)
    server = QueryServer(served_index, config, metrics=MetricsRegistry())
    server.start_in_thread()
    try:
        print(f"n={args.n} dim={args.dim} k={args.k} "
              f"deadline={args.deadline_ms:.0f}ms "
              f"floor={args.service_floor_ms:.0f}ms/batch")
        baseline, _ = baseline_phase(server, index, queries, args.k)
        print(f"baseline:  {baseline['queries_per_sec']:.1f} q/s "
              f"(closed loop), identical={baseline['identical_results']}")
        capacity, capacity_qps = capacity_phase(
            server, queries, args.k, window=args.max_batch,
            total=16 * args.max_batch)
        print(f"capacity:  {capacity['queries_per_sec']:.1f} q/s "
              f"(pipelined, {capacity['window']} outstanding)")

        offered = max(10.0, capacity_qps * args.overload_factor)
        overload = overload_phase(
            server, queries, args.k, deadline_s, offered,
            args.duration_s, args.clients)
        lat = overload["ok_latency"]
        print(f"overload:  offered {offered:.1f} q/s "
              f"({args.overload_factor:.1f}x capacity) for "
              f"{overload['duration_s']:.1f}s -> "
              f"{overload['admitted_ok']} ok, "
              f"{overload['shed_total']} shed {overload['shed']}, "
              f"{overload['malformed']} malformed")
        if lat.get("count"):
            print(f"admitted:  p50={lat['p50_ms']:.1f}ms "
                  f"p95={lat['p95_ms']:.1f}ms p99={lat['p99_ms']:.1f}ms")
        readiness = server.readiness()
    finally:
        server.stop_in_thread()

    snapshot = {k: v for k, v in sorted(server.metrics.snapshot().items())}
    result = {
        "config": {
            "n": args.n, "dim": args.dim, "queries": args.queries,
            "k": args.k, "seed": args.seed,
            "deadline_ms": args.deadline_ms,
            "overload_factor": args.overload_factor,
            "clients": args.clients,
            "queue_capacity": args.queue_capacity,
            "max_batch": args.max_batch,
            "service_floor_ms": args.service_floor_ms,
        },
        "baseline": baseline,
        "capacity": capacity,
        "overload": overload,
        "readiness_after_load": readiness,
        "server_metrics": snapshot,
        "smoke": args.smoke,
        "provenance": provenance(),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if not baseline["identical_results"]:
        failures.append("served answers differ from direct queries")
    if overload["malformed"]:
        failures.append(f"{overload['malformed']} malformed responses")
    if overload["transport_errors"]:
        failures.append(
            f"transport errors: {overload['transport_errors'][:3]}")
    if overload["answered"] < overload["requests"]:
        failures.append(
            f"only {overload['answered']}/{overload['requests']} requests "
            f"answered — a request was dropped without a response")
    if overload["shed_total"] == 0:
        failures.append(
            "no shedding at overload — the queue absorbed everything, "
            "which means it is not bounded at this load")
    p99_gate_ms = args.deadline_ms * args.p99_slack
    lat = overload["ok_latency"]
    if lat.get("count") and lat["p99_ms"] > p99_gate_ms:
        failures.append(
            f"admitted p99 {lat['p99_ms']:.1f}ms exceeds the "
            f"{p99_gate_ms:.0f}ms gate (deadline x {args.p99_slack})")
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
