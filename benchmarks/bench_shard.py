"""Sharded-engine build/query scaling, tracked in ``BENCH_shard.json``.

Sweeps shard counts S ∈ {1, 2, 4, 8} (``n_workers = S``) over the standard
synthetic profile, timing index build and batch-query throughput, and
verifies at every S that the answers are bit-identical to an unsharded
:class:`repro.C2LSH` over the same data and seed::

    python benchmarks/bench_shard.py             # full run, n=20k
    python benchmarks/bench_shard.py --smoke     # small sizes, 2 workers

**What the speedup measures.** C2LSH is an external-memory method: its
cost model is pages read/written, and this benchmark runs every shard's
:class:`~repro.storage.PageManager` with a simulated per-page device
latency (``--page-latency-us``, default 300µs — commodity-SSD territory).
Shards on separate worker processes overlap their device waits, which is
exactly the resource a sharded deployment parallelizes; the JSON records
``cpu_count`` and the latency model so the numbers cannot be mistaken for
pure-CPU scaling (on a single-core box the CPU portion of the work still
serializes). At S=4 the build must reach ``--min-build-speedup`` (2.5x)
and queries ``--min-query-speedup`` (2x) over S=1; the exit code reflects
both plus result identity, so CI can gate on regressions. ``--smoke``
checks only identity.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import C2LSH, ShardedC2LSH  # noqa: E402
from repro.kernels import active_backend  # noqa: E402
from repro.obs import MetricsRegistry, provenance  # noqa: E402


def _identical(expected, got):
    return all(
        np.array_equal(e.ids, g.ids)
        and np.array_equal(e.distances, g.distances)
        and e.stats.terminated_by == g.stats.terminated_by
        for e, g in zip(expected, got)
    )


def run_sweep(n, dim, n_queries, k, seed, shard_counts, n_workers,
              page_latency_s, probe="classic"):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, dim))
    queries = rng.standard_normal((n_queries, dim))
    classic = probe in ("classic", "both")
    adaptive = probe in ("adaptive", "both")

    # Unsharded ground truth for the identity check (no latency model —
    # answers don't depend on I/O accounting, only wall-clock would).
    # Only classic mode promises bit-identity; adaptive promises the
    # result contract at fewer pages, so its runs are reported without
    # the identity gate.
    reference = (C2LSH(seed=seed).fit(data).query_batch(queries, k=k)
                 if classic else None)

    sweep = []
    for s in shard_counts:
        workers = n_workers if n_workers is not None else s
        metrics = MetricsRegistry()
        engine = ShardedC2LSH(n_shards=s, n_workers=workers, seed=seed,
                              page_accounting=True,
                              page_latency_s=page_latency_s,
                              metrics=metrics)
        t0 = time.perf_counter()
        engine.fit(data)
        t_fit = time.perf_counter() - t0
        with engine:
            engine.query_batch(queries[:2], k=k)  # warm the round path
            entry = {
                "shards": s,
                "workers": workers,
                "build_seconds": round(t_fit, 4),
            }
            if classic:
                t0 = time.perf_counter()
                results = engine.query_batch(queries, k=k)
                t_query = time.perf_counter() - t0
                entry.update(
                    query_seconds=round(t_query, 4),
                    queries_per_sec=round(n_queries / t_query, 2),
                    amortized_ms=round(t_query / n_queries * 1e3, 4),
                    io_pages_per_query=round(
                        sum(r.stats.io_reads for r in results)
                        / n_queries, 1),
                    identical_results=_identical(reference, results),
                )
            if adaptive:
                t0 = time.perf_counter()
                fast = engine.query_batch(queries, k=k, probe="adaptive")
                t_query = time.perf_counter() - t0
                entry["adaptive"] = {
                    "query_seconds": round(t_query, 4),
                    "queries_per_sec": round(n_queries / t_query, 2),
                    "io_pages_per_query": round(
                        sum(r.stats.io_reads for r in fast)
                        / n_queries, 1),
                    "probes_skipped": int(sum(r.stats.probes_skipped
                                              for r in fast)),
                }
                if classic and entry["adaptive"]["io_pages_per_query"]:
                    entry["adaptive"]["pages_vs_classic"] = round(
                        entry["io_pages_per_query"]
                        / entry["adaptive"]["io_pages_per_query"], 3)
                if not classic:
                    entry.update(
                        query_seconds=entry["adaptive"]["query_seconds"],
                        queries_per_sec=entry["adaptive"][
                            "queries_per_sec"],
                        amortized_ms=round(t_query / n_queries * 1e3, 4),
                        io_pages_per_query=entry["adaptive"][
                            "io_pages_per_query"],
                    )
            entry["metrics"] = engine.telemetry_snapshot()
        sweep.append(entry)
        print(f"S={s} W={workers}: build {t_fit:.2f}s, "
              f"query {entry['queries_per_sec']:.1f} q/s, "
              f"identical={entry.get('identical_results', 'n/a')}")
    return data.nbytes, sweep


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per shard)")
    parser.add_argument("--page-latency-us", type=float, default=300.0,
                        help="simulated per-page device latency")
    parser.add_argument("--probe", choices=["classic", "adaptive", "both"],
                        default="classic",
                        help="probing mode(s) to time; the identity gate "
                             "only applies to classic runs")
    parser.add_argument("--min-build-speedup", type=float, default=2.5)
    parser.add_argument("--min-query-speedup", type=float, default=2.0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_shard.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + fixed 2 workers, identity only")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.dim, args.queries = 2_000, 16, 8
        args.shards = [1, 2]
        if args.workers is None:
            args.workers = 2
        args.page_latency_us = 20.0

    latency_s = args.page_latency_us * 1e-6
    data_bytes, sweep = run_sweep(args.n, args.dim, args.queries, args.k,
                                  args.seed, args.shards, args.workers,
                                  latency_s, probe=args.probe)

    base = sweep[0]
    for entry in sweep:
        entry["build_speedup"] = round(
            base["build_seconds"] / entry["build_seconds"], 3)
        entry["query_speedup"] = round(
            entry["queries_per_sec"] / base["queries_per_sec"], 3)

    result = {
        "config": {
            "n": args.n, "dim": args.dim, "queries": args.queries,
            "k": args.k, "seed": args.seed, "probe": args.probe,
            "shared_memory_bytes": data_bytes,
            "cpu_count": os.cpu_count(),
            "io_model": {
                "kind": "simulated paged device",
                "page_latency_us": args.page_latency_us,
                "note": "per-page latency charged in the worker that "
                        "performs the I/O; shards overlap device waits, "
                        "CPU work still serializes on few-core hosts",
            },
        },
        "kernels": active_backend(),
        "sweep": sweep,
        "identical_results": all(e.get("identical_results", True)
                                 for e in sweep),
        "smoke": args.smoke,
    }
    s4 = next((e for e in sweep if e["shards"] == 4), None)
    if s4 is not None:
        result["s4_build_speedup"] = s4["build_speedup"]
        result["s4_query_speedup"] = s4["query_speedup"]
        print(f"S=4 vs S=1: build {s4['build_speedup']:.2f}x, "
              f"query {s4['query_speedup']:.2f}x")

    result["provenance"] = provenance()
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not result["identical_results"]:
        print("FAIL: sharded results differ from unsharded",
              file=sys.stderr)
        return 1
    if not args.smoke and s4 is not None:
        if s4["build_speedup"] < args.min_build_speedup:
            print(f"FAIL: S=4 build speedup {s4['build_speedup']:.2f}x "
                  f"below {args.min_build_speedup}x", file=sys.stderr)
            return 1
        if s4["query_speedup"] < args.min_query_speedup:
            print(f"FAIL: S=4 query speedup {s4['query_speedup']:.2f}x "
                  f"below {args.min_query_speedup}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
