"""A4 — ablation: the two termination rules.

T1 ("k candidates within c*R") bounds work once good answers exist; T2
("k + beta*n candidates verified") bounds work when they don't. Disabling
either changes the cost/recall balance — both are needed for the paper's
guarantee + bounded-cost story.

Full table:  c2lsh-harness termination
"""

import pytest

from repro import C2LSH, PageManager
from repro.eval import Table, evaluate_results

K = 10

VARIANTS = {
    "T1+T2": dict(),
    "T2-only": dict(use_t1=False),
    "T1-only": dict(beta=0.999),
}


@pytest.fixture(scope="module", params=sorted(VARIANTS))
def variant_index(request, mnist):
    index = C2LSH(c=2, seed=0, page_manager=PageManager(),
                  **VARIANTS[request.param]).fit(mnist.data)
    return request.param, index


def test_query(benchmark, variant_index, mnist):
    _, index = variant_index
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_termination_ablation(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["variant", "recall", "ratio", "candidates", "io_pages",
                       "stopped_by"],
                      title=f"A4. Termination ablation on {mnist.name} (k={K})")
        stats = {}
        for label, overrides in VARIANTS.items():
            index = C2LSH(c=2, seed=0, page_manager=PageManager(),
                          **overrides).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K], true_dists[:, :K], K)
            stops = sorted({r.stats.terminated_by for r in results})
            table.add(label, f"{s.recall:.4f}", f"{s.ratio:.4f}",
                      f"{s.candidates:.0f}", f"{s.io_reads:.0f}",
                      "/".join(stops))
            stats[label] = s
        table.print()
        # Shape: dropping T1 can only increase verified candidates; dropping
        # T2 (huge budget) can only increase them as well.
        assert stats["T2-only"].candidates >= stats["T1+T2"].candidates - 1
        assert stats["T1-only"].recall >= stats["T1+T2"].recall - 0.02

    benchmark.pedantic(run, rounds=1, iterations=1)
