"""F3 — wall-clock query time vs k.

Regenerates the paper's running-time figure: per-query latency of each
method as k grows (pytest-benchmark provides the timing).

Full figure:  c2lsh-harness vs-k
"""

import pytest

KS = (1, 10, 100)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("method", ["c2lsh", "qalsh", "lsb", "e2lsh",
                                    "linear"])
def test_query_time(benchmark, method, k, mnist, mnist_indexes):
    index = mnist_indexes[method]
    queries = mnist.queries
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % queries.shape[0]]
        state["i"] += 1
        return index.query(q, k=k)

    result = benchmark(one_query)
    assert len(result) <= k
