"""E2 — tooling costs: persistence, live updates, auto-tuning.

Not a paper artifact — these measure the adoption-oriented tooling so its
overheads are known quantities: save/load round-trips, insert throughput
and rebuild amortization of the updatable wrapper, and the tuner's
end-to-end runtime.
"""

import numpy as np
import pytest

from repro.core import (
    UpdatableC2LSH,
    load_c2lsh,
    save_c2lsh,
    tune_c2lsh,
)
from repro import C2LSH


@pytest.fixture(scope="module")
def fitted(mnist):
    return C2LSH(c=2, seed=0).fit(mnist.data)


def test_save(benchmark, fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("persist") / "index.npz"

    def save():
        save_c2lsh(fitted, path)

    benchmark.pedantic(save, rounds=3, iterations=1)
    assert path.exists()


def test_load(benchmark, fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("persist") / "index.npz"
    save_c2lsh(fitted, path)

    index = benchmark.pedantic(lambda: load_c2lsh(path), rounds=3,
                               iterations=1)
    assert index.is_fitted


def test_loaded_index_answers_match(benchmark, fitted, mnist,
                                    tmp_path_factory):
    def run():
        path = tmp_path_factory.mktemp("persist") / "index.npz"
        save_c2lsh(fitted, path)
        loaded = load_c2lsh(path)
        for q in mnist.queries[:5]:
            assert np.array_equal(fitted.query(q, k=5).ids,
                                  loaded.query(q, k=5).ids)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_updatable_insert_throughput(benchmark, mnist):
    def run():
        index = UpdatableC2LSH(c=2, seed=0, min_index_size=500,
                               rebuild_threshold=0.25)
        for start in range(0, 2000, 250):
            index.insert(mnist.data[start:start + 250])
        return index

    index = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(index) == 2000
    assert index.rebuilds >= 1


def test_updatable_query_after_churn(benchmark, mnist):
    index = UpdatableC2LSH(c=2, seed=0, min_index_size=500,
                           rebuild_threshold=0.25)
    handles = index.insert(mnist.data[:2000])
    index.delete(handles[:200])
    q = mnist.queries[0]
    result = benchmark(lambda: index.query(q, k=10))
    assert len(result) == 10


def test_tuner_runtime(benchmark, mnist):
    def run():
        return tune_c2lsh(mnist.data[:1500], target_recall=0.8, k=5,
                          c_grid=(2,), budget_grid=(25, 100), seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.trials
