"""F5 — recall/cost trade-off via the false-positive budget.

Regenerates the paper's trade-off curve: sweeping beta*n moves C2LSH along
a candidates-vs-recall frontier (T2 caps the verified set at k + beta*n).

Full figure:  c2lsh-harness tradeoff
"""

import pytest

from repro import C2LSH, PageManager
from repro.eval import Table, evaluate_results

K = 10
BUDGETS = (25, 50, 100, 200, 400)


@pytest.fixture(scope="module", params=[25, 400])
def c2lsh_at_budget(request, mnist):
    budget = request.param
    index = C2LSH(c=2, beta=min(budget / mnist.n, 0.9), seed=0,
                  page_manager=PageManager()).fit(mnist.data)
    return budget, index


def test_query(benchmark, c2lsh_at_budget, mnist):
    _, index = c2lsh_at_budget
    q = mnist.queries[0]
    benchmark(lambda: index.query(q, k=K))


def test_print_tradeoff(benchmark, mnist, mnist_truth):
    def run():
        true_ids, true_dists = mnist_truth
        table = Table(["beta*n", "ratio", "recall", "io_pages", "candidates"],
                      title=f"F5. Budget sweep on {mnist.name} (k={K})")
        rows = {}
        for budget in BUDGETS:
            index = C2LSH(c=2, beta=min(budget / mnist.n, 0.9), seed=0,
                          page_manager=PageManager()).fit(mnist.data)
            results = index.query_batch(mnist.queries, k=K)
            s = evaluate_results(results, true_ids[:, :K], true_dists[:, :K], K)
            table.add(budget, f"{s.ratio:.4f}", f"{s.recall:.4f}",
                      f"{s.io_reads:.0f}", f"{s.candidates:.0f}")
            rows[budget] = s
        table.print()
        # Shape: bigger budgets verify more candidates and never lose recall.
        assert rows[400].candidates >= rows[25].candidates
        assert rows[400].recall >= rows[25].recall - 0.02

    benchmark.pedantic(run, rounds=1, iterations=1)
