"""Update throughput and recovery time, tracked in ``BENCH_updates.json``.

Measures what durability costs on the update path and what it buys back
at recovery: insert/delete throughput for the plain in-memory
:class:`UpdatableC2LSH`, the durable facade without fsync (crash-safe
against process death), and the durable facade with per-record fsync
(crash-safe against power loss) — then kills the fsync'd index without a
checkpoint and times a full WAL replay, and again right after a
checkpoint where recovery is one snapshot load::

    python benchmarks/bench_updates.py               # full run, ~20 s
    python benchmarks/bench_updates.py --smoke       # small sizes for CI

All three variants must answer a probe query identically (same live set,
same handles); the exit code reflects it so CI can gate on recovery
correctness as well as report the numbers.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DurableUpdatableC2LSH  # noqa: E402
from repro.core.updatable import UpdatableC2LSH  # noqa: E402
from repro.kernels import active_backend  # noqa: E402
from repro.obs import provenance  # noqa: E402

KWARGS = dict(seed=0, c=2, min_index_size=200, rebuild_threshold=0.3)


def _drive(index, batches, delete_every):
    """Apply the update stream; returns (seconds, handles_deleted)."""
    deleted = 0
    t0 = time.perf_counter()
    for i, batch in enumerate(batches):
        handles = index.insert(batch)
        if (i + 1) % delete_every == 0:
            index.delete(handles[: len(handles) // 4])
            deleted += len(handles) // 4
    return time.perf_counter() - t0, deleted


def run_once(n_batches, batch_size, dim, seed):
    rng = np.random.default_rng(seed)
    batches = [rng.standard_normal((batch_size, dim)) * 3
               for _ in range(n_batches)]
    n_points = n_batches * batch_size
    probe = batches[0][0] + 0.01 * rng.standard_normal(dim)
    result = {"config": {"batches": n_batches, "batch_size": batch_size,
                         "dim": dim, "seed": seed},
              "kernels": active_backend()}
    answers = {}

    plain = UpdatableC2LSH(**KWARGS)
    seconds, _ = _drive(plain, batches, delete_every=4)
    answers["in_memory"] = plain.query(probe, k=5)
    result["in_memory"] = {
        "seconds": round(seconds, 4),
        "updates_per_sec": round(n_points / seconds, 1),
    }

    workdir = tempfile.mkdtemp(prefix="bench-updates-")
    try:
        for label, fsync in (("durable_nofsync", False),
                             ("durable_fsync", True)):
            path = f"{workdir}/{label}"
            index = DurableUpdatableC2LSH(path, fsync=fsync, **KWARGS)
            seconds, _ = _drive(index, batches, delete_every=4)
            answers[label] = index.query(probe, k=5)
            index.close()
            t0 = time.perf_counter()
            recovered = DurableUpdatableC2LSH(path, fsync=fsync, **KWARGS)
            replay_s = time.perf_counter() - t0
            answers[label + "_recovered"] = recovered.query(probe, k=5)
            recovered.checkpoint()
            recovered.close()
            t0 = time.perf_counter()
            snapped = DurableUpdatableC2LSH(path, fsync=fsync, **KWARGS)
            checkpointed_s = time.perf_counter() - t0
            snapped.close()
            result[label] = {
                "seconds": round(seconds, 4),
                "updates_per_sec": round(n_points / seconds, 1),
                "recovery_replay_s": round(replay_s, 4),
                "recovery_after_checkpoint_s": round(checkpointed_s, 4),
                "replayed_records": recovered.recovered_records,
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    reference = answers["in_memory"]
    result["identical_results"] = all(
        np.array_equal(reference.ids, other.ids)
        and np.allclose(reference.distances, other.distances)
        for other in answers.values()
    )
    result["fsync_slowdown"] = round(
        result["durable_fsync"]["updates_per_sec"]
        / result["in_memory"]["updates_per_sec"], 4)
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batches", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=50)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_updates.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, correctness check only (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.batches, args.batch_size, args.dim = 30, 20, 16

    result = run_once(args.batches, args.batch_size, args.dim, args.seed)
    result["smoke"] = args.smoke

    print(f"batches={args.batches} batch_size={args.batch_size} "
          f"dim={args.dim}")
    for label in ("in_memory", "durable_nofsync", "durable_fsync"):
        row = result[label]
        line = (f"{label + ':':<18}{row['seconds']:.3f}s "
                f"({row['updates_per_sec']:.0f} updates/s)")
        if "recovery_replay_s" in row:
            line += (f"  recovery: replay {row['recovery_replay_s']:.3f}s, "
                     f"checkpointed "
                     f"{row['recovery_after_checkpoint_s']:.3f}s")
        print(line)
    print(f"fsync keeps {result['fsync_slowdown']:.1%} of in-memory "
          f"throughput  identical={result['identical_results']}")

    result["provenance"] = provenance()
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not result["identical_results"]:
        print("FAIL: durable/recovered answers differ from in-memory",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
