"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one experiment from DESIGN.md §6
(T1/T2 tables, F1-F5 figures, A1-A4 ablations). Datasets are the scaled
profiles from :mod:`repro.data.profiles`; the scale is chosen so the whole
suite runs in a few minutes while preserving the orderings the paper
reports. Set ``C2LSH_BENCH_SCALE`` to run bigger.
"""

import os

import numpy as np
import pytest

from repro.data import load_profile

BENCH_SCALE = float(os.environ.get("C2LSH_BENCH_SCALE", "0.05"))
BENCH_QUERIES = int(os.environ.get("C2LSH_BENCH_QUERIES", "20"))
K = 10


@pytest.fixture(scope="session")
def mnist():
    return load_profile("mnist", scale=BENCH_SCALE, n_queries=BENCH_QUERIES,
                        seed=0)


@pytest.fixture(scope="session")
def color():
    return load_profile("color", scale=BENCH_SCALE, n_queries=BENCH_QUERIES,
                        seed=0)


@pytest.fixture(scope="session")
def mnist_truth(mnist):
    return mnist.ground_truth(100)


@pytest.fixture(scope="session")
def color_truth(color):
    return color.ground_truth(100)


@pytest.fixture(scope="session")
def mnist_indexes(mnist):
    """All methods built once on the mnist-like profile, with I/O managers."""
    from repro import C2LSH, E2LSH, LinearScan, LSBForest, PageManager, QALSH

    return {
        "c2lsh": C2LSH(c=2, seed=0, page_manager=PageManager())
        .fit(mnist.data),
        "qalsh": QALSH(c=2, seed=0, page_manager=PageManager())
        .fit(mnist.data),
        "lsb": LSBForest(n_trees=10, seed=0, page_manager=PageManager())
        .fit(mnist.data),
        "e2lsh": E2LSH(K=8, L=64, seed=0, page_manager=PageManager())
        .fit(mnist.data),
        "linear": LinearScan(page_manager=PageManager()).fit(mnist.data),
    }


def run_queries(index, dataset, k):
    """Answer every held-out query; returns the result list."""
    return index.query_batch(dataset.queries, k=k)


def cycle_queries(dataset):
    """An endless query iterator for benchmark() bodies."""
    i = 0
    q = dataset.queries

    def next_query():
        nonlocal i
        out = q[i % q.shape[0]]
        i += 1
        return out

    return next_query
