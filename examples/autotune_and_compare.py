"""Auto-tune C2LSH for a recall target, then compare methods rigorously.

Puts three of the library's supporting tools together:

1. :func:`repro.core.tune_c2lsh` — grid-search the knobs for the cheapest
   configuration reaching 95% recall on held-out validation queries;
2. :func:`repro.eval.significance.sign_test` — a *paired* statistical test
   of the tuned C2LSH against Multi-Probe LSH on the same query set;
3. :class:`repro.eval.AsciiChart` — a terminal figure of the
   candidates-vs-recall frontier the tuner explored.

Run:  python examples/autotune_and_compare.py
"""

from repro import MultiProbeLSH, PageManager
from repro.core import tune_c2lsh
from repro.data import color_like
from repro.eval import AsciiChart, Table, timed_queries
from repro.eval.significance import sign_test

K = 10

dataset = color_like(scale=0.05, seed=3)
print(f"dataset: {dataset}\n")

# 1. Tune.
result = tune_c2lsh(dataset.data, target_recall=0.95, k=K,
                    c_grid=(2, 3), budget_grid=(25, 100, 400), seed=0)
table = Table(["c", "beta*n", "recall", "ratio", "io/query"],
              title="Tuning trials (validation split)")
for trial in result.trials:
    table.add(trial.config["c"],
              round(trial.config["beta"] * dataset.n),
              f"{trial.recall:.3f}", f"{trial.ratio:.4f}",
              f"{trial.io_reads:.0f}")
table.print()
print(f"cheapest config reaching 95% recall: {result.best.config}\n")

# 2. Frontier figure.
chart = AsciiChart(width=56, height=12, title="Tuning frontier",
                   x_label="verified candidates per query",
                   y_label="recall")
for c in (2, 3):
    points = [t for t in result.trials if t.config["c"] == c]
    chart.add_series(f"c={c}", [t.candidates for t in points],
                     [t.recall for t in points])
chart.print()

# 3. Paired comparison against Multi-Probe LSH on the test queries.
true_ids, true_dists = dataset.ground_truth(K)
tuned = result.build_best(page_manager=PageManager()).fit(dataset.data)
rival = MultiProbeLSH(K=8, L=8, n_probes=16, seed=0,
                      page_manager=PageManager()).fit(dataset.data)
s_tuned = timed_queries(tuned, dataset.queries, K, true_ids, true_dists)
s_rival = timed_queries(rival, dataset.queries, K, true_ids, true_dists)

table = Table(["method", "recall", "ratio", "io/query", "ms/query"],
              title="Test-set comparison")
table.add("c2lsh (tuned)", f"{s_tuned.recall:.3f}", f"{s_tuned.ratio:.4f}",
          f"{s_tuned.io_reads:.0f}", f"{s_tuned.query_time * 1e3:.2f}")
table.add("multi-probe", f"{s_rival.recall:.3f}", f"{s_rival.ratio:.4f}",
          f"{s_rival.io_reads:.0f}", f"{s_rival.query_time * 1e3:.2f}")
table.print()

test = sign_test(s_tuned.recalls, s_rival.recalls)
print(f"paired sign test on per-query recall: {test.wins} wins / "
      f"{test.losses} losses / {test.ties} ties, p = {test.p_value:.3f}")
if test.significant():
    better = "c2lsh" if test.wins > test.losses else "multi-probe"
    print(f"difference is significant at 5% — {better} wins per-query.")
else:
    print("no significant per-query difference at 5% — the methods tie on "
          "this workload.")
