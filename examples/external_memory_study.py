"""External-memory study: where each page of a query's I/O bill goes.

Dissects C2LSH's page I/O into its two components — hash-table range
scans and candidate verification — across dataset dimensionality, shows
the crossover against a sequential scan as objects get fatter, and
measures what Z-order data-file clustering saves. Renders the shapes as
terminal charts.

Run:  python examples/external_memory_study.py
"""

from repro import C2LSH, LinearScan, PageManager
from repro.data import exact_knn, gaussian_clusters, split_queries
from repro.eval import AsciiChart, Table, evaluate_results

K = 10
DIMS = (16, 64, 128, 256)
N = 8_000


def run(dim, layout):
    raw = gaussian_clusters(N + 20, dim, n_clusters=20, cluster_std=1.5,
                            spread=10.0, seed=0)
    data, queries = split_queries(raw, 20, seed=1)
    true_ids, true_dists = exact_knn(data, queries, K)

    pm = PageManager()
    index = C2LSH(c=2, seed=0, page_manager=pm, data_layout=layout)
    index.fit(data)
    results = index.query_batch(queries, k=K)
    summary = evaluate_results(results, true_ids, true_dists, K)

    pm_lin = PageManager()
    linear = LinearScan(page_manager=pm_lin).fit(data)
    lin_summary = evaluate_results(linear.query_batch(queries, k=K),
                                   true_ids, true_dists, K)
    # Verification I/O ~ candidates * pages-per-object under "scattered";
    # under clustered layouts it is whatever remains after table scans.
    return summary, lin_summary


table = Table(["dim", "layout", "c2lsh io/q", "scan io/q", "recall"],
              title=f"I/O vs dimensionality (n={N}, k={K}, 4 KiB pages)")
series = {"c2lsh scattered": [], "c2lsh zorder": [], "linear scan": []}
for dim in DIMS:
    for layout in ("scattered", "zorder"):
        summary, lin_summary = run(dim, layout)
        table.add(dim, layout, f"{summary.io_reads:.0f}",
                  f"{lin_summary.io_reads:.0f}", f"{summary.recall:.3f}")
        series[f"c2lsh {layout}"].append((dim, summary.io_reads))
    series["linear scan"].append((dim, lin_summary.io_reads))
table.print()

chart = AsciiChart(width=56, height=14, y_log=True,
                   title="Pages per query vs dimensionality",
                   x_label="dim", y_label="pages")
for name, points in series.items():
    chart.add_series(name, [p[0] for p in points], [p[1] for p in points])
chart.print()

print("Reading guide: the scan's bill grows linearly with object size")
print("(dim), while C2LSH's is dominated by hash-table scans that do not —")
print("the curves cross where the paper's external-memory setting lives.")
print("Z-order clustering trims the verification share on top.")
