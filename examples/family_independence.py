"""Family independence: dynamic collision counting beyond Euclidean space.

The counting framework only needs an LSH family — swap in sign random
projections and the same index answers *angular* nearest-neighbor queries
(an extension beyond the 2012 paper; see DESIGN.md §7). This example runs
document-style retrieval on unit-normalized vectors.

Run:  python examples/family_independence.py
"""

import numpy as np

from repro import C2LSH, QALSH
from repro.eval import Table
from repro.hashing import SignRandomProjectionFamily

rng = np.random.default_rng(7)

# Topic-cluster unit vectors: 20 "topics" in 64 dimensions.
topics = rng.standard_normal((20, 64))
data = topics[rng.integers(0, 20, size=8000)] \
    + 0.35 * rng.standard_normal((8000, 64))
data /= np.linalg.norm(data, axis=1, keepdims=True)

family = SignRandomProjectionFamily(dim=64)
index = C2LSH(family=family, c=2, seed=0).fit(data)
print(f"angular C2LSH: m={index.m} hash tables, threshold l={index.l}\n")

table = Table(["query", "returned id", "angle (rad)", "true NN id",
               "true angle", "candidates"],
              title="Angular 1-NN via sign-random-projection counting")
queries = data[rng.integers(0, 8000, size=5)] \
    + 0.05 * rng.standard_normal((5, 64))
queries /= np.linalg.norm(queries, axis=1, keepdims=True)

for i, q in enumerate(queries):
    result = index.query(q, k=1)
    angles = family.distance(data, q)
    true_id = int(np.argmin(angles))
    table.add(i, int(result.ids[0]), f"{result.distances[0]:.4f}",
              true_id, f"{angles[true_id]:.4f}", result.stats.candidates)
table.print()

# For contrast: the Euclidean query-aware extension on the same data
# (angles and Euclidean distances agree in ordering on the unit sphere).
qalsh = QALSH(c=2, seed=0).fit(data)
result = qalsh.query(queries[0], k=3)
print(f"QALSH (query-aware, Euclidean on the sphere) top-3 ids: "
      f"{result.ids.tolist()}")
