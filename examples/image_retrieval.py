"""Image-feature retrieval with external-memory cost accounting.

Rebuilds the paper's headline scenario: content-based retrieval over an
image-feature collection (the mnist-like profile), comparing C2LSH against
an exact scan and LSB-forest under the shared page-I/O cost model.

Run:  python examples/image_retrieval.py
"""

from repro import C2LSH, LinearScan, LSBForest, PageManager
from repro.data import mnist_like
from repro.eval import Table, timed_build, timed_queries

K = 10

dataset = mnist_like(scale=0.1, seed=1)
print(f"dataset: {dataset} — {dataset.description}\n")
true_ids, true_dists = dataset.ground_truth(K)

table = Table(
    ["method", "build_s", "index_pages", "ratio", "recall", "io_pages/q",
     "candidates/q", "ms/q"],
    title=f"Top-{K} retrieval over {dataset.name} "
          f"(page size 4096 B, {dataset.queries.shape[0]} queries)",
)

for name, factory in [
    ("c2lsh", lambda: C2LSH(c=2, seed=0, page_manager=PageManager())),
    ("lsb-forest", lambda: LSBForest(n_trees=10, seed=0,
                                     page_manager=PageManager())),
    ("linear-scan", lambda: LinearScan(page_manager=PageManager())),
]:
    build = timed_build(factory, dataset.data)
    summary = timed_queries(build.index, dataset.queries, K,
                            true_ids, true_dists)
    table.add(name, f"{build.build_time:.2f}", build.index_pages,
              f"{summary.ratio:.4f}", f"{summary.recall:.4f}",
              f"{summary.io_reads:.0f}", f"{summary.candidates:.0f}",
              f"{summary.query_time * 1e3:.2f}")

table.print()
print("Reading guide: ratio 1.0 = exact answers; C2LSH should sit near 1.0")
print("while verifying a small fraction of the collection, versus the")
print("linear scan's full sweep and LSB-forest's cheaper-but-coarser sweep.")
