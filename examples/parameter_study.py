"""How C2LSH's knobs shape the index: a parameter walkthrough.

Shows how the approximation ratio c, the false-positive fraction beta, and
the error probability delta translate — through the Hoeffding machinery of
repro.core.params — into the bucket width w, collision probabilities
(p1, p2), threshold percentage alpha, and table count m.

Run:  python examples/parameter_study.py
"""

from repro.core import design_params
from repro.eval import Table
from repro.hashing import PStableFamily

N, DIM = 1_000_000, 50

print(f"Designing C2LSH for n = {N:,} points in {DIM} dimensions.\n")

table = Table(
    ["c", "w", "p1", "p2", "alpha", "m", "l", "FP budget", "P[miss NN]"],
    title="Effect of the approximation ratio c "
          "(quality guarantee is c^2)",
)
for c in (2, 3, 4, 5):
    family = PStableFamily(DIM, c=c)
    p = design_params(N, family, c=c)
    table.add(c, f"{p.w:.3f}", f"{p.p1:.4f}", f"{p.p2:.4f}",
              f"{p.alpha:.4f}", p.m, p.l, p.false_positive_budget,
              f"{p.false_negative_bound:.2e}")
table.print()

table = Table(
    ["beta*n", "m", "l", "candidates verified (T2 cap, k=10)"],
    title="Effect of the false-positive budget beta "
          "(accuracy/cost trade-off)",
)
for budget in (25, 50, 100, 200, 400):
    family = PStableFamily(DIM, c=2)
    p = design_params(N, family, c=2, beta=budget / N)
    table.add(budget, p.m, p.l, 10 + p.false_positive_budget)
table.print()

table = Table(
    ["delta", "m", "l", "success prob >="],
    title="Effect of the per-query error probability delta",
)
for delta in (0.1, 0.01, 0.001):
    family = PStableFamily(DIM, c=2)
    p = design_params(N, family, c=2, delta=delta)
    table.add(delta, p.m, p.l, f"{p.success_probability:.3f}")
table.print()

print("Takeaways: m grows with ln(n) and shrinks fast as c widens the")
print("(p1, p2) gap; beta trades verified candidates against recall; and")
print("delta buys per-query success probability with extra tables.")
