"""Quickstart: build a C2LSH index and answer c-approximate k-NN queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import C2LSH
from repro.data import exact_knn

rng = np.random.default_rng(0)

# 10,000 points in 32 dimensions, loosely clustered.
centers = rng.uniform(-10, 10, size=(16, 32))
data = centers[rng.integers(0, 16, size=10_000)] \
    + rng.standard_normal((10_000, 32))

# Build the index. Everything is derived from the approximation ratio c:
# the bucket width w, the collision probabilities (p1, p2), the threshold
# percentage alpha, the number of hash tables m and the threshold l.
index = C2LSH(c=2, seed=42).fit(data)
print(f"index: {index}")
print(f"params: {index.params.describe()}")
print(f"distance unit (auto-estimated): {index.base_radius:.3f}\n")

# Query for the 5 nearest neighbors of a perturbed data point.
query = data[123] + 0.1 * rng.standard_normal(32)
result = index.query(query, k=5)

true_ids, true_dists = exact_knn(data, query, 5)
print("rank  returned-id  distance   true-id  true-distance")
for i, (oid, dist) in enumerate(zip(result.ids, result.distances)):
    print(f"{i + 1:4d}  {oid:11d}  {dist:8.4f}   {true_ids[i]:7d}  "
          f"{true_dists[i]:13.4f}")

stats = result.stats
print(f"\nsearch stopped by {stats.terminated_by} at radius "
      f"{stats.final_radius} after {stats.rounds} rounds; "
      f"{stats.candidates} of {data.shape[0]} points were verified.")
