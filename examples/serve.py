"""Serve k-NN queries over TCP with admission control and graceful drain.

A runnable tour of :mod:`repro.serving` (docs/SERVING.md):

1. build an index and start :class:`repro.QueryServer` plus a paired
   :class:`repro.obs.ObsServer` whose ``/healthz`` readiness follows the
   query server's drain/overload state;
2. answer a trickle of queries and spot-check bit-identity against
   direct ``index.query`` calls;
3. flood the server far past capacity from several pipelined clients —
   the bounded queue sheds explicitly (``overloaded``/``deadline``)
   instead of queuing unboundedly, while every admitted request is still
   answered exactly;
4. drain gracefully: readiness flips to 503, in-flight work completes,
   new admissions are refused.

Run:  python examples/serve.py
"""

import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import urlopen

import numpy as np

from repro import C2LSH, QueryClient, QueryServer, ServerConfig
from repro.obs import MetricsRegistry, ObsServer

K = 10
rng = np.random.default_rng(42)
data = rng.standard_normal((8_000, 24))
queries = rng.standard_normal((64, 24))

index = C2LSH(seed=7).fit(data)

# 1. Start the serving front-end and its observability sidecar. The
# queue is kept small here so the flood phase below visibly sheds.
config = ServerConfig(queue_capacity=32, max_batch=16)
server = QueryServer(index, config, metrics=MetricsRegistry())
server.start_in_thread()
obs = ObsServer(metrics={"repro_serving": server.metrics},
                readiness=server.readiness).start()
print(f"query server on :{server.port}, obs on {obs.url}")


def healthz():
    try:
        with urlopen(obs.url + "/healthz", timeout=5) as resp:
            return resp.status, json.loads(resp.read())
    except HTTPError as exc:
        return exc.code, json.loads(exc.read())


code, body = healthz()
print(f"healthz: {code} ready={body['ready']}")

# 2. A polite trickle: every answer is bit-identical to the direct path.
with QueryClient("127.0.0.1", server.port) as client:
    for q in queries[:8]:
        resp = client.query(q, k=K, deadline_s=1.0)
        direct = index.query(q, k=K)
        assert resp["status"] == "ok"
        assert resp["ids"] == [int(i) for i in direct.ids]
        assert np.array_equal(np.asarray(resp["distances"]),
                              direct.distances)
    print(f"trickle: 8/8 exact, last queue_wait="
          f"{resp['stats']['queue_wait_s'] * 1e3:.2f}ms")


# 3. The flood: three clients pipeline far more than the server can
# absorb. Bounded admission sheds the excess explicitly; nothing blocks,
# nothing is dropped silently, memory stays bounded.
def flood(port, n, out):
    with QueryClient("127.0.0.1", port) as client:
        ids = [client.send(queries[i % len(queries)], k=K, deadline_s=0.25)
               for i in range(n)]
        out.extend(client.recv_for(i) for i in ids)


responses = []
threads = [threading.Thread(target=flood, args=(server.port, 120, responses))
           for _ in range(3)]
t0 = time.perf_counter()
for t in threads:
    t.start()
for t in threads:
    t.join()
elapsed = time.perf_counter() - t0

ok = [r for r in responses if r["status"] == "ok"]
shed = [r for r in responses if r["status"] == "shed"]
reasons = {}
for r in shed:
    reasons[r["reason"]] = reasons.get(r["reason"], 0) + 1
print(f"flood: {len(responses)} requests in {elapsed:.2f}s -> "
      f"{len(ok)} ok, {len(shed)} shed {reasons}")
assert len(ok) + len(shed) == len(responses)

snap = server.metrics.snapshot()
latency = snap.get("serving.latency.seconds") or {}
print(f"metrics: admitted={snap.get('serving.admitted', 0)} "
      f"shed={snap.get('serving.shed', 0)} "
      f"batches={snap.get('serving.batches', 0)} "
      f"e2e_p99={latency.get('p99', 0.0) * 1e3:.1f}ms")

# 4. Graceful drain: readiness flips before the listener goes away.
server.admission.begin_drain()
server._draining = True
code, body = healthz()
print(f"healthz while draining: {code} ready={body['ready']} "
      f"(liveness still '{body['status']}')")
server.stop_in_thread(drain=True)
obs.close()
print("drained cleanly")
