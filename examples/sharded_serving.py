"""Serve a query stream from a 4-shard index under a deadline budget.

A production-shaped tour of :class:`repro.ShardedC2LSH`:

1. build a 4-shard index (the dataset is placed in shared memory once;
   each worker process builds its shard over a zero-copy view);
2. serve a stream of queries with a per-query deadline
   :class:`~repro.reliability.QueryBudget` — queries that can't finish
   their radius rounds in time degrade gracefully to their best verified
   candidates instead of blocking the stream;
3. ``SIGKILL`` a worker process mid-stream and keep serving — the
   supervisor respawns it and replays its session, so answers stay
   bit-identical through real process death;
4. print the engine's aggregated ``shard.*`` telemetry snapshot,
   failover counters included.

Results are bit-identical to an unsharded index (the script spot-checks
this on the first batch), so sharding is purely a deployment decision.

Run:  python examples/sharded_serving.py
"""

import json
import os
import signal
import time

import numpy as np

from repro import C2LSH, ShardedC2LSH
from repro.reliability import QueryBudget

K = 10
SHARDS = 4
rng = np.random.default_rng(42)
data = rng.standard_normal((8_000, 24))
# A realistic mix: half the stream is in-distribution (answered in one
# radius round), half is out-of-distribution (needs several rounds and
# will collide with the serving deadline).
stream = np.vstack([rng.standard_normal((24, 24)),
                    rng.standard_normal((24, 24)) * 2.5])
rng.shuffle(stream)

# 1. Build. page_latency_s simulates a paged storage device (~50us per
# 4-KiB page); the four workers overlap their device waits, which is the
# resource a sharded deployment actually parallelizes.
engine = ShardedC2LSH(n_shards=SHARDS, n_workers=SHARDS, seed=7,
                      page_accounting=True, page_latency_s=50e-6)
t0 = time.perf_counter()
engine.fit(data)
print(f"built {SHARDS} shards ({engine.n_workers} workers) "
      f"in {time.perf_counter() - t0:.2f}s: {engine!r}")

with engine:
    # Spot-check: the sharded engine answers exactly like an unsharded
    # index on the same data and seed.
    first = engine.query_batch(stream[:4], k=K)
    plain = C2LSH(seed=7).fit(data).query_batch(stream[:4], k=K)
    assert all(np.array_equal(a.ids, b.ids)
               for a, b in zip(first, plain))
    print("spot-check vs unsharded C2LSH: identical top-k\n")

    # 2. Serve the stream in small batches under a deadline budget. The
    # deadline is checked at radius-round boundaries on shard-aggregated
    # totals: queries the first round already satisfies (T1/T2) finish
    # normally; the rest are cut off and return their best-so-far top-k.
    budget = QueryBudget(deadline_s=0.08)
    served = degraded = 0
    t0 = time.perf_counter()
    for start in range(0, len(stream), 8):
        batch = stream[start:start + 8]
        for result in engine.query_batch(batch, k=K, budget=budget):
            served += 1
            degraded += result.stats.degraded
    elapsed = time.perf_counter() - t0
    print(f"served {served} queries in {elapsed:.2f}s "
          f"({served / elapsed:.1f} q/s), {degraded} degraded by the "
          f"{budget.deadline_s * 1e3:.0f}ms deadline")

    # 3. Chaos: SIGKILL one worker mid-stream. The default failover
    # policy ("rebuild") detects the broken pool on the next call,
    # respawns the worker from the retained config (the dataset is still
    # in shared memory), replays the block's completed rounds, and the
    # answer comes back bit-identical — the stream never sees the death.
    reference = engine.query_batch(stream[:8], k=K)
    victim = engine.worker_pids()[0]
    os.kill(victim, signal.SIGKILL)
    print(f"\nSIGKILL worker 0 (pid {victim}) mid-stream...")
    healed = engine.query_batch(stream[:8], k=K)
    assert all(np.array_equal(a.ids, b.ids)
               for a, b in zip(reference, healed))
    assert not any(r.stats.degraded for r in healed)
    print(f"healed: identical top-k, worker 0 respawned as "
          f"pid {engine.worker_pids()[0]}")

    # 4. Aggregated telemetry: every engine phase lands under shard.*,
    # and the failover above under shard.failover.*.
    snapshot = engine.telemetry_snapshot()
    print("\ntelemetry snapshot:")
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):
            value = {k: round(v, 5) for k, v in value.items()
                     if k in ("count", "mean", "p95")}
        print(f"  {name}: {json.dumps(value)}")
