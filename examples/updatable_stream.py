"""Streaming updates: inserts, deletes, and automatic rebuilds.

C2LSH's bucket files are bulk-built; :class:`repro.core.UpdatableC2LSH`
turns them into a living index with an LSM-style side buffer, stable
handles, tombstoned deletes, and threshold-triggered rebuilds. This example
simulates a feed of arriving and expiring items and checks the index stays
exact-quality against a brute-force oracle throughout.

Run:  python examples/updatable_stream.py
"""

import numpy as np

from repro.core import UpdatableC2LSH
from repro.data import exact_knn
from repro.eval import Table

rng = np.random.default_rng(0)
index = UpdatableC2LSH(seed=0, c=2, min_index_size=500,
                       rebuild_threshold=0.25)

# Oracle state: handle -> vector for everything currently live.
oracle = {}

table = Table(["step", "live", "indexed", "buffered", "rebuilds",
               "recall@5"],
              title="Streaming inserts/deletes against a brute-force oracle")

for step in range(10):
    # A batch of arrivals near 3 drifting topic centers...
    centers = rng.uniform(-10, 10, size=(3, 24))
    batch = centers[rng.integers(0, 3, size=300)] \
        + rng.standard_normal((300, 24))
    handles = index.insert(batch)
    oracle.update(zip(handles.tolist(), batch))

    # ...and some departures.
    if len(oracle) > 600:
        victims = rng.choice(list(oracle), size=150, replace=False)
        index.delete(victims)
        for handle in victims:
            del oracle[int(handle)]

    # Check top-5 quality against the oracle on a few probes.
    live_handles = np.array(sorted(oracle))
    live_rows = np.vstack([oracle[h] for h in live_handles])
    hits = total = 0
    for probe_row in live_rows[rng.integers(0, len(live_rows), size=5)]:
        query = probe_row + 0.05 * rng.standard_normal(24)
        result = index.query(query, k=5)
        true_pos, _ = exact_knn(live_rows, query, 5)
        truth = set(live_handles[true_pos].tolist())
        hits += len(set(result.ids.tolist()) & truth)
        total += 5
    table.add(step, len(index), index._indexed_ids.size,
              len(index._buffer), index.rebuilds, f"{hits / total:.2f}")

table.print()
print("The side buffer absorbs arrivals between rebuilds; handles stay")
print("stable across rebuilds, deletes are filtered everywhere, and")
print("recall tracks the exact oracle throughout the stream.")

# -- the durable variant: the same stream, surviving a crash ----------------
#
# DurableUpdatableC2LSH write-ahead-logs every update before applying it
# and checkpoints full snapshots, so abandoning the object mid-stream
# (the moral equivalent of kill -9) loses nothing: reopening the
# directory replays the log and reproduces the exact state.

import shutil
import tempfile

from repro.durability import DurableUpdatableC2LSH

workdir = tempfile.mkdtemp(prefix="updatable-stream-")
durable = DurableUpdatableC2LSH(workdir, seed=0, c=2, min_index_size=500,
                                rebuild_threshold=0.25, fsync=False)
live = np.vstack([oracle[h] for h in sorted(oracle)])
durable.insert(live[: len(live) // 2])
durable.checkpoint()                       # snapshot + WAL rotation
durable.insert(live[len(live) // 2:])      # only in the WAL
probe = live[0] + 0.05 * rng.standard_normal(24)
before = durable.query(probe, k=5)
durable.close()                            # "crash": no checkpoint since

recovered = DurableUpdatableC2LSH(workdir, seed=0, c=2, min_index_size=500,
                                  rebuild_threshold=0.25, fsync=False)
after = recovered.query(probe, k=5)
assert np.array_equal(before.ids, after.ids)
print(f"\ndurable: {len(recovered)} live points recovered "
      f"({recovered.recovered_records} WAL records replayed); "
      f"answers match the pre-crash index exactly.")
recovered.close()
shutil.rmtree(workdir)
