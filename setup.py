"""Shim for environments whose setuptools lacks PEP 660 editable wheels."""
from setuptools import setup

setup()
