"""repro — reproduction of C2LSH (SIGMOD 2012).

C2LSH answers c-approximate k-nearest-neighbor queries in high-dimensional
Euclidean space with *dynamic collision counting*: ``m`` single-function
hash tables, a collision threshold ``l``, and virtual rehashing across the
radius grid ``{1, c, c^2, ...}``. See DESIGN.md for the system inventory
and README.md for a quickstart.

Public API highlights::

    from repro import C2LSH, QALSH, LinearScan, E2LSH, LSBForest
    from repro import PageManager, design_params
    from repro import QueryBudget, FaultInjector, CorruptIndexError
    from repro.data import mnist_like, exact_knn
"""

from .baselines import E2LSH, LinearScan, LSBForest, MultiProbeLSH
from .core import (
    C2LSH,
    AdaptiveConfig,
    C2LSHParams,
    QALSH,
    QueryResult,
    QueryStats,
    design_params,
)
from .durability import DurableUpdatableC2LSH
from .hashing import (
    BitSamplingFamily,
    LSHFamily,
    PStableFamily,
    SignRandomProjectionFamily,
)
from .reliability import (
    CorruptIndexError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    QueryBudget,
    RetryPolicy,
    TransientIOError,
    WorkerFailureError,
)
from .serving import QueryClient, QueryServer, ServerConfig
from .sharding import FailoverPolicy, ShardedC2LSH, default_parallelism
from .storage import PageManager

__version__ = "1.0.0"

__all__ = [
    "C2LSH",
    "AdaptiveConfig",
    "QALSH",
    "C2LSHParams",
    "design_params",
    "QueryResult",
    "QueryStats",
    "LinearScan",
    "E2LSH",
    "LSBForest",
    "MultiProbeLSH",
    "LSHFamily",
    "PStableFamily",
    "SignRandomProjectionFamily",
    "BitSamplingFamily",
    "PageManager",
    "QueryBudget",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "TransientIOError",
    "CorruptIndexError",
    "WorkerFailureError",
    "DurableUpdatableC2LSH",
    "ShardedC2LSH",
    "FailoverPolicy",
    "default_parallelism",
    "QueryServer",
    "QueryClient",
    "ServerConfig",
    "__version__",
]
