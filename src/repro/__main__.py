"""Package entry point: version info and an end-to-end self-check.

``python -m repro`` prints the version; ``python -m repro --selfcheck``
builds a small index, answers queries against exact ground truth, and
verifies the probabilistic machinery is calibrated — a thirty-second
smoke test for fresh installations.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__

__all__ = ["main"]


def selfcheck():
    """Build, query and calibrate on synthetic data; returns an exit code."""
    import numpy as np

    from . import C2LSH, PageManager
    from .data import exact_knn, gaussian_clusters
    from .hashing import PStableFamily, check_family_calibration

    print(f"repro {__version__} self-check")

    print("  [1/3] family calibration ...", end=" ")
    report = check_family_calibration(
        PStableFamily(16, c=2), [0.5, 1.0, 2.0], n_functions=3000)
    if not report.calibrated:
        print(f"FAILED (max error {report.max_abs_error:.4f})")
        return 1
    print(f"ok (max error {report.max_abs_error:.4f})")

    print("  [2/3] index build + query ...", end=" ")
    data = gaussian_clusters(4000, 24, n_clusters=10, cluster_std=1.0,
                             spread=10.0, seed=0)
    pm = PageManager()
    index = C2LSH(c=2, seed=0, page_manager=pm).fit(data)
    rng = np.random.default_rng(1)
    queries = data[rng.integers(0, 4000, size=10)] \
        + 0.05 * rng.standard_normal((10, 24))
    true_ids, _ = exact_knn(data, queries, 10)
    hits = 0
    for q, truth in zip(queries, true_ids):
        result = index.query(q, k=10)
        hits += len(set(result.ids.tolist()) & set(truth.tolist()))
    recall = hits / 100
    if recall < 0.9:
        print(f"FAILED (recall {recall:.2f})")
        return 1
    print(f"ok (recall {recall:.2f}, m={index.m}, l={index.l})")

    print("  [3/3] I/O accounting ...", end=" ")
    result = index.query(queries[0], k=10)
    if result.stats.io_reads <= 0 or index.index_pages() <= 0:
        print("FAILED (no I/O recorded)")
        return 1
    print(f"ok ({result.stats.io_reads} pages/query, "
          f"{index.index_pages()} index pages)")
    print("all checks passed")
    return 0


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="C2LSH reproduction — version and self-check.",
    )
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the end-to-end installation check")
    args = parser.parse_args(argv)
    if args.selfcheck:
        return selfcheck()
    print(f"repro {__version__} — C2LSH (SIGMOD 2012) reproduction. "
          f"Try: python -m repro --selfcheck")
    return 0


if __name__ == "__main__":
    sys.exit(main())
