"""Comparator methods: exact scan, E2LSH, Multi-Probe LSH, LSB-forest."""

from .e2lsh import E2LSH
from .linear import LinearScan
from .lsb import LSBForest
from .multiprobe import MultiProbeLSH, perturbation_sequence

__all__ = ["LinearScan", "E2LSH", "LSBForest", "MultiProbeLSH",
           "perturbation_sequence"]
