"""E2LSH baseline: the static concatenating search framework.

Classical LSH (Indyk-Motwani / Datar et al.): concatenate ``K`` hash
functions into a compound key and build ``L`` independent hash tables; a
query probes its ``L`` buckets and verifies everything found there. To
answer *c-ANN* (rather than a single (R, c)-NN decision), one structure is
built per radius of the grid ``{1, c, c^2, ...}`` and the query walks the
radii upward — which is exactly why E2LSH's index is so much larger than
C2LSH's (the paper's index-size comparison).

Implementation notes
--------------------
* Compound keys are reduced to a single 64-bit integer via a random linear
  combination of the ``K`` bucket ids (wrapping arithmetic) — the trick used
  by the original E2LSH package. Cross-key collisions are astronomically
  unlikely and only ever add a false candidate, never lose a true one from
  the same bucket.
* Default ``K``/``L`` follow the textbook setting
  ``K = ceil(log_{1/p2} n)`` and ``L = ceil(ln(1/fail) / p1^K)``; the
  theoretical ``L`` easily reaches the hundreds (see
  :meth:`E2LSH.theoretical_parameters`), so benchmark configs usually pass
  explicit smaller values, as every E2LSH user does in practice.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.scaling import resolve_base_radius
from ..obs import trace
from ..hashing.probability import choose_w, pstable_collision_probability
from ..hashing.pstable import PStableFamily
from ..storage.hashfile import ENTRY_BYTES
from ..core.results import QueryResult, QueryStats
from ..validation import as_data_matrix, as_query_vector

__all__ = ["E2LSH"]


class _TableSet:
    """L sorted compound-key tables for one radius."""

    def __init__(self, data, K, L, w, rng):
        n, dim = data.shape
        family = PStableFamily(dim, w=w)
        self.funcs = family.sample(K * L, rng)
        ids = self.funcs.hash(data)  # (n, K*L)
        self.K, self.L = K, L
        # Random odd coefficients give a wrapping 64-bit universal-ish mix.
        self.coefs = rng.integers(
            1, np.iinfo(np.int64).max, size=(L, K), dtype=np.int64
        ) | 1
        self.keys = np.empty((L, n), dtype=np.int64)
        self.order = np.empty((L, n), dtype=np.int64)
        self.sorted_keys = np.empty((L, n), dtype=np.int64)
        with np.errstate(over="ignore"):
            for t in range(L):
                block = ids[:, t * K:(t + 1) * K]
                key = (block * self.coefs[t]).sum(axis=1)
                self.keys[t] = key
                self.order[t] = np.argsort(key, kind="stable")
                self.sorted_keys[t] = key[self.order[t]]

    def query_keys(self, query):
        ids = self.funcs.hash(query)  # (K*L,)
        with np.errstate(over="ignore"):
            return np.array(
                [
                    int((ids[t * self.K:(t + 1) * self.K]
                         * self.coefs[t]).sum())
                    for t in range(self.L)
                ],
                dtype=np.int64,
            )

    def bucket(self, t, key):
        lo = int(np.searchsorted(self.sorted_keys[t], key, side="left"))
        hi = int(np.searchsorted(self.sorted_keys[t], key, side="right"))
        return self.order[t, lo:hi]


class E2LSH:
    """Static-concatenation LSH over a radius grid.

    Parameters
    ----------
    K, L:
        Functions per compound key and number of tables per radius;
        ``None`` selects the theoretical values at :meth:`fit` time.
    c:
        Approximation ratio (controls the radius grid and default ``w``).
    w:
        Base bucket width (defaults to the rho-minimizing width).
    radii:
        Radius grid; the structure for radius ``r`` hashes with width
        ``w * r``. Default ``(1,)`` = single level, the common practical
        setup with a tuned ``w``.
    fail:
        Target per-radius miss probability used for the default ``L``.
    """

    def __init__(self, K=None, L=None, c=2, w=None, radii=(1,), fail=0.1,
                 seed=None, rng=None, page_manager=None, base_radius="auto"):
        self._K, self._L = K, L
        self.c = float(c)
        self.w = float(w) if w is not None else choose_w(self.c)
        self.radii = tuple(sorted(radii))
        if not self.radii or self.radii[0] <= 0:
            raise ValueError(f"radii must be positive, got {radii}")
        self.fail = float(fail)
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._pm = page_manager
        self._base_radius = base_radius
        self._scale = 1.0
        self._data = None
        self._tables = None
        self._object_pages = 1
        self.K = None
        self.L = None

    @staticmethod
    def theoretical_parameters(n, c=2, w=None, fail=0.1):
        """Textbook ``(K, L)`` for database size ``n`` — typically huge ``L``."""
        if n < 2:
            raise ValueError(f"n must exceed 1, got {n}")
        w = w if w is not None else choose_w(c)
        p1 = pstable_collision_probability(1.0, w)
        p2 = pstable_collision_probability(float(c), w)
        K = max(1, math.ceil(math.log(n) / math.log(1.0 / p2)))
        L = max(1, math.ceil(math.log(1.0 / fail) / (p1 ** K)))
        return K, L

    def fit(self, data):
        """Build L sorted compound-key tables per radius; returns self."""
        data = as_data_matrix(data)
        n, dim = data.shape
        if self._K is None or self._L is None:
            K_th, L_th = self.theoretical_parameters(n, self.c, self.w,
                                                     self.fail)
            self.K = self._K if self._K is not None else K_th
            self.L = self._L if self._L is not None else L_th
        else:
            self.K, self.L = int(self._K), int(self._L)
        if self.K < 1 or self.L < 1:
            raise ValueError(f"need K >= 1 and L >= 1, got {self.K}, {self.L}")
        self._data = data
        self._scale = resolve_base_radius(self._base_radius, data, self._rng)
        hashed = data / self._scale
        self._tables = [
            _TableSet(hashed, self.K, self.L, self.w * r, self._rng)
            for r in self.radii
        ]
        if self._pm is not None:
            self._object_pages = max(1, self._pm.pages_for(1, dim * 8))
            self._pm.charge_write(
                len(self.radii) * self.L * self._pm.pages_for(n, ENTRY_BYTES)
                + self._pm.pages_for(n, dim * 8),
                site="build",
            )
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._data is not None

    def index_pages(self):
        """Pages for all hash tables across the radius grid."""
        if self._pm is None:
            raise RuntimeError("index was built without a page manager")
        n = self._data.shape[0]
        return len(self.radii) * self.L * self._pm.pages_for(n, ENTRY_BYTES)

    def query(self, query, k=1):
        """Probe the query's bucket in every table; returns a QueryResult."""
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        started = time.perf_counter()
        n, dim = self._data.shape
        query = as_query_vector(query, dim)
        snapshot = self._pm.snapshot() if self._pm is not None else None
        stats = QueryStats()
        seen = np.zeros(n, dtype=bool)
        cand_ids, cand_dists = [], []
        n_candidates = 0

        hashed_query = query / self._scale
        with trace.span("query", k=int(k), index="e2lsh") as qspan:
            for radius, tables in zip(self.radii, self._tables):
                with trace.span("round", radius=int(radius)):
                    with trace.span("hash"):
                        qkeys = tables.query_keys(hashed_query)
                    for t in range(self.L):
                        with trace.span("count_round", table=t):
                            bucket = tables.bucket(t, qkeys[t])
                            stats.scanned_entries += int(bucket.size)
                            if self._pm is not None:
                                # Locating the bucket lands on its first
                                # data page.
                                self._pm.charge_read(
                                    max(1, self._pm.pages_for(
                                        bucket.size, ENTRY_BYTES)),
                                    site="bucket_scan",
                                )
                            fresh = bucket[~seen[bucket]]
                            fresh = np.unique(fresh)
                        if fresh.size:
                            seen[fresh] = True
                            with trace.span("verify",
                                            count=int(fresh.size)):
                                if self._pm is not None:
                                    self._pm.charge_read(
                                        self._object_pages * fresh.size,
                                        site="data_read",
                                    )
                                diff = self._data[fresh] - query
                                dists = np.sqrt(
                                    np.einsum("ij,ij->i", diff, diff))
                            cand_ids.append(fresh)
                            cand_dists.append(dists)
                            n_candidates += fresh.size
                    stats.rounds += 1
                    stats.final_radius = int(radius)
                    threshold = self.c * radius * self._scale
                    within = sum(
                        int(np.count_nonzero(d <= threshold))
                        for d in cand_dists
                    )
                if within >= k:
                    stats.terminated_by = "T1"
                    break
            else:
                stats.terminated_by = "exhausted"

            stats.candidates = n_candidates
            if snapshot is not None:
                delta_io = self._pm.since(snapshot)
                stats.io_reads = delta_io.reads
                stats.io_writes = delta_io.writes
            stats.elapsed_s = time.perf_counter() - started
            qspan.set(rounds=stats.rounds, candidates=n_candidates,
                      io_reads=stats.io_reads,
                      terminated_by=stats.terminated_by,
                      elapsed_s=stats.elapsed_s)

        if not cand_ids:
            # Empty buckets everywhere: return the conventional "no answer"
            # (callers treat a short result as a miss).
            return QueryResult(np.empty(0, np.int64), np.empty(0), stats)
        ids = np.concatenate(cand_ids)
        dists = np.concatenate(cand_dists)
        return QueryResult.from_candidates(ids, dists, min(k, ids.size), stats)

    def query_batch(self, queries, k=1):
        """Answer many queries; returns a list of QueryResult."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError("queries must have shape (q, dim)")
        return [self.query(q, k=k) for q in queries]

    def __repr__(self):
        state = "unfitted" if not self.is_fitted else (
            f"n={self._data.shape[0]}, K={self.K}, L={self.L}, "
            f"radii={self.radii}"
        )
        return f"E2LSH({state})"
