"""Exact linear scan baseline.

Computes exact k-NN by scanning the whole data file. Serves both as the
accuracy floor in every experiment (ratio exactly 1.0) and as the I/O
ceiling: a scan costs ``pages_for(n, dim * 8)`` sequential reads.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..obs import trace
from ..validation import as_data_matrix, as_query_vector

__all__ = ["LinearScan"]


class LinearScan:
    """Brute-force exact search under a pluggable metric.

    Parameters
    ----------
    metric:
        ``"euclidean"`` (default) or a callable ``(points, query) -> dists``.
    page_manager:
        Optional I/O accounting.
    """

    def __init__(self, metric="euclidean", page_manager=None):
        if metric == "euclidean":
            self._distance = _euclidean
        elif callable(metric):
            self._distance = metric
        else:
            raise ValueError(f"unsupported metric: {metric!r}")
        self._pm = page_manager
        self._data = None

    def fit(self, data):
        """Store the data matrix (and charge its file write); returns self."""
        data = as_data_matrix(data)
        self._data = data
        if self._pm is not None:
            self._pm.charge_write(
                self._pm.pages_for(data.shape[0], data.shape[1] * 8),
                site="build",
            )
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._data is not None

    def query(self, query, k=1):
        """Scan everything and return the exact top-k."""
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        started = time.perf_counter()
        n, dim = self._data.shape
        query = as_query_vector(query, dim)
        stats = QueryStats(candidates=n, scanned_entries=n,
                           terminated_by="scan")
        snapshot = self._pm.snapshot() if self._pm is not None else None
        with trace.span("query", k=int(k), index="linear") as qspan:
            with trace.span("verify", count=int(n)):
                if self._pm is not None:
                    self._pm.charge_sequential_read(n, dim * 8,
                                                    site="data_scan")
                dists = self._distance(self._data, query)
            if snapshot is not None:
                delta_io = self._pm.since(snapshot)
                stats.io_reads = delta_io.reads
                stats.io_writes = delta_io.writes
            stats.elapsed_s = time.perf_counter() - started
            qspan.set(candidates=n, io_reads=stats.io_reads,
                      terminated_by="scan", elapsed_s=stats.elapsed_s)
        return QueryResult.from_candidates(
            np.arange(n, dtype=np.int64), dists, k, stats
        )

    def query_batch(self, queries, k=1):
        """Answer many queries; returns a list of QueryResult."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError("queries must have shape (q, dim)")
        return [self.query(q, k=k) for q in queries]


def _euclidean(points, query):
    diff = points - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
