"""LSB-forest baseline (Tao et al., SIGMOD 2009) — C2LSH's main comparator.

An LSB-tree projects every point with ``m`` Gaussian LSH functions,
quantizes each projection to a ``u``-bit integer, interleaves the bits into
a ``m*u``-bit Z-order code, and stores the points sorted by code in a
B+-tree. Points whose codes share a long common prefix (LLCP) agree on the
high bits of *every* projection, i.e. fall into the same coarse grid cell —
so a bidirectional leaf sweep around the query's code position visits
points in roughly increasing projected distance. An LSB-*forest* keeps ``L``
independent trees and merges their sweeps by descending LLCP.

Reconstruction notes (flagged in DESIGN.md): the published constants
``m = ceil(log_{1/p2}(dn/B))`` and ``L = ceil(sqrt(dn/B))`` are kept as
defaults; the quantization width is derived from the projection span and a
``u``-bit budget (the paper assumes integer-coordinate data, which synthetic
profiles are not); and the two LSB termination rules are parameterized as
``t1_scale`` (distance threshold per LLCP level) and ``budget_factor``
(leaf entries visited, ``budget_factor * B * L``).
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..obs import trace
from ..validation import as_data_matrix, as_query_vector
from ..hashing.probability import pstable_collision_probability
from ..storage.btree import BPlusTree
from ..storage.hashfile import ENTRY_BYTES
from ..storage.pages import DEFAULT_PAGE_SIZE
from ..storage.zorder import interleave, sort_order

__all__ = ["LSBForest"]


class _LSBTree:
    """One LSB-tree: projections, quantizer and the code-ordered B+-tree."""

    def __init__(self, data, m, u, rng, leaf_capacity, fanout, page_manager):
        n, dim = data.shape
        self.m, self.u = m, u
        self.projections = rng.standard_normal((dim, m))
        proj = data @ self.projections
        self.mins = proj.min(axis=0)
        spans = proj.max(axis=0) - self.mins
        # One cell width per tree so every value fits in u bits.
        self.w = max(float(spans.max()) / (2 ** u - 1), 1e-12)
        values = self.quantize(proj)
        codes = interleave(values, u)
        order = sort_order(codes)
        self.total_bits = m * u
        keys = [tuple(row) for row in codes[order].tolist()]
        self.btree = BPlusTree(
            keys, order.tolist(), leaf_capacity=leaf_capacity,
            fanout=fanout, page_manager=page_manager,
        )

    def quantize(self, proj):
        values = np.floor((proj - self.mins) / self.w).astype(np.int64)
        return np.clip(values, 0, 2 ** self.u - 1)

    def query_key(self, query):
        proj = query @ self.projections
        values = self.quantize(proj[np.newaxis, :])
        code = interleave(values, self.u)[0]
        return tuple(int(x) for x in code)


def _llcp(a, b, total_bits):
    """LLCP of two codes given as tuples of left-aligned 64-bit words."""
    for idx, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return min(total_bits, idx * 64 + 64 - (x ^ y).bit_length())
    return total_bits


class LSBForest:
    """A forest of LSB-trees answering c-k-ANN queries.

    Parameters
    ----------
    n_trees:
        Number of trees ``L``; default ``ceil(sqrt(dim * n / B))`` as
        published (``B`` = hash entries per page). Benchmarks usually cap it.
    m:
        Hash functions per tree; default ``ceil(log_{1/p2}(dim * n / B))``.
    u_bits:
        Bits per quantized projection (default 10).
    budget_factor:
        The sweep visits at most ``budget_factor * B * L`` leaf entries.
    t1_scale:
        Early-termination distance threshold is
        ``t1_scale * w * 2**level`` (see module docstring). The default 0.1
        was tuned on the synthetic profiles so LSB stops once its frontier
        cells can no longer contain closer points.
    """

    def __init__(self, n_trees=None, m=None, u_bits=10, budget_factor=4.0,
                 t1_scale=0.1, c=2, seed=None, rng=None, page_manager=None,
                 page_size=DEFAULT_PAGE_SIZE):
        self._n_trees = n_trees
        self._m = m
        self.u = int(u_bits)
        if self.u < 1:
            raise ValueError(f"u_bits must be positive, got {u_bits}")
        self.budget_factor = float(budget_factor)
        self.t1_scale = float(t1_scale)
        self.c = float(c)
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._pm = page_manager
        self._page_size = int(page_size)
        self._data = None
        self._trees = None
        self._object_pages = 1
        self.m = None
        self.L = None

    @staticmethod
    def theoretical_parameters(n, dim, page_size=DEFAULT_PAGE_SIZE, c=2.0):
        """Published ``(m, L)``: ``log_{1/p2}(dn/B)`` functions, ``sqrt(dn/B)`` trees."""
        B = max(1, page_size // ENTRY_BYTES)
        load = max(2.0, dim * n / B)
        p2 = pstable_collision_probability(float(c), 4.0)
        m = max(2, math.ceil(math.log(load) / math.log(1.0 / p2)))
        L = max(1, math.ceil(math.sqrt(load)))
        return m, L

    def fit(self, data):
        """Build L LSB-trees (Z-order B+-trees); returns self."""
        data = as_data_matrix(data)
        n, dim = data.shape
        m_th, L_th = self.theoretical_parameters(n, dim, self._page_size,
                                                 self.c)
        self.m = int(self._m) if self._m is not None else m_th
        self.L = int(self._n_trees) if self._n_trees is not None else L_th
        if self.m < 1 or self.L < 1:
            raise ValueError(f"need m >= 1 and L >= 1, got {self.m}, {self.L}")
        self._data = data
        B = max(1, self._page_size // ENTRY_BYTES)
        fanout = max(2, self._page_size // 16)
        self._trees = [
            _LSBTree(data, self.m, self.u, self._rng, B, fanout, self._pm)
            for _ in range(self.L)
        ]
        if self._pm is not None:
            self._object_pages = max(1, self._pm.pages_for(1, dim * 8))
            self._pm.charge_write(self._pm.pages_for(n, dim * 8),
                                  site="build")
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._data is not None

    def index_pages(self):
        """Pages for all B+-tree nodes across the forest."""
        if self._pm is None:
            raise RuntimeError("index was built without a page manager")
        return sum(tree.btree.node_count() for tree in self._trees)

    def query(self, query, k=1):
        """Merge the forest's leaf sweeps by descending LLCP; top-k result."""
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        started = time.perf_counter()
        n, dim = self._data.shape
        query = as_query_vector(query, dim)
        snapshot = self._pm.snapshot() if self._pm is not None else None
        stats = QueryStats()
        B = max(1, self._page_size // ENTRY_BYTES)
        budget = min(2 * self.L * n,
                     max(k, int(self.budget_factor * B * self.L)))
        mean_w = float(np.mean([t.w for t in self._trees]))
        total_bits = self._trees[0].total_bits

        qspan = trace.span("query", k=int(k), index="lsb")
        with qspan:
            # One left and one right cursor per tree, merged by descending
            # LLCP.
            heap = []
            tiebreak = 0
            cursors = {}
            with trace.span("hash", trees=self.L):
                for t_idx, tree in enumerate(self._trees):
                    qkey = tree.query_key(query)
                    pos = tree.btree.search_position(qkey)
                    for side, start in ((-1, pos - 1), (+1, pos)):
                        cursor = tree.btree.cursor(start)
                        cursors[(t_idx, side)] = (cursor, qkey)
                        entry = cursor.peek()
                        if entry is not None:
                            key, oid = entry
                            heapq.heappush(
                                heap,
                                (-_llcp(key, qkey, total_bits), tiebreak,
                                 t_idx, side, oid),
                            )
                            tiebreak += 1

            seen = np.zeros(n, dtype=bool)
            cand_ids, cand_dists = [], []
            best = []  # max-heap (negated) of the k best distances so far
            visited = 0
            terminated = "exhausted"

            with trace.span("round", budget=int(budget)):
                while heap and visited < budget:
                    neg_llcp, _, t_idx, side, oid = heapq.heappop(heap)
                    visited += 1
                    if not seen[oid]:
                        seen[oid] = True
                        if self._pm is not None:
                            self._pm.charge_read(self._object_pages,
                                                 site="data_read")
                        dist = float(np.linalg.norm(self._data[oid] - query))
                        cand_ids.append(oid)
                        cand_dists.append(dist)
                        if len(best) < k:
                            heapq.heappush(best, -dist)
                        elif dist < -best[0]:
                            heapq.heapreplace(best, -dist)
                    cursor, qkey = cursors[(t_idx, side)]
                    cursor.advance(side)
                    entry = cursor.peek()
                    if entry is not None:
                        key, next_oid = entry
                        heapq.heappush(
                            heap,
                            (-_llcp(key, qkey, total_bits), tiebreak, t_idx,
                             side, next_oid),
                        )
                        tiebreak += 1

                    if len(best) == k and heap:
                        frontier_llcp = -heap[0][0]
                        level = min(self.u,
                                    max(0, self.u - frontier_llcp // self.m))
                        threshold = self.t1_scale * mean_w * (2 ** level)
                        if -best[0] <= threshold:
                            terminated = "T1"
                            break
                else:
                    if visited >= budget:
                        terminated = "T2"

            stats.terminated_by = terminated
            stats.scanned_entries = visited
            stats.candidates = len(cand_ids)
            stats.rounds = 1
            if snapshot is not None:
                delta_io = self._pm.since(snapshot)
                stats.io_reads = delta_io.reads
                stats.io_writes = delta_io.writes
            stats.elapsed_s = time.perf_counter() - started
            qspan.set(candidates=stats.candidates, io_reads=stats.io_reads,
                      terminated_by=terminated, elapsed_s=stats.elapsed_s)

        if not cand_ids:
            return QueryResult(np.empty(0, np.int64), np.empty(0), stats)
        ids = np.asarray(cand_ids, dtype=np.int64)
        dists = np.asarray(cand_dists, dtype=np.float64)
        return QueryResult.from_candidates(ids, dists, min(k, ids.size), stats)

    def query_batch(self, queries, k=1):
        """Answer many queries; returns a list of QueryResult."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError("queries must have shape (q, dim)")
        return [self.query(q, k=k) for q in queries]

    def __repr__(self):
        if not self.is_fitted:
            return "LSBForest(unfitted)"
        return (f"LSBForest(n={self._data.shape[0]}, L={self.L}, "
                f"m={self.m}, u={self.u})")
