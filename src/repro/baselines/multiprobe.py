"""Multi-Probe LSH baseline (Lv et al., VLDB 2007).

The classic fix for E2LSH's table explosion, and the conceptual rival of
C2LSH's dynamic counting: instead of adding tables, probe *multiple nearby
buckets* of each table. For the quantized projection ``h_i = floor((a_i.q +
b_i)/w)``, the query's offset to each bucket boundary says how likely the
neighboring bucket ``h_i ± 1`` is to hold near points; a *perturbation set*
flips several coordinates at once and is scored by the summed squared
boundary distances. Probes are generated best-first with the paper's
shift/expand heap, which enumerates perturbation sets in exactly
increasing-score order.

Including it lets the harness place C2LSH against *both* published answers
to "hundreds of tables is too many": multi-probing (this module) and
dynamic collision counting (the paper).
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..obs import trace
from ..validation import as_data_matrix, as_query_vector
from ..core.scaling import resolve_base_radius
from ..hashing.probability import choose_w
from ..hashing.pstable import PStableFamily
from ..storage.hashfile import ENTRY_BYTES

__all__ = ["MultiProbeLSH", "perturbation_sequence"]


def perturbation_sequence(scores, n_probes):
    """Enumerate perturbation sets in increasing total score.

    Parameters
    ----------
    scores:
        ``(2K,)`` array: ``scores[2j]`` is the cost of perturbing function
        ``j`` by −1 (distance to the lower boundary, squared) and
        ``scores[2j + 1]`` the cost of +1. Any positive costs work; the
        generator only relies on their order.
    n_probes:
        Number of perturbation sets to emit **after** the home bucket.

    Yields
    ------
    list of (function index, ±1) pairs, at most ``n_probes`` of them,
    in non-decreasing score order; each function appears at most once per
    set (flipping the same coordinate both ways cancels out).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size % 2 != 0 or scores.size == 0:
        raise ValueError("scores must be a non-empty (2K,) array")
    if n_probes < 0:
        raise ValueError(f"n_probes must be non-negative, got {n_probes}")
    two_k = scores.size
    # Sort single perturbations by cost; zs[rank] = (cost, func, delta).
    order = np.argsort(scores, kind="stable")
    zs = [(float(scores[flat]), int(flat) // 2, -1 if flat % 2 == 0 else +1)
          for flat in order]

    def total(ranks):
        return sum(zs[r][0] for r in ranks)

    def valid(ranks):
        funcs = [zs[r][1] for r in ranks]
        return len(set(funcs)) == len(funcs)

    emitted = 0
    heap = [(total((0,)), (0,))]
    seen = {(0,)}
    while heap and emitted < n_probes:
        score, ranks = heapq.heappop(heap)
        if valid(ranks):
            yield [(zs[r][1], zs[r][2]) for r in ranks]
            emitted += 1
        last = ranks[-1]
        if last + 1 < two_k:
            shift = ranks[:-1] + (last + 1,)
            if shift not in seen:
                seen.add(shift)
                heapq.heappush(heap, (total(shift), shift))
            expand = ranks + (last + 1,)
            if expand not in seen:
                seen.add(expand)
                heapq.heappush(heap, (total(expand), expand))


class MultiProbeLSH:
    """E2LSH-layout index answering queries with multi-probing.

    Parameters
    ----------
    K, L:
        Functions per compound key and number of tables (both required —
        the whole point is choosing a small ``L``).
    n_probes:
        Extra buckets probed per table beyond the home bucket.
    w, c, base_radius, seed/rng, page_manager:
        As in :class:`repro.baselines.e2lsh.E2LSH`.
    """

    def __init__(self, K=8, L=8, n_probes=16, c=2, w=None, seed=None,
                 rng=None, page_manager=None, base_radius="auto"):
        if K < 1 or L < 1:
            raise ValueError(f"need K >= 1 and L >= 1, got {K}, {L}")
        if n_probes < 0:
            raise ValueError(f"n_probes must be non-negative, got {n_probes}")
        self.K, self.L = int(K), int(L)
        self.n_probes = int(n_probes)
        self.c = float(c)
        self.w = float(w) if w is not None else choose_w(self.c)
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._pm = page_manager
        self._base_radius = base_radius
        self._scale = 1.0
        self._data = None
        self._funcs = None
        self._coefs = None
        self._order = None
        self._sorted_keys = None
        self._object_pages = 1

    def fit(self, data):
        """Build L compound-key tables plus raw projections; returns self."""
        data = as_data_matrix(data)
        n, dim = data.shape
        self._data = data
        self._scale = resolve_base_radius(self._base_radius, data, self._rng)
        family = PStableFamily(dim, w=self.w)
        self._funcs = family.sample(self.K * self.L, self._rng)
        ids = self._funcs.hash(data / self._scale)  # (n, K*L)
        self._coefs = self._rng.integers(
            1, np.iinfo(np.int64).max, size=(self.L, self.K), dtype=np.int64
        ) | 1
        self._order = np.empty((self.L, n), dtype=np.int64)
        self._sorted_keys = np.empty((self.L, n), dtype=np.int64)
        with np.errstate(over="ignore"):
            for t in range(self.L):
                block = ids[:, t * self.K:(t + 1) * self.K]
                key = (block * self._coefs[t]).sum(axis=1)
                self._order[t] = np.argsort(key, kind="stable")
                self._sorted_keys[t] = key[self._order[t]]
        if self._pm is not None:
            self._object_pages = max(1, self._pm.pages_for(1, dim * 8))
            self._pm.charge_write(
                self.L * self._pm.pages_for(n, ENTRY_BYTES)
                + self._pm.pages_for(n, dim * 8),
                site="build",
            )
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._data is not None

    def index_pages(self):
        """Pages occupied by the L hash-table entry files."""
        if self._pm is None:
            raise RuntimeError("index was built without a page manager")
        return self.L * self._pm.pages_for(self._data.shape[0], ENTRY_BYTES)

    def _bucket(self, t, key):
        lo = int(np.searchsorted(self._sorted_keys[t], key, side="left"))
        hi = int(np.searchsorted(self._sorted_keys[t], key, side="right"))
        return self._order[t, lo:hi]

    def query(self, query, k=1):
        """Probe the home bucket plus n_probes perturbed buckets per table."""
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        started = time.perf_counter()
        n, dim = self._data.shape
        query = as_query_vector(query, dim)
        snapshot = self._pm.snapshot() if self._pm is not None else None
        stats = QueryStats()

        qspan = trace.span("query", k=int(k), index="multiprobe")
        with qspan:
            with trace.span("hash"):
                proj = self._funcs.project(query / self._scale)   # (K*L,)
                home = np.floor(proj / self.w).astype(np.int64)
            # Boundary distances: offset to the lower edge (perturb by -1)
            # and to the upper edge (perturb by +1), squared as in the
            # paper.
            frac = proj - home * self.w
            seen = np.zeros(n, dtype=bool)
            cand_ids, cand_dists = [], []
            n_candidates = 0

            with np.errstate(over="ignore"):
                for t in range(self.L):
                    with trace.span("round", table=t):
                        sl = slice(t * self.K, (t + 1) * self.K)
                        h = home[sl].copy()
                        coefs = self._coefs[t]
                        scores = np.empty(2 * self.K)
                        scores[0::2] = frac[sl] ** 2          # move down
                        scores[1::2] = (self.w - frac[sl]) ** 2  # move up
                        probes = [[]]  # home bucket first
                        probes.extend(
                            perturbation_sequence(scores, self.n_probes))
                        for delta_set in probes:
                            key = h.copy()
                            for func_idx, direction in delta_set:
                                key[func_idx] += direction
                            bucket = self._bucket(t, int((key * coefs).sum()))
                            stats.rounds += 1
                            stats.scanned_entries += int(bucket.size)
                            if self._pm is not None:
                                self._pm.charge_bucket_scans(
                                    [max(1, bucket.size)], ENTRY_BYTES)
                            fresh = np.unique(bucket[~seen[bucket]])
                            if fresh.size:
                                seen[fresh] = True
                                if self._pm is not None:
                                    self._pm.charge_read(
                                        self._object_pages * fresh.size,
                                        site="data_read")
                                diff = self._data[fresh] - query
                                cand_ids.append(fresh)
                                cand_dists.append(
                                    np.sqrt(np.einsum("ij,ij->i",
                                                      diff, diff)))
                                n_candidates += fresh.size

            stats.candidates = n_candidates
            stats.terminated_by = "probes-exhausted"
            if snapshot is not None:
                delta_io = self._pm.since(snapshot)
                stats.io_reads = delta_io.reads
                stats.io_writes = delta_io.writes
            stats.elapsed_s = time.perf_counter() - started
            qspan.set(candidates=n_candidates, io_reads=stats.io_reads,
                      terminated_by=stats.terminated_by,
                      elapsed_s=stats.elapsed_s)
        if not cand_ids:
            return QueryResult(np.empty(0, np.int64), np.empty(0), stats)
        ids = np.concatenate(cand_ids)
        dists = np.concatenate(cand_dists)
        return QueryResult.from_candidates(ids, dists, min(k, ids.size),
                                           stats)

    def query_batch(self, queries, k=1):
        """Answer many queries; returns a list of QueryResult."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError("queries must have shape (q, dim)")
        return [self.query(q, k=k) for q in queries]

    def __repr__(self):
        state = "unfitted" if not self.is_fitted else (
            f"n={self._data.shape[0]}, K={self.K}, L={self.L}, "
            f"probes={self.n_probes}"
        )
        return f"MultiProbeLSH({state})"
