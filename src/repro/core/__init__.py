"""The paper's contribution: C2LSH and its parameter/counting machinery."""

from .adaptive import AdaptiveConfig, as_probe_config
from .batchengine import BatchQueryCounter, WithinRadiusTally, batch_query
from .c2lsh import C2LSH
from .counting import CollisionCounter, QueryCounter
from .explain import QueryExplanation, RoundTrace, explain
from .params import C2LSHParams, design_params, optimal_alpha, required_m
from .persist import (
    CorruptIndexError,
    load_arrays,
    load_c2lsh,
    load_qalsh,
    save_arrays,
    save_c2lsh,
    save_qalsh,
)
from .qalsh import QALSH, qalsh_collision_probability, qalsh_optimal_w
from .tuning import TrialResult, TuningResult, tune_c2lsh
from .updatable import UpdatableC2LSH
from .results import QueryResult, QueryStats

__all__ = [
    "AdaptiveConfig",
    "as_probe_config",
    "C2LSH",
    "QALSH",
    "C2LSHParams",
    "design_params",
    "optimal_alpha",
    "required_m",
    "CollisionCounter",
    "QueryCounter",
    "BatchQueryCounter",
    "WithinRadiusTally",
    "batch_query",
    "QueryResult",
    "QueryStats",
    "save_c2lsh",
    "load_c2lsh",
    "save_arrays",
    "load_arrays",
    "CorruptIndexError",
    "save_qalsh",
    "load_qalsh",
    "qalsh_collision_probability",
    "qalsh_optimal_w",
    "tune_c2lsh",
    "TuningResult",
    "TrialResult",
    "UpdatableC2LSH",
    "explain",
    "QueryExplanation",
    "RoundTrace",
]
