"""Query-adaptive probing: estimated radius starts, ordered probes, early exit.

The classic C2LSH schedule makes every query pay for the full radius grid
``{1, c, c^2, ...}`` and, within each round, for all ``m`` table scans plus
the verification of *every* object that crossed the collision threshold —
even when the first few probed tables already satisfy the termination
rules. This module implements the query-adaptive mode (DB-LSH / multi-probe
direction; see docs/PERFORMANCE.md):

1. **Radius-start estimation** (:func:`estimate_start_levels`): from the
   per-table sorted hash arrays, compute for each query the smallest grid
   level at which at least ``l`` tables have a non-empty query bucket.
   Below that level no object can reach collision count ``l``, so no
   candidate, T1, or T2 outcome is possible — skipping straight to the
   estimated level is *answer-preserving* (interval nesting makes the
   jumped-to counts equal the incremental ones). The estimate costs two
   binary searches per table on data already in memory and charges no
   pages, consistent with the classic path never charging its searchsorted
   descents.

2. **Likelihood-ordered probing** (:func:`probe_order`): within a round,
   tables are probed in descending *margin* order — the distance from the
   query's raw projection to the nearest boundary of its radius-``R``
   bucket, the same boundary-distance score multi-probe LSH ranks
   perturbations by. Central buckets are the likeliest to contain near
   neighbors, so candidates (and T1/T2 satisfaction) arrive early.

3. **Chunked early exit**: the ordered tables are processed in
   ``AdaptiveConfig.chunks`` slices; after each slice the engine verifies
   the new threshold-crossers and re-checks T2/T1. A query whose
   termination rule is already satisfiable stops probing — the remaining
   tables are never scanned and their would-be crossers never verified.
   With ``chunks=1`` the single slice is the whole round and the mode is
   provably bit-identical to classic (same candidates, same order, same
   page charges); larger values trade a little tie-order fidelity for
   large I/O savings. PageManager is only ever charged for buckets
   actually probed.

Classic mode remains the bit-exactness oracle; adaptive mode preserves the
result-size / sortedness / verified-distance contract and the budget
semantics, but may settle for a smaller candidate pool. See docs/THEORY.md
for which of the paper's guarantees survive.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .. import kernels
from ..kernels import row_searchsorted
from ..obs import flight, trace
from ..reliability.budget import as_budget_list
from ..reliability.budget import tripped_cap as _tripped_cap_impl
from .batchengine import (
    MAX_ROUNDS,
    BatchQueryCounter,
    WithinRadiusTally,
    _fallback,
    _verify_many,
)
from .results import QueryResult, QueryStats

__all__ = ["AdaptiveConfig", "as_probe_config", "check_adaptive_supported",
           "collide_levels", "estimate_start_levels",
           "occupancy_start_levels", "occupancy_table",
           "merge_start_levels", "probe_order", "saturation_level",
           "adaptive_batch_query"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive probing mode.

    Attributes
    ----------
    chunks:
        Number of slices each round's ordered table list is probed in;
        termination is re-checked after every slice. ``1`` disables the
        early exit (bit-identical to classic); larger values exit earlier
        at a small cost in tie-order fidelity. Default 16.
    start_estimate:
        Skip the provably-empty small-radius rounds via
        :func:`estimate_start_levels` (answer-preserving).
    ordered_probes:
        Probe tables in descending margin order instead of table order.
        Ordering only matters when ``chunks > 1``.
    early_exit:
        Re-check termination between chunks and stop probing satisfied
        queries. When false, every round scans all ``m`` tables
        regardless of ``chunks``.
    t1_early_exit:
        Also check the T1 rule *between* chunks, not just at round end.
        Off by default: a mid-round T1 firing returns the bare ``k``
        within-radius candidates found so far, which satisfies the
        paper's ratio contract but measurably costs exact recall,
        whereas the default T2-only early exit stops with the full
        ``k + false_positive_budget`` pool (the paper's own pool size)
        and keeps recall at classic levels. Turn on for the
        maximum-I/O-savings end of the frontier.
    provisional_exit:
        Fire T2 on *projected* crossers: after probing a fraction ``p/m``
        of the round's tables, an object with partial count
        ``>= ceil(l * p/m)`` is on track to cross the collision
        threshold. When the projected pool reaches the T2 target, the
        engine verifies the best-counted objects (the classic engine's
        own graceful-fallback selection) and stops probing — this is
        what breaks through the "no candidate can be certified before
        ``l`` tables are probed" scan floor. Distances in the result are
        always exactly verified; only the *selection* of which objects
        to verify is predictive, so recall can dip slightly below an
        exit at certified counts (see BENCH_adaptive.json for measured
        frontiers). Queries that exit this way report
        ``terminated_by == "T2-early"``.
    provisional_min_frac:
        Minimum fraction of the round's tables that must be probed
        before a provisional exit is considered (default 0.5). Lower
        values exit earlier on noisier projections.
    provisional_pool_mult:
        On a provisional exit, verify ``min(mult * target, projected)``
        best-counted objects instead of the bare T2 target (default 4).
        Partial counts are heavily tied, so the bare target can drop
        true neighbors from the pool; verification costs one page per
        object — far cheaper than probing more tables — so a wider
        verified pool buys recall back at small I/O cost.
    """

    chunks: int = 16
    start_estimate: bool = True
    ordered_probes: bool = True
    early_exit: bool = True
    t1_early_exit: bool = False
    provisional_exit: bool = True
    provisional_min_frac: float = 0.5
    provisional_pool_mult: float = 4.0

    def __post_init__(self):
        if int(self.chunks) < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        if not 0.0 < float(self.provisional_min_frac) <= 1.0:
            raise ValueError(
                f"provisional_min_frac must lie in (0, 1], got "
                f"{self.provisional_min_frac}"
            )
        if float(self.provisional_pool_mult) < 1.0:
            raise ValueError(
                f"provisional_pool_mult must be >= 1, got "
                f"{self.provisional_pool_mult}"
            )


def as_probe_config(probe):
    """Normalize a ``probe=`` argument: ``None`` for classic, else a config.

    Accepts ``"classic"`` / ``None`` (classic mode), ``"adaptive"`` (the
    default :class:`AdaptiveConfig`), or an explicit config instance.
    """
    if probe is None or probe == "classic":
        return None
    if probe == "adaptive":
        return AdaptiveConfig()
    if isinstance(probe, AdaptiveConfig):
        return probe
    raise ValueError(
        f"probe must be 'classic', 'adaptive' or an AdaptiveConfig, "
        f"got {probe!r}"
    )


def check_adaptive_supported(funcs, incremental=True):
    """Raise when the index cannot run adaptive probing.

    The estimator and the margin score need quantized-projection bucket
    ids (a rehashable family exposing raw projections), and the chunked
    counter only exists on the incremental path — the A2 recount ablation
    keeps its classic I/O pattern. docs/PERFORMANCE.md lists these as the
    "when classic is required" cases.
    """
    if not getattr(funcs, "rehashable", False) \
            or not hasattr(funcs, "project"):
        raise ValueError(
            "adaptive probing requires a rehashable quantized-projection "
            "family (radius rounds and projection margins do not exist "
            "otherwise); use probe='classic'"
        )
    if not incremental:
        raise ValueError(
            "adaptive probing requires incremental counting; the recount "
            "ablation (incremental=False) must use probe='classic'"
        )


def saturation_level(id_span, c):
    """Smallest grid level whose radius saturates the bucket-id span.

    At radius ``>= 2 * (id_span + 1)`` every table's interval covers all
    entries (the :class:`~repro.core.counting.QueryCounter` saturation
    rule), so no per-table collide level ever needs to exceed this.
    """
    level, radius = 0, 1
    limit = 2 * (int(id_span) + 1)
    while radius < limit and level < MAX_ROUNDS:
        radius *= c
        level += 1
    return level


def collide_levels(counter, qids, c):
    """Per-(query, table) minimal grid level with a non-empty query bucket.

    ``counter`` is a :class:`~repro.core.counting.CollisionCounter`;
    ``qids`` the ``(Q, m)`` base bucket ids. Returns an int64 ``(Q, m)``
    matrix: entry ``(q, j)`` is the smallest ``t`` such that the radius-
    ``c**t`` bucket of query ``q`` in table ``j`` contains at least one
    database entry (capped at :func:`saturation_level`, where coverage is
    total by definition).

    The radius-``R`` bucket is the id interval ``[floor(qid/R)*R, +R)``.
    It is non-empty iff it contains the query's nearest entry on either
    side, so two binary searches per table suffice; the level scan is a
    vectorized walk over at most ``saturation_level`` grid levels. No
    pages are charged — like the classic path's searchsorted descent,
    this touches only the in-memory sorted id arrays.
    """
    qids = np.asarray(qids, dtype=np.int64)
    sorted_ids = counter.sorted_ids
    m, n = sorted_ids.shape
    pos = row_searchsorted(sorted_ids, qids, side="left")
    rows = np.arange(m)[None, :]
    has_below = pos > 0
    has_above = pos < n
    below = sorted_ids[rows, np.clip(pos - 1, 0, n - 1)]
    above = sorted_ids[rows, np.clip(pos, 0, n - 1)]

    max_level = saturation_level(counter.id_span, c)
    levels = np.full(qids.shape, max_level, dtype=np.int64)
    unresolved = np.ones(qids.shape, dtype=bool)
    radius = 1
    for level in range(max_level):
        hit = ((has_below & (below // radius == qids // radius))
               | (has_above & (above // radius == qids // radius)))
        found = unresolved & hit
        levels[found] = level
        unresolved &= ~hit
        if not unresolved.any():
            break
        radius *= c
    return levels


def occupancy_start_levels(counter, qids, need, c):
    """Smallest level where the query's total bucket occupancy is ``need``.

    ``S_t(q)`` — the summed sizes of the query's level-``t`` buckets over
    all ``m`` tables — bounds the candidate pool: every object that ever
    crossed the collision threshold ``l`` by level ``t`` contributes at
    least ``l`` entries to ``S_t``, so ``pool_t <= S_t / l``. Passing
    ``need = l * k`` therefore yields the first level at which *any*
    termination rule could fire (T1 and T2 both require at least ``k``
    candidates); below it a round can only burn pages. Occupancies come
    from two binary searches per table per level on the in-memory sorted
    id arrays — no pages are charged, matching the classic path's
    uncharged searchsorted descent. Queries whose occupancy never reaches
    ``need`` start at the saturation level, where classic would also
    arrive (exhausted) with the identical pool.
    """
    qids = np.asarray(qids, dtype=np.int64)
    max_level = saturation_level(counter.id_span, c)
    levels = np.full(qids.shape[0], max_level, dtype=np.int64)
    unresolved = np.arange(qids.shape[0])
    radius = 1
    for level in range(max_level):
        lo, hi = _intervals_at(counter, qids[unresolved], radius)
        hit = (hi - lo).sum(axis=1) >= need
        levels[unresolved[hit]] = level
        unresolved = unresolved[~hit]
        if not unresolved.size:
            break
        radius *= c
    return levels


def estimate_start_levels(counter, qids, l, c, k=1):
    """Per-query start level: first level where termination is possible.

    The elementwise max of two exact lower bounds on the first level at
    which any candidate — and hence any T1/T2 firing — can exist:

    * the *l-th smallest per-table collide level*
      (:func:`collide_levels`): below it fewer than ``l`` tables have a
      non-empty query bucket, so no object can reach collision count
      ``l``;
    * the *occupancy level* (:func:`occupancy_start_levels` with
      ``need = l * k``): below it the total bucket occupancy cannot hold
      even ``k`` threshold-crossers.

    Rounds below the start level are provably outcome-free, and by
    interval nesting the counts at the jumped-to level equal the
    incrementally accumulated ones — skipping is answer-preserving.
    """
    levels = collide_levels(counter, qids, c)
    if l <= 1:
        table_levels = levels.min(axis=1)
    else:
        table_levels = np.partition(levels, l - 1, axis=1)[:, l - 1]
    return np.maximum(table_levels,
                      occupancy_start_levels(counter, qids, l * k, c))


def occupancy_table(counter, qids, c):
    """Per-query total bucket occupancy at every grid level.

    Returns an int64 ``(Q, sat + 1)`` matrix whose column ``t`` is
    ``S_t(q)`` — the summed sizes of the query's level-``t`` buckets over
    all ``m`` tables — up to the counter's :func:`saturation_level`. The
    sharded engine's workers compute this per shard; occupancies are
    additive across row partitions, so the coordinator's column-wise sum
    (:func:`merge_start_levels`) equals the unsharded matrix exactly.
    """
    qids = np.asarray(qids, dtype=np.int64)
    sat = saturation_level(counter.id_span, c)
    out = np.empty((qids.shape[0], sat + 1), dtype=np.int64)
    radius = 1
    for level in range(sat + 1):
        lo, hi = _intervals_at(counter, qids, radius)
        out[:, level] = (hi - lo).sum(axis=1)
        radius *= c
    return out


def merge_start_levels(payloads, l, need):
    """Global start levels from per-worker shard estimate payloads.

    Each payload (a worker's ``batch_estimate`` answer, reduced over its
    hosted shards) carries ``collide`` — the elementwise-minimum
    ``(Q, m)`` collide levels — plus ``occ``, its summed
    :func:`occupancy_table`, and ``total``, its occupancy at saturation.
    A global bucket is non-empty iff some shard's restriction of it is,
    so the cross-worker elementwise minimum reproduces the global collide
    levels; occupancies are additive, with short ``occ`` rows padded by
    ``total`` (past its saturation a shard's buckets cover all its
    entries). The combination rule then matches
    :func:`estimate_start_levels` decision for decision.
    """
    collide = np.minimum.reduce([p["collide"] for p in payloads])
    width = max(p["occ"].shape[1] for p in payloads)
    occ = np.zeros((collide.shape[0], width), dtype=np.int64)
    for p in payloads:
        w = p["occ"].shape[1]
        occ[:, :w] += p["occ"]
        if w < width:
            occ[:, w:] += int(p["total"])
    if l <= 1:
        table_levels = collide.min(axis=1)
    else:
        table_levels = np.partition(collide, l - 1, axis=1)[:, l - 1]
    meets = occ >= int(need)
    meets[:, -1] = True  # at saturation classic also arrives, exhausted
    occ_levels = meets.argmax(axis=1)
    levels = np.maximum(np.minimum(table_levels, width - 1), occ_levels)
    return np.minimum(levels, MAX_ROUNDS - 1)


def probe_order(uids, qids, radius):
    """Tables ranked most-promising-first for a round at ``radius``.

    ``uids`` are the raw projections divided by the bucket width — the
    query's real-valued coordinate in base-bucket units (``floor(uids) ==
    qids``). The margin of table ``j`` is the distance from that
    coordinate to the nearest boundary of the query's radius-``R`` bucket
    ``[anchor, anchor + R)``; a large margin means the query sits
    centrally and near neighbors likely share the bucket, a small margin
    means they likely fell just across the boundary. Descending margin is
    the multi-probe boundary-distance heuristic applied to C2LSH's
    compound buckets. Stable-sorted so the order is deterministic.
    """
    anchors = (qids // radius) * radius
    rel = uids - anchors
    margin = np.minimum(rel, radius - rel)
    return np.argsort(-margin, axis=1, kind="stable")


def _chunk_bounds(m, chunks):
    """Chunk boundaries over ``m`` tables (balanced contiguous slices)."""
    chunks = max(1, min(int(chunks), m))
    return np.linspace(0, m, chunks + 1).astype(np.int64)


def skipped_round_pages(counter, qids, levels, c):
    """Per-skipped-level page bills the classic schedule would have paid.

    Returns ``[(level, radius, queries, pages)]`` for every level below
    some query's start, pricing each round as classic would: fresh full
    intervals at level 0, then the incremental left/right extensions.
    Costs the binary searches the estimator skipped, so callers only run
    this under an active trace (or in benchmarks).
    """
    pm = counter._pm
    if pm is None:
        return []
    qids = np.asarray(qids, dtype=np.int64)
    max_start = int(levels.max()) if levels.size else 0
    out = []
    prev_lo = prev_hi = None
    radius = 1
    for level in range(max_start):
        group = np.flatnonzero(levels > level)
        if not group.size:
            break
        lo, hi = _intervals_at(counter, qids, radius)
        if prev_lo is None:
            lens = (hi - lo)[group].ravel()
        else:
            lens = np.concatenate(((prev_lo - lo)[group].ravel(),
                                   (hi - prev_hi)[group].ravel()))
        lens = lens[lens > 0]
        pages = int(pm.bucket_scan_pages(
            lens, counter._entry_bytes).sum()) if lens.size else 0
        out.append((level, radius, group, pages))
        prev_lo, prev_hi = lo, hi
        radius *= c
    return out


def _intervals_at(counter, qids, radius):
    """Covered position intervals at ``radius`` (saturation rule included)."""
    m, n = counter.m, counter.n
    if radius >= 2 * (counter.id_span + 1):
        return (np.zeros(qids.shape, dtype=np.int64),
                np.full(qids.shape, n, dtype=np.int64))
    anchors = (qids // radius) * radius
    lo = row_searchsorted(counter.sorted_ids, anchors, side="left")
    hi = row_searchsorted(counter.sorted_ids, anchors + radius,
                          side="left")
    return lo, hi


def adaptive_batch_query(index, queries, query_bucket_ids, uids, k,
                         n_jobs=None, started=None, budget=None,
                         config=None):
    """Answer ``Q`` queries with query-adaptive probing.

    The adaptive analogue of :func:`repro.core.batchengine.batch_query`:
    per-query schedules start at the estimated level, queries are grouped
    by their current radius so every round still runs the vectorized
    counting kernels, and within a round the ordered tables are expanded
    chunk by chunk with T2/T1 re-checked in between. Termination rules,
    budget semantics and the graceful fallback are the classic ones;
    ``QueryStats.probes_issued`` / ``probes_skipped`` account for every
    per-table probe executed or avoided. ``uids`` are the raw projections
    over the bucket width (``floor(uids) == query_bucket_ids``).
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    config = config or AdaptiveConfig()
    t0 = started if started is not None else time.perf_counter()
    params = index.params
    n = index._data.shape[0]
    m = params.m
    n_queries = queries.shape[0]
    if n_queries == 0:
        return []
    target = min(n, k + params.false_positive_budget)  # T2 threshold
    pm = index._pm
    c = params.c

    counter = BatchQueryCounter(index._counter, query_bucket_ids)
    state = _QueryState(index, queries, query_bucket_ids, uids, counter,
                        k, target, config, budget, t0)

    levels = np.zeros(n_queries, dtype=np.int64)
    if config.start_estimate:
        # With T1 disabled (A4 ablation) only T2 can fire, which needs
        # `target` candidates rather than k — a laxer, still-exact bound.
        k_eff = k if index._use_t1 else target
        with trace.span("estimate_start", queries=int(n_queries)):
            levels = estimate_start_levels(index._counter,
                                           query_bucket_ids, params.l, c,
                                           k=k_eff)
        state.probes_skipped += m * levels
        if state.traced:
            _trace_skipped_starts(index._counter, query_bucket_ids,
                                  levels, c, m)

    pool = (ThreadPoolExecutor(max_workers=int(n_jobs))
            if n_jobs is not None and int(n_jobs) > 1 else None)
    try:
        with trace.span("batch_block", queries=int(n_queries), k=int(k),
                        probe="adaptive", kernels=kernels.backend_name()):
            active = np.arange(n_queries)
            while active.size:
                level = int(levels[active].min())
                group = active[levels[active] == level]
                radius = int(c) ** level
                done_g = _run_round(state, group, radius, level, pool)
                done_g = state.check_budgets(group, done_g, radius)
                finished = group[done_g]
                if finished.size:
                    _fallback(index, queries, counter, state.is_candidate,
                              state.cand_ids, state.cand_dists,
                              state.n_cand, state.reason, state.io_reads,
                              finished, k, params, pool)
                    state.elapsed[finished] = time.perf_counter() - t0
                levels[group[~done_g]] += 1
                if finished.size:
                    keep = np.ones(n_queries, dtype=bool)
                    keep[finished] = False
                    active = active[keep[active]]
    finally:
        if pool is not None:
            pool.shutdown()

    return state.results(pm is not None)


class _QueryState:
    """Per-batch bookkeeping shared by the adaptive round driver."""

    def __init__(self, index, queries, qids, uids, counter, k, target,
                 config, budget, t0):
        n = index._data.shape[0]
        n_queries = queries.shape[0]
        self.index = index
        self.queries = queries
        self.qids = qids
        self.uids = uids
        self.counter = counter
        self.k = k
        self.target = target
        self.config = config
        self.t0 = t0
        self.is_candidate = np.zeros((n_queries, n), dtype=bool)
        self.cand_ids = [[] for _ in range(n_queries)]
        self.cand_dists = [[] for _ in range(n_queries)]
        self.n_cand = np.zeros(n_queries, dtype=np.int64)
        self.rounds = np.zeros(n_queries, dtype=np.int64)
        self.final_radius = np.zeros(n_queries, dtype=np.int64)
        self.scanned = np.zeros(n_queries, dtype=np.int64)
        self.io_reads = np.zeros(n_queries, dtype=np.int64)
        self.probes_issued = np.zeros(n_queries, dtype=np.int64)
        self.probes_skipped = np.zeros(n_queries, dtype=np.int64)
        self.elapsed = np.zeros(n_queries, dtype=np.float64)
        self.reason = [""] * n_queries
        self.budget_cap = [""] * n_queries
        self.budgets = as_budget_list(budget, n_queries)
        self.tallies = ([WithinRadiusTally() for _ in range(n_queries)]
                        if index._use_t1 else None)
        self.traced = trace.active()
        self.best = (np.full(n_queries, np.inf) if self.traced else None)

    def check_budgets(self, group, done_g, radius):
        """Round-boundary budget checks for not-naturally-done queries."""
        if self.budgets is None:
            return done_g
        pm = self.index._pm
        now = time.perf_counter()
        for i in np.flatnonzero(~done_g):
            q = int(group[i])
            b = self.budgets[q]
            if b is None:
                continue
            cap = _tripped_cap_impl(b, int(self.n_cand[q]),
                                    int(self.io_reads[q]),
                                    pm is not None, self.t0, now)
            if not cap:
                continue
            done_g[i] = True
            self.reason[q] = "budget"
            self.budget_cap[q] = cap
            flight.note(
                "budget_exhausted", engine="adaptive", query=q, cap=cap,
                radius=int(radius), candidates=int(self.n_cand[q]),
                io_pages=int(self.io_reads[q]),
            )
        return done_g

    def results(self, accounting):
        n_queries = len(self.reason)
        tripped = [q for q in range(n_queries) if self.budget_cap[q]]
        if tripped:
            flight.dump("budget_exhausted", extra={
                "engine": "adaptive",
                "queries": tripped,
                "caps": sorted({self.budget_cap[q] for q in tripped}),
            })
        out = []
        for q in range(n_queries):
            stats = QueryStats(
                rounds=int(self.rounds[q]),
                final_radius=int(self.final_radius[q]),
                candidates=int(self.n_cand[q]),
                scanned_entries=int(self.scanned[q]),
                terminated_by=self.reason[q],
                elapsed_s=float(self.elapsed[q]),
                degraded=bool(self.budget_cap[q]),
                budget_exhausted=self.budget_cap[q],
                probes_issued=int(self.probes_issued[q]),
                probes_skipped=int(self.probes_skipped[q]),
            )
            if accounting:
                stats.io_reads = int(self.io_reads[q])
            if self.traced:
                trace.event(
                    "query_stats", query=q, rounds=stats.rounds,
                    final_radius=stats.final_radius,
                    candidates=stats.candidates,
                    scanned_entries=stats.scanned_entries,
                    io_reads=stats.io_reads, io_writes=stats.io_writes,
                    terminated_by=stats.terminated_by,
                    elapsed_s=stats.elapsed_s, degraded=stats.degraded,
                    probes_issued=stats.probes_issued,
                    probes_skipped=stats.probes_skipped,
                )
            ids = (np.concatenate(self.cand_ids[q]) if self.cand_ids[q]
                   else np.empty(0, dtype=np.int64))
            dists = (np.concatenate(self.cand_dists[q])
                     if self.cand_dists[q] else np.empty(0))
            out.append(QueryResult.from_candidates(ids, dists, self.k,
                                                   stats))
        return out


def _run_round(state, group, radius, level, pool):
    """One radius round for one same-level query group; returns done mask.

    Tables are probed in margin order, ``config.chunks`` at a time, with
    T2/T1 re-checked after every chunk; queries whose rule fires stop
    probing and skip the rest of the round. The final chunk's check is
    exactly the classic end-of-round check, so with ``chunks=1`` the
    round is bit-identical to :func:`batchengine.batch_query`'s.
    """
    index = state.index
    counter = state.counter
    config = state.config
    params = index.params
    m, c = params.m, params.c
    G = group.size
    state.rounds[group] += 1
    state.final_radius[group] = radius
    threshold = c * radius * index._scale

    if config.ordered_probes and config.early_exit and config.chunks > 1:
        order = probe_order(state.uids[group], state.qids[group], radius)
    else:
        order = np.broadcast_to(np.arange(m, dtype=np.int64), (G, m))
    bounds = _chunk_bounds(m, config.chunks if config.early_exit else 1)

    done_g = np.zeros(G, dtype=bool)
    round_pos = np.arange(G)  # group positions still probing this round
    round_new = 0
    pages_saved = 0
    with trace.span("round", radius=int(radius),
                    active=int(G)) as rspan:
        for ci in range(len(bounds) - 1):
            if round_pos.size == 0:
                break
            lo_t, hi_t = int(bounds[ci]), int(bounds[ci + 1])
            sub = group[round_pos]
            if len(bounds) == 2:
                # Whole round in one expand: identical segments — and
                # identical page charges — to the classic engine's round.
                tables = None
            else:
                tables = np.zeros((sub.size, m), dtype=bool)
                np.put_along_axis(tables, order[round_pos, lo_t:hi_t],
                                  True, axis=1)
            with trace.span("count_round", radius=int(radius),
                            chunk=int(ci)):
                chunk_scanned, chunk_pages = counter.expand(
                    radius, sub, tables=tables)
            state.scanned[sub] += chunk_scanned
            if chunk_pages is not None:
                state.io_reads[sub] += chunk_pages
            state.probes_issued[sub] += hi_t - lo_t

            qs, fresh_ids = counter.crossings(params.l)
            if qs.size:
                qb = np.searchsorted(qs, np.arange(sub.size + 1))
                jobs = [
                    (int(sub[i]), fresh_ids[qb[i]:qb[i + 1]],
                     state.queries[sub[i]])
                    for i in range(sub.size)
                    if qb[i + 1] > qb[i]
                ]
                with trace.span("verify", count=int(fresh_ids.size)):
                    verified = _verify_many(index, jobs, state.io_reads,
                                            pool)
                for (q, fresh, _), dists in zip(jobs, verified):
                    state.is_candidate[q, fresh] = True
                    state.cand_ids[q].append(fresh)
                    state.cand_dists[q].append(dists)
                    state.n_cand[q] += fresh.size
                    round_new += fresh.size
                    if state.tallies is not None:
                        state.tallies[q].add(dists)
                    if state.traced and dists.size:
                        state.best[q] = min(state.best[q],
                                            float(dists.min()))

            last_chunk = ci == len(bounds) - 2
            # T2 then T1, the classic priority; between chunks a firing
            # rule both ends the round for the query and terminates it.
            # T1 is only consulted mid-round when opted into: its pool is
            # the bare k, and cutting the round there trades recall for
            # I/O (see AdaptiveConfig.t1_early_exit).
            t2 = state.n_cand[sub] >= state.target
            t1 = np.zeros(sub.size, dtype=bool)
            if state.tallies is not None and (last_chunk
                                              or config.t1_early_exit):
                for i in np.flatnonzero(~t2 & (state.n_cand[sub]
                                               >= state.k)):
                    q = int(sub[i])
                    t1[i] = (state.tallies[q].count_within(threshold)
                             >= state.k)
            fired = t2 | t1
            if last_chunk:
                if level + 1 >= MAX_ROUNDS:
                    exhausted = np.ones(sub.size, dtype=bool)
                else:
                    exhausted = counter.exhausted_mask(sub)
                fired = fired | exhausted
            for i in np.flatnonzero(fired):
                state.reason[sub[i]] = ("T2" if t2[i] else "T1" if t1[i]
                                        else "exhausted")
            if (config.provisional_exit and not last_chunk
                    and hi_t >= config.provisional_min_frac * m):
                provisional, n_new = _provisional_exits(
                    state, sub, fired, hi_t, params, pool)
                round_new += n_new
                fired = fired | provisional
            if not last_chunk and np.any(fired):
                exiting = np.flatnonzero(fired)
                state.probes_skipped[sub[exiting]] += m - hi_t
                if state.traced:
                    pages_saved += _pages_saved(
                        counter, sub[exiting],
                        order[round_pos[exiting], hi_t:], radius)
            done_g[round_pos] |= fired
            round_pos = round_pos[~fired]
        if state.traced:
            _annotate_round(state, rspan, group, radius, threshold,
                            round_new, pages_saved)
    return done_g


def _provisional_exits(state, sub, fired, probed, params, pool):
    """Projected-T2 exits after ``probed`` of ``m`` tables this round.

    An object with partial collision count ``>= ceil(l * probed/m)`` is
    on track to cross the threshold ``l`` by round end. When at least
    ``target`` objects are on track, probing further tables can only
    refine *which* ``target`` objects the pool holds, so the engine
    verifies the best-counted ones (the classic graceful-fallback
    selection: count descending, stable) and stops the query. Returns
    ``(mask over sub, newly verified count)``; exits report
    ``terminated_by == "T2-early"``.
    """
    m = params.m
    l_p = max(1, int(np.ceil(params.l * probed / m)))
    pool_size = int(state.config.provisional_pool_mult * state.target)
    provisional = np.zeros(sub.size, dtype=bool)
    jobs = []
    for i in np.flatnonzero(~fired):
        q = int(sub[i])
        projected = int((state.counter.counts[q] >= l_p).sum())
        if projected < state.target:
            continue
        remaining = np.flatnonzero(~state.is_candidate[q])
        need = min(min(pool_size, projected) - int(state.n_cand[q]),
                   remaining.size)
        provisional[i] = True
        state.reason[q] = "T2-early"
        if need <= 0:
            continue
        order = np.argsort(-state.counter.counts[q, remaining],
                           kind="stable")
        extra = remaining[order[:need]]
        jobs.append((q, extra, state.queries[q]))
    if not jobs:
        return provisional, 0
    with trace.span("verify", provisional=True,
                    count=int(sum(j[1].size for j in jobs))):
        verified = _verify_many(state.index, jobs, state.io_reads, pool)
    n_new = 0
    for (q, extra, _), dists in zip(jobs, verified):
        state.is_candidate[q, extra] = True
        state.cand_ids[q].append(extra)
        state.cand_dists[q].append(dists)
        state.n_cand[q] += extra.size
        n_new += extra.size
        if state.traced and dists.size:
            state.best[q] = min(state.best[q], float(dists.min()))
    return provisional, n_new


def _pages_saved(counter, exiting, remaining_tables, radius):
    """Pages the exiting queries' unprobed tables would have cost."""
    m = counter._index.m
    tables = np.zeros((exiting.size, m), dtype=bool)
    np.put_along_axis(tables, remaining_tables, True, axis=1)
    return int(counter.peek_pages(radius, exiting, tables).sum())


def _annotate_round(state, rspan, group, radius, threshold, round_new,
                    pages_saved):
    """Attach the explain-grade record to the round span (traced only).

    For a single-query group these are exactly the per-round EXPLAIN
    columns (see ``C2LSH._annotate_round``); for larger groups they are
    group sums, which is what a batch postmortem wants anyway.
    """
    within = 0
    if state.tallies is not None:
        for q in group:
            within += state.tallies[int(q)].count_within(threshold)
    finite = state.best[group][np.isfinite(state.best[group])]
    rspan.set(
        scanned=int(state.scanned[group].sum()),
        new_candidates=int(round_new),
        total_candidates=int(state.n_cand[group].sum()),
        best_distance=float(finite.min()) if finite.size else float("inf"),
        t1_threshold=float(threshold),
        within_t1=int(within),
        io_reads=int(state.io_reads[group].sum()),
        probes_issued=int(state.probes_issued[group].sum()),
        probes_skipped=int(state.probes_skipped[group].sum()),
        pages_saved=int(pages_saved),
    )


def _trace_skipped_starts(counter, qids, levels, c, m):
    """Emit one span per skipped start level with its would-be page bill.

    Only runs under an active trace: pricing the skipped scans costs the
    very binary searches the estimator avoided, so the fast path never
    does this. Each span renders as an EXPLAIN row showing what the
    classic schedule would have paid.
    """
    for level, radius, group, pages in skipped_round_pages(
            counter, qids, levels, c):
        with trace.span("round", radius=int(radius), skipped=True,
                        active=int(group.size)) as span:
            span.set(scanned=0, new_candidates=0, total_candidates=0,
                     best_distance=float("inf"), t1_threshold=0.0,
                     within_t1=0, io_reads=0, probes_issued=0,
                     probes_skipped=int(m * group.size),
                     pages_saved=int(pages))
