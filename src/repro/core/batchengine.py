"""Lockstep batch query engine: vectorized collision counting across queries.

Answering one C2LSH query means walking the radius grid ``{1, c, c^2, ...}``
and, at each step, binary-searching all ``m`` sorted hash tables and
counting the newly covered entries. Every query walks the *same* grid over
the *same* ``(m, n)`` tables, so a batch of ``Q`` queries is naturally
data-parallel: this module advances all of them through each radius round
simultaneously —

* one batched binary search answers all ``Q × m`` interval extensions per
  round (:func:`repro.storage.vsearch.row_searchsorted` with a ``(Q, m)``
  target matrix);
* one flat ``bincount`` over ``(query, object)`` pairs accumulates all
  collision-count deltas, instead of ``Q`` separate bincounts;
* queries that terminate (T1/T2/exhausted) drop out of the active set
  while the rest keep expanding.

The engine is **bit-identical** to the sequential path in
:meth:`repro.core.c2lsh.C2LSH.query`: same candidate sets verified in the
same per-query order, same termination reasons, same
:class:`~repro.core.results.QueryStats`, and the same page I/O charged per
query (bucket scans are costed per segment by the shared
``PageManager.bucket_scan_pages`` formula and attributed back to each
query). Only the wall-clock changes: the per-round Python overhead is paid
once per batch instead of once per query.

The distance-verification stage — the other per-query hot loop — can
optionally run on a thread pool (``n_jobs``); page charging stays on the
calling thread so the :class:`~repro.storage.PageManager` never races.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import kernels
from ..kernels import row_searchsorted
from ..obs import flight, trace
from ..reliability.budget import as_budget_list
from ..reliability.budget import tripped_cap as _tripped_cap_impl
from .results import QueryResult, QueryStats

__all__ = ["BatchQueryCounter", "WithinRadiusTally", "batch_query",
           "MAX_ROUNDS"]

#: Hard cap on radius-expansion rounds; 2**64 exceeds any int64 id span.
#: Shared with the sequential path in :mod:`repro.core.c2lsh`.
MAX_ROUNDS = 64

#: Rounds touching more than ``A * m * n / _DENSE_CUTOVER`` entries use the
#: dense rank-comparison counting kernel; lighter rounds gather the newly
#: covered entries instead. Calibrated from the measured per-cell vs
#: per-entry cost ratio of the two kernels (~7x). Shared across kernel
#: tiers so both walk identical code paths.
_DENSE_CUTOVER = 6


class WithinRadiusTally:
    """Running count of verified distances within a growing threshold.

    The T1 stopping rule asks, every round, how many verified candidates
    lie within ``c * R`` of the query. Rescanning every stored distance
    each round is ``O(rounds x candidates)``; because the threshold only
    ever grows along the radius grid, a distance that is within once stays
    within forever. This tally keeps the not-yet-within distances in a
    sorted ``pending`` array and migrates the newly covered prefix on each
    call — amortized ``O(candidates log candidates)`` over a whole query.

    Thresholds passed to :meth:`count_within` must be non-decreasing
    (the radius grid guarantees it).
    """

    def __init__(self):
        self._within = 0
        self._pending = np.empty(0, dtype=np.float64)

    def add(self, distances):
        """Record freshly verified distances (any order)."""
        distances = np.asarray(distances, dtype=np.float64)
        if distances.size:
            self._pending = kernels.merge_sorted(self._pending, distances)

    def count_within(self, threshold):
        """Total recorded distances ``<= threshold``."""
        cut = kernels.count_leq(self._pending, threshold)
        if cut:
            self._within += cut
            self._pending = self._pending[cut:]
        return self._within


class BatchQueryCounter:
    """Collision counts for ``Q`` queries advanced through radii in lockstep.

    The batched analogue of :class:`repro.core.counting.QueryCounter`:
    state is a ``(Q, n)`` count matrix and ``(Q, m)`` covered-interval
    bounds, advanced for an arbitrary *active subset* of queries per round.
    Only incremental (virtual-rehashing) expansion is supported — the
    recount ablation stays on the sequential path.
    """

    def __init__(self, index, query_bucket_ids):
        qids = np.asarray(query_bucket_ids, dtype=np.int64)
        if qids.ndim != 2 or qids.shape[1] != index.m:
            raise ValueError(
                f"query bucket ids must have shape (Q, {index.m}), "
                f"got {qids.shape}"
            )
        self._index = index
        self._qids = qids
        self.n_queries = qids.shape[0]
        self.counts = np.zeros((self.n_queries, index.n), dtype=np.int32)
        # Covered position interval [lo, hi) per (query, table). A cell
        # only means anything once probed at least once; `_covered` tracks
        # that per cell so adaptive probing can grow different tables of
        # the same query at different times (classic full-round expansion
        # covers every cell in round one, collapsing this to the old
        # global started flag).
        self._lo = np.zeros((self.n_queries, index.m), dtype=np.int64)
        self._hi = np.zeros((self.n_queries, index.m), dtype=np.int64)
        self._covered = np.zeros((self.n_queries, index.m), dtype=bool)
        self._started = False
        self.radius = 0
        self._last_active = None
        self._last_prev = None

    def _intervals_for(self, radius, active):
        index = self._index
        m, n = index.m, index.n
        # Same saturation rule as QueryCounter._intervals_for: once the
        # radius dwarfs the id span, "cover everything" is the limit.
        if radius >= 2 * (index.id_span + 1):
            return (np.zeros((active.size, m), dtype=np.int64),
                    np.full((active.size, m), n, dtype=np.int64))
        anchors = (self._qids[active] // radius) * radius
        lo = row_searchsorted(index.sorted_ids, anchors, side="left")
        hi = row_searchsorted(index.sorted_ids, anchors + radius,
                              side="left")
        return lo, hi

    def _segments(self, radius, active, tables, lo_new, hi_new):
        """Scan segments growing ``active``'s selected cells to ``radius``.

        Returns ``(seg_q, seg_t, seg_lo, lengths)`` with zero-length
        segments dropped. Already-covered selected cells contribute their
        left ``[lo_new, lo_old)`` and right ``[hi_old, hi_new)`` interval
        extensions; never-covered ones contribute the full interval. With
        a full selection these are byte-for-byte the segments the classic
        engine builds (fresh cells in row-major order on the first round;
        left-block-then-right-block on later rounds), so classic page
        charges and kernel inputs are unchanged. Both counting kernels
        accumulate integer deltas, so segment order never affects counts.
        """
        A = active.size
        m = self._index.m
        covered = self._covered[active]
        sel = (np.ones((A, m), dtype=bool) if tables is None
               else np.asarray(tables, dtype=bool))
        grow = covered & sel
        fresh = sel & ~covered
        old_lo, old_hi = self._lo[active], self._hi[active]
        if np.any((lo_new > old_lo) & grow) or np.any((hi_new < old_hi)
                                                      & grow):
            raise AssertionError(
                "virtual-rehashing nesting violated: some table's "
                f"radius-{radius} interval shrank"
            )
        gq, gt = np.nonzero(grow)
        fq, ft = np.nonzero(fresh)
        seg_q = np.concatenate((gq, gq, fq))
        seg_t = np.concatenate((gt, gt, ft))
        seg_lo = np.concatenate((lo_new[grow], old_hi[grow],
                                 lo_new[fresh]))
        seg_hi = np.concatenate((old_lo[grow], hi_new[grow],
                                 hi_new[fresh]))
        keep = seg_hi > seg_lo
        lengths = seg_hi[keep] - seg_lo[keep]
        return seg_q[keep], seg_t[keep], seg_lo[keep], lengths, sel

    def expand(self, radius, active, tables=None):
        """Grow every query in ``active`` to ``radius``; count in one pass.

        ``active`` is an int array of query indices (callers advance the
        whole batch through the same grid, dropping terminated queries).
        ``tables`` — an optional ``(A, m)`` bool mask — restricts the
        growth to selected (query, table) cells, which is how the adaptive
        engine probes a round chunk by chunk; ``None`` grows everything,
        the classic full round. Returns ``(scanned, pages)``:
        per-active-query newly scanned entry counts, and per-active-query
        bucket-scan pages charged (``None`` without a page manager). The
        total page charge equals the sum of what the sequential path would
        charge each query this round; a masked round charges only the
        probed cells, and probing a round in chunks charges exactly what
        one full expansion would (same segment set, split across calls).

        Counting is adaptive. Heavy rounds (typically the first, whose
        radius-1 buckets in high dimension hold a large fraction of the
        database) recompute all ``(A, n)`` counts with two comparisons per
        cell against the cached rank matrix — O(A*m*n) independent of how
        many entries the intervals cover. Light rounds gather only the
        newly covered entries and bincount them — O(touched). Both produce
        the exact counts the sequential incremental path maintains; the
        I/O and scanned-entry accounting below is shared and unaffected.
        """
        radius = int(radius)
        index = self._index
        m, n = index.m, index.n
        A = active.size
        lo_new, hi_new = self._intervals_for(radius, active)
        seg_q, seg_t, seg_lo, lengths, sel = self._segments(
            radius, active, tables, lo_new, hi_new)

        scanned = np.bincount(
            seg_q, weights=lengths, minlength=A
        ).astype(np.int64)
        pages_per_query = None
        pm = index._pm
        if pm is not None:
            if lengths.size:
                pages = pm.bucket_scan_pages(lengths, index._entry_bytes)
                pm.charge_read(int(pages.sum()), site="bucket_scan")
                pages_per_query = np.bincount(
                    seg_q, weights=pages, minlength=A
                ).astype(np.int64)
            else:
                pages_per_query = np.zeros(A, dtype=np.int64)

        # Merged per-cell intervals: selected cells move to the new
        # bounds, unselected keep theirs (uncovered cells sit at the
        # empty [0, 0), contributing nothing to the dense recount).
        lo_m = np.where(sel, lo_new, self._lo[active])
        hi_m = np.where(sel, hi_new, self._hi[active])
        total = int(lengths.sum())
        prev = self.counts[active].copy()
        if total * _DENSE_CUTOVER >= A * m * n:
            self.counts[active] = self._dense_counts(lo_m, hi_m)
        elif total:
            self._sparse_add(active, seg_q, seg_t, seg_lo, lengths)
        self._lo[active] = lo_m
        self._hi[active] = hi_m
        self._covered[active] |= sel
        self._started = True
        self.radius = radius
        self._last_active = active
        self._last_prev = prev
        return scanned, pages_per_query

    def peek_pages(self, radius, active, tables=None):
        """Would-be page bill of an :meth:`expand` call, without the call.

        Prices growing ``active``'s selected cells to ``radius`` against
        the current coverage using the shared ``bucket_scan_pages``
        formula, but charges nothing and mutates nothing. The adaptive
        engine uses this to report ``pages_saved`` for tables an
        early-exiting query never probed and for start rounds the
        estimator skipped. Returns an int64 per-active-query page count
        (zeros without a page manager).
        """
        index = self._index
        pm = index._pm
        A = active.size
        if pm is None or A == 0:
            return np.zeros(A, dtype=np.int64)
        lo_new, hi_new = self._intervals_for(int(radius), active)
        seg_q, _, _, lengths, _ = self._segments(
            int(radius), active, tables, lo_new, hi_new)
        if not lengths.size:
            return np.zeros(A, dtype=np.int64)
        pages = pm.bucket_scan_pages(lengths, index._entry_bytes)
        return np.bincount(seg_q, weights=pages,
                           minlength=A).astype(np.int64)

    def _dense_counts(self, lo, hi):
        """Absolute counts at the current intervals via rank comparisons.

        By interval nesting these equal the incrementally accumulated
        counts: object ``o`` collides with query ``i`` in table ``j`` iff
        its position ``rank[j, o]`` lies in ``[lo[i, j], hi[i, j])``.
        Runs on the active kernel tier.
        """
        return kernels.dense_counts(self._index.rank, lo, hi)

    def _sparse_add(self, active, seg_q, seg_t, seg_lo, lengths):
        """Gather newly covered entries and accumulate them onto the counts.

        Delegated to the kernel tier's sparse accumulate: the numpy
        fallback bincounts query-banded chunks into one reused ``A * n``
        buffer, the numba tier prange-accumulates segments directly into a
        preallocated ``(A, n)`` matrix. Both add the identical integer
        deltas.
        """
        delta = kernels.sparse_counts(self._index.order, seg_q, seg_t,
                                      seg_lo, lengths, active.size)
        self.counts[active] += delta

    def crossings(self, threshold):
        """``(query, object)`` pairs that crossed ``threshold`` last round.

        Query indices are positions into the last ``expand()``'s active
        array; pairs come out sorted by query then ascending object id —
        the same order ``QueryCounter.newly_frequent`` yields per query.
        """
        if self._last_prev is None:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        return kernels.crossings(self.counts[self._last_active],
                                 self._last_prev, threshold)

    def exhausted_mask(self, active):
        """Per-active-query flag: every table already covers all entries."""
        if not self._started:
            return np.zeros(active.size, dtype=bool)
        n = self._index.n
        return np.all((self._lo[active] == 0) & (self._hi[active] == n),
                      axis=1)


def _verify_many(index, jobs, io_reads, pool):
    """Distances for ``(query_index, ids, query_vector)`` jobs.

    Data-file reads (and their page charges) run on the calling thread so
    the page manager never races; only the distance computations fan out
    to ``pool`` when one is given. Returns one distance array per job.
    """
    pm = index._pm
    vectors = []
    for q, ids, _ in jobs:
        if pm is not None:
            before = pm.stats.reads
            vectors.append(index._datafile.read(ids))
            io_reads[q] += pm.stats.reads - before
        else:
            vectors.append(index._datafile.read(ids))
    if pool is None:
        return [index._family.distance(vecs, qvec)
                for vecs, (_, _, qvec) in zip(vectors, jobs)]
    futures = [pool.submit(index._family.distance, vecs, qvec)
               for vecs, (_, _, qvec) in zip(vectors, jobs)]
    return [f.result() for f in futures]


def batch_query(index, queries, query_bucket_ids, k, n_jobs=None,
                started=None, budget=None):
    """Answer ``Q`` queries in lockstep; returns a list of results.

    Drives a :class:`BatchQueryCounter` through the radius grid, applying
    the T1/T2/exhausted termination rules and the graceful fallback
    per query with exactly the sequential path's semantics (see
    ``C2LSH._query_hashed``). ``n_jobs > 1`` runs distance verification on
    a thread pool. ``started`` (a ``time.perf_counter()`` value) lets the
    caller include work done before entry — e.g. batched hashing — in the
    per-query ``elapsed_s``; each query is stamped the moment it
    terminates, not when the whole batch returns.

    ``budget`` (a :class:`repro.reliability.QueryBudget`, or a sequence
    of per-query budgets — ``None`` entries unbudgeted) applies to each
    query individually: per-query attributed I/O pages and candidate
    counts are compared against the caps after every round, exactly where
    the sequential path checks its tracker, so a given seed and budget
    degrade identically on both paths. Each deadline cap is measured from
    its budget's ``started_at`` anchor when set, else from ``started`` —
    a shared entry-anchored deadline therefore trips all still-active
    queries together, while a serving front-end's per-request anchors
    trip each query on its own clock.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    t0 = started if started is not None else time.perf_counter()
    params = index.params
    n = index._data.shape[0]
    n_queries = queries.shape[0]
    if n_queries == 0:
        return []
    target = min(n, k + params.false_positive_budget)  # T2 threshold
    pm = index._pm
    rehashable = index._funcs.rehashable
    scale = index._scale
    c = params.c

    counter = BatchQueryCounter(index._counter, query_bucket_ids)
    is_candidate = np.zeros((n_queries, n), dtype=bool)
    cand_ids = [[] for _ in range(n_queries)]
    cand_dists = [[] for _ in range(n_queries)]
    n_cand = np.zeros(n_queries, dtype=np.int64)
    rounds = np.zeros(n_queries, dtype=np.int64)
    final_radius = np.zeros(n_queries, dtype=np.int64)
    scanned = np.zeros(n_queries, dtype=np.int64)
    io_reads = np.zeros(n_queries, dtype=np.int64)
    elapsed = np.zeros(n_queries, dtype=np.float64)
    reason = [""] * n_queries
    budget_cap = [""] * n_queries
    budgets = as_budget_list(budget, n_queries)
    tallies = ([WithinRadiusTally() for _ in range(n_queries)]
               if index._use_t1 and rehashable else None)

    pool = (ThreadPoolExecutor(max_workers=int(n_jobs))
            if n_jobs is not None and int(n_jobs) > 1 else None)
    try:
        with trace.span("batch_block", queries=int(n_queries), k=int(k),
                        kernels=kernels.backend_name()):
            active = np.arange(n_queries)
            radius = 1
            round_no = 0
            while active.size:
                round_no += 1
                with trace.span("round", radius=int(radius),
                                active=int(active.size)) as rspan:
                    with trace.span("count_round", radius=int(radius)):
                        round_scanned, round_pages = counter.expand(
                            radius, active)
                    rounds[active] += 1
                    final_radius[active] = radius
                    scanned[active] += round_scanned
                    if round_pages is not None:
                        io_reads[active] += round_pages

                    qs, fresh_ids = counter.crossings(params.l)
                    if qs.size:
                        bounds = np.searchsorted(qs,
                                                 np.arange(active.size + 1))
                        jobs = [
                            (int(active[i]),
                             fresh_ids[bounds[i]:bounds[i + 1]],
                             queries[active[i]])
                            for i in range(active.size)
                            if bounds[i + 1] > bounds[i]
                        ]
                        with trace.span("verify", count=int(fresh_ids.size)):
                            verified = _verify_many(index, jobs, io_reads,
                                                    pool)
                        for (q, fresh, _), dists in zip(jobs, verified):
                            is_candidate[q, fresh] = True
                            cand_ids[q].append(fresh)
                            cand_dists[q].append(dists)
                            n_cand[q] += fresh.size
                            if tallies is not None:
                                tallies[q].add(dists)

                    # Termination, in the sequential path's priority order:
                    # T2 (budget full), then T1 (k within c*R), then
                    # exhaustion.
                    t2 = n_cand[active] >= target
                    t1 = np.zeros(active.size, dtype=bool)
                    if tallies is not None:
                        threshold = c * radius * scale
                        for i in np.flatnonzero(~t2 & (n_cand[active] >= k)):
                            q = int(active[i])
                            t1[i] = tallies[q].count_within(threshold) >= k
                    if not rehashable or round_no >= MAX_ROUNDS:
                        exhausted = np.ones(active.size, dtype=bool)
                    else:
                        exhausted = counter.exhausted_mask(active)
                    done = t2 | t1 | exhausted
                    for i in np.flatnonzero(done):
                        reason[active[i]] = ("T2" if t2[i]
                                             else "T1" if t1[i]
                                             else "exhausted")
                    if budgets is not None:
                        # Checked only where no natural rule fired, in
                        # the tracker's cap order (candidates, io_pages,
                        # deadline) — mirroring the sequential path. One
                        # clock read serves the whole round, exactly as
                        # the former single-budget check did.
                        now = time.perf_counter()
                        for i in np.flatnonzero(~done):
                            q = int(active[i])
                            b = budgets[q]
                            if b is None:
                                continue
                            cap = _tripped_cap_impl(
                                b, int(n_cand[q]), int(io_reads[q]),
                                pm is not None, t0, now)
                            if not cap:
                                continue
                            done[i] = True
                            reason[q] = "budget"
                            budget_cap[q] = cap
                            flight.note(
                                "budget_exhausted", engine="batch",
                                query=q, cap=cap,
                                radius=int(radius),
                                candidates=int(n_cand[q]),
                                io_pages=int(io_reads[q]),
                            )
                    finished = active[done]
                    if finished.size:
                        _fallback(index, queries, counter, is_candidate,
                                  cand_ids, cand_dists, n_cand, reason,
                                  io_reads, finished, k, params, pool)
                        elapsed[finished] = time.perf_counter() - t0
                    rspan.set(finished=int(finished.size))
                    active = active[~done]
                    radius *= c
    finally:
        if pool is not None:
            pool.shutdown()

    tripped = [q for q in range(n_queries) if budget_cap[q]]
    if tripped:
        flight.dump("budget_exhausted", extra={
            "engine": "batch",
            "queries": tripped,
            "caps": sorted({budget_cap[q] for q in tripped}),
        })

    results = []
    traced = trace.active()
    for q in range(n_queries):
        stats = QueryStats(
            rounds=int(rounds[q]), final_radius=int(final_radius[q]),
            candidates=int(n_cand[q]), scanned_entries=int(scanned[q]),
            terminated_by=reason[q], elapsed_s=float(elapsed[q]),
            degraded=bool(budget_cap[q]), budget_exhausted=budget_cap[q],
        )
        if pm is not None:
            stats.io_reads = int(io_reads[q])
        if traced:
            trace.event(
                "query_stats", query=q, rounds=stats.rounds,
                final_radius=stats.final_radius,
                candidates=stats.candidates,
                scanned_entries=stats.scanned_entries,
                io_reads=stats.io_reads, io_writes=stats.io_writes,
                terminated_by=stats.terminated_by,
                elapsed_s=stats.elapsed_s, degraded=stats.degraded,
            )
        ids = (np.concatenate(cand_ids[q]) if cand_ids[q]
               else np.empty(0, dtype=np.int64))
        dists = (np.concatenate(cand_dists[q]) if cand_dists[q]
                 else np.empty(0))
        results.append(QueryResult.from_candidates(ids, dists, k, stats))
    return results


def _fallback(index, queries, counter, is_candidate, cand_ids, cand_dists,
              n_cand, reason, io_reads, finished, k, params, pool):
    """Graceful fallback for terminated queries still short of ``k``.

    Verifies the best-counted unverified objects, mirroring the sequential
    path: single-granularity families and tiny databases land here.
    """
    jobs = []
    extras = {}
    for q in finished:
        q = int(q)
        if n_cand[q] >= k:
            continue
        remaining = np.flatnonzero(~is_candidate[q])
        if not remaining.size:
            continue
        order = np.argsort(-counter.counts[q, remaining], kind="stable")
        need = min(k - int(n_cand[q]) + params.false_positive_budget,
                   remaining.size)
        extra = remaining[order[:need]]
        extras[q] = extra
        jobs.append((q, extra, queries[q]))
    if not jobs:
        return
    with trace.span("verify", fallback=True,
                    count=int(sum(j[1].size for j in jobs))):
        verified = _verify_many(index, jobs, io_reads, pool)
    for (q, extra, _), dists in zip(jobs, verified):
        cand_ids[q].append(extra)
        cand_dists[q].append(dists)
        n_cand[q] += extra.size
        if reason[q] != "budget":
            reason[q] = "fallback"
