"""The C2LSH index: dynamic collision counting for c-approximate k-NN.

Usage::

    import numpy as np
    from repro import C2LSH

    rng = np.random.default_rng(0)
    data = rng.standard_normal((10_000, 32))
    index = C2LSH(c=2, seed=0).fit(data)
    result = index.query(data[0], k=10)
    result.ids, result.distances, result.stats

The index builds ``m`` single-function hash tables (``m`` chosen by the
Hoeffding-bound machinery in :mod:`repro.core.params`), then answers a query
by growing the search radius through ``{1, c, c^2, ...}`` and *verifying*
every object that collides with the query in at least ``l`` tables. It
terminates when enough verified candidates are provably close (**T1**) or
when the false-positive budget is exhausted (**T2**), which yields the
paper's ``c^2``-approximation guarantee with probability ``1/2 - delta``.

With a non-rehashable family (sign projections, bit sampling) the index runs
in single-granularity mode: one counting round at the base granularity, then
a graceful fallback that verifies objects in decreasing collision-count
order until ``k`` answers exist. This family-independence mode is an
extension beyond the 2012 paper (DESIGN.md §7).
"""

from __future__ import annotations

import time

import numpy as np

from ..hashing.pstable import PStableFamily
from ..kernels import backend_name as _kernels_backend
from ..obs import flight, trace
from ..reliability.budget import as_budget_list
from ..validation import as_data_matrix, as_query_matrix, as_query_vector
from ..storage.datafile import DataFile
from .adaptive import (adaptive_batch_query, as_probe_config,
                       check_adaptive_supported)
from .batchengine import MAX_ROUNDS as _MAX_ROUNDS
from .batchengine import WithinRadiusTally, batch_query
from .counting import CollisionCounter
from .scaling import resolve_base_radius
from .params import C2LSHParams, design_params
from .results import QueryResult, QueryStats

__all__ = ["C2LSH"]

#: Batch queries are processed in blocks of this many to bound the batch
#: engine's (block, n) working matrices; see :meth:`C2LSH.query_batch`.
_BATCH_BLOCK = 1024


class C2LSH:
    """Locality-sensitive hashing with dynamic collision counting.

    Parameters
    ----------
    family:
        An :class:`repro.hashing.LSHFamily`. Defaults to a
        :class:`PStableFamily` (Euclidean) constructed at :meth:`fit` time
        with width ``w`` (or the rho-minimizing width for ``c``).
    c:
        Integer approximation ratio (the guarantee is ``c**2``).
    w:
        Bucket width for the default family; ignored when ``family`` given.
    beta, delta, alpha, m:
        Parameter overrides forwarded to
        :func:`repro.core.params.design_params`.
    seed:
        Seed for the hash-function sample (or pass a ``Generator`` as
        ``rng``).
    page_manager:
        Optional :class:`repro.storage.PageManager`; enables I/O accounting.
    base_radius:
        The dataset's near-distance unit. ``"auto"`` (default) estimates it
        from a sample at :meth:`fit` time (see :mod:`repro.core.scaling`);
        points are divided by it before hashing so the radius grid
        ``{1, c, ...}`` starts at nearest-neighbor scale. Only applied to
        Euclidean families.
    data_layout:
        Placement policy of the raw-vector file: ``"scattered"`` (default,
        the paper's one-page-per-candidate model), ``"id"`` or ``"zorder"``
        (charge per distinct page; see :class:`repro.storage.DataFile` and
        the A5 ablation).
    incremental:
        When false, recount from scratch at every radius (A2 ablation).
    use_t1:
        When false, disable the T1 ("k candidates within c*R") stopping
        rule; search then runs until the false-positive budget fills or the
        tables are exhausted (A4 ablation).
    """

    def __init__(self, family=None, c=2, w=None, beta=None, delta=0.01,
                 alpha=None, m=None, seed=None, rng=None, page_manager=None,
                 base_radius="auto", data_layout="scattered",
                 incremental=True, use_t1=True):
        self._family = family
        self._c = int(c)
        self._w = w
        self._beta = beta
        self._delta = delta
        self._alpha = alpha
        self._m_override = m
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._pm = page_manager
        self._base_radius = base_radius
        self._data_layout = data_layout
        self._scale = 1.0
        self._incremental = bool(incremental)
        self._use_t1 = bool(use_t1)

        self.params: C2LSHParams | None = None
        self._data = None
        self._datafile = None
        self._funcs = None
        self._counter = None

    # -- indexing ------------------------------------------------------------

    def fit(self, data):
        """Build the index over ``data`` of shape ``(n, dim)``; returns self."""
        data = as_data_matrix(data)
        n, dim = data.shape
        if self._family is None:
            self._family = PStableFamily(dim, w=self._w, c=self._c)
        if self._family.metric in ("euclidean", "manhattan"):
            self._scale = resolve_base_radius(self._base_radius, data,
                                              self._rng,
                                              metric=self._family.metric)
        else:
            self._scale = 1.0
        self.params = design_params(
            n, self._family, c=self._c, beta=self._beta, delta=self._delta,
            alpha=self._alpha, m=self._m_override,
        )
        self._data = data
        self._funcs = self._family.sample(self.params.m, self._rng)
        bucket_ids = self._funcs.hash(self._hash_view(data))
        self._counter = CollisionCounter(bucket_ids, self._pm)
        # The data file charges its own build write and verification reads.
        self._datafile = DataFile(data, self._pm, layout=self._data_layout)
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._counter is not None

    def _require_fitted(self):
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")

    @property
    def m(self):
        """Number of hash tables the fitted index uses."""
        self._require_fitted()
        return self.params.m

    @property
    def l(self):
        """Collision threshold of the fitted index."""
        self._require_fitted()
        return self.params.l

    def index_pages(self):
        """Pages occupied by the hash tables (excluding the raw data file)."""
        self._require_fitted()
        if self._pm is None:
            raise RuntimeError("index was built without a page manager")
        return self._counter.storage_pages(self._pm)

    # -- querying ------------------------------------------------------------

    def query(self, query, k=1, budget=None, probe=None):
        """Answer a c-k-ANN query; returns a :class:`QueryResult`.

        ``budget`` optionally caps the query's work with a
        :class:`repro.reliability.QueryBudget`; on overrun the verified
        candidates collected so far are returned with
        ``stats.degraded = True`` instead of the search running on.

        ``probe`` selects the probing schedule: ``"classic"`` (default)
        walks the full paper-exact radius grid; ``"adaptive"`` (or an
        :class:`repro.core.AdaptiveConfig`) skips provably-empty start
        rounds, probes tables most-promising-first and early-exits rounds
        — far fewer pages read, same result contract (see
        :mod:`repro.core.adaptive` and docs/PERFORMANCE.md).
        """
        self._require_fitted()
        config = as_probe_config(probe)
        query = as_query_vector(query, self._data.shape[1])
        if config is not None:
            return self.query_batch(query[None, :], k=k, n_jobs=1,
                                    budget=budget, probe=config)[0]
        started = time.perf_counter()
        with trace.span("query", k=int(k),
                        kernels=_kernels_backend()) as qspan:
            with trace.span("hash"):
                qids = self._funcs.hash(self._hash_view(query))
            return self._query_hashed(query, qids, k, started=started,
                                      qspan=qspan, budget=budget)

    def _query_hashed(self, query, query_bucket_ids, k, started=None,
                      qspan=trace.NULL_SPAN, budget=None):
        """Query with precomputed bucket ids (batch path hashes once).

        ``started`` anchors ``stats.elapsed_s`` (defaults to now);
        ``qspan`` is the enclosing telemetry span, annotated with the
        final stats before it closes. ``budget`` is checked at round
        boundaries: an exhausted cap stops the radius walk after the
        in-flight round's verification completes.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if started is None:
            started = time.perf_counter()
        n = self._data.shape[0]
        params = self.params
        target = min(n, k + params.false_positive_budget)  # T2 threshold
        snapshot = self._pm.snapshot() if self._pm is not None else None
        traced = trace.active()
        tracker = budget.start(self._pm, started) \
            if budget is not None else None

        counter = self._counter.start_query(
            query_bucket_ids, incremental=self._incremental,
        )
        is_candidate = np.zeros(n, dtype=bool)
        cand_ids = []
        cand_dists = []
        n_candidates = 0
        stats = QueryStats()
        rehashable = self._funcs.rehashable
        # Running within-c*R count for T1: amortized O(cands log cands)
        # over the whole query instead of rescanning every verified
        # distance each round.
        tally = WithinRadiusTally() if self._use_t1 and rehashable else None

        radius = 1
        while True:
            round_snap = self._pm.snapshot() \
                if traced and self._pm is not None else None
            stop = None
            with trace.span("round", radius=radius) as rspan:
                with trace.span("count_round", radius=radius):
                    touched = counter.expand(radius)
                    fresh = counter.newly_frequent(params.l)
                    fresh = fresh[~is_candidate[fresh]]
                stats.rounds += 1
                stats.final_radius = radius
                stats.scanned_entries += int(touched.size)

                if fresh.size:
                    with trace.span("verify", count=int(fresh.size)):
                        dists = self._verify(fresh, query)
                    is_candidate[fresh] = True
                    cand_ids.append(fresh)
                    cand_dists.append(dists)
                    n_candidates += fresh.size
                    if tally is not None:
                        tally.add(dists)

                if n_candidates >= target:
                    stop = "T2"
                elif tally is not None and n_candidates >= k:
                    threshold = params.c * radius * self._scale
                    if tally.count_within(threshold) >= k:
                        stop = "T1"
                if stop is None and (not rehashable or counter.exhausted
                                     or stats.rounds >= _MAX_ROUNDS):
                    stop = "exhausted"
                if stop is None and tracker is not None:
                    tripped = tracker.exceeded(n_candidates)
                    if tripped:
                        stop = "budget"
                        stats.degraded = True
                        stats.budget_exhausted = tripped
                        flight.note(
                            "budget_exhausted", engine="sequential",
                            cap=tripped, radius=int(radius),
                            candidates=int(n_candidates),
                            rounds=int(stats.rounds),
                        )
                        flight.dump("budget_exhausted", extra={
                            "engine": "sequential", "cap": tripped,
                        })
                if traced:
                    self._annotate_round(rspan, radius, touched, fresh,
                                         cand_dists, n_candidates, tally,
                                         round_snap)
            if stop is not None:
                stats.terminated_by = stop
                break
            radius *= params.c

        if n_candidates < k:
            # Graceful fallback (single-granularity families, tiny n): verify
            # the best-counted remaining objects until k answers exist.
            remaining = np.flatnonzero(~is_candidate)
            if remaining.size:
                order = np.argsort(-counter.counts[remaining], kind="stable")
                need = min(k - n_candidates + params.false_positive_budget,
                           remaining.size)
                extra = remaining[order[:need]]
                with trace.span("verify", count=int(extra.size),
                                fallback=True):
                    extra_dists = self._verify(extra, query)
                cand_ids.append(extra)
                cand_dists.append(extra_dists)
                n_candidates += extra.size
                if not stats.degraded:
                    stats.terminated_by = "fallback"

        stats.candidates = n_candidates
        if snapshot is not None:
            delta_io = self._pm.since(snapshot)
            stats.io_reads = delta_io.reads
            stats.io_writes = delta_io.writes
        stats.elapsed_s = time.perf_counter() - started
        qspan.set(rounds=stats.rounds, final_radius=stats.final_radius,
                  candidates=stats.candidates,
                  scanned_entries=stats.scanned_entries,
                  io_reads=stats.io_reads, io_writes=stats.io_writes,
                  terminated_by=stats.terminated_by,
                  elapsed_s=stats.elapsed_s, degraded=stats.degraded)

        ids = np.concatenate(cand_ids) if cand_ids else np.empty(0, np.int64)
        dists = np.concatenate(cand_dists) if cand_dists else np.empty(0)
        return QueryResult.from_candidates(ids, dists, k, stats)

    def _annotate_round(self, rspan, radius, touched, fresh, cand_dists,
                        n_candidates, tally, round_snap):
        """Attach the round's full EXPLAIN record to its span (traced only).

        These attributes are the single source of truth the
        :func:`repro.core.explain.explain` tracer renders; computing them
        costs a rescan of the verified distances, which is why this runs
        only under an active trace.
        """
        threshold = self.params.c * radius * self._scale
        if tally is not None:
            # Idempotent for the T1 rule: thresholds are non-decreasing
            # along the radius grid, so consuming the tally here returns
            # the same counts the termination check sees.
            within = tally.count_within(threshold)
        else:
            within = sum(int(np.count_nonzero(d <= threshold))
                         for d in cand_dists)
        best = min((float(d.min()) for d in cand_dists if d.size),
                   default=float("inf"))
        io_reads = self._pm.since(round_snap).reads \
            if round_snap is not None else 0
        rspan.set(radius=int(radius), scanned=int(touched.size),
                  new_candidates=int(fresh.size),
                  total_candidates=int(n_candidates),
                  best_distance=best, t1_threshold=float(threshold),
                  within_t1=int(within), io_reads=int(io_reads))

    def query_radius(self, query, radius, k=1):
        """Answer the decision-version (R, c)-NNS the paper formalizes.

        Runs a *single* virtual-rehashing level — the smallest grid power
        ``c^i >= radius`` (in base-radius units; ``radius`` itself is in
        original distance units) — and verifies frequent objects until
        ``k`` of them lie within ``c * radius`` (success) or the
        false-positive budget fills.

        Returns a :class:`QueryResult` holding up to ``k`` objects within
        ``c * radius`` of ``query``; an **empty** result means "no point
        within ``radius``" in the (R, c)-NNS sense (correct with the usual
        probability when no point is within ``radius``; undefined in the
        gap zone).
        """
        self._require_fitted()
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if not self._funcs.rehashable:
            raise ValueError(
                "query_radius needs a rehashable (quantized-projection) "
                "family"
            )
        query = as_query_vector(query, self._data.shape[1])
        started = time.perf_counter()
        params = self.params
        grid_radius = 1
        while grid_radius * self._scale < radius:
            grid_radius *= params.c
        target = min(self._data.shape[0],
                     k + params.false_positive_budget)
        snapshot = self._pm.snapshot() if self._pm is not None else None

        with trace.span("query", k=int(k), decision=True) as qspan:
            with trace.span("hash"):
                qids = self._funcs.hash(self._hash_view(query))
            counter = self._counter.start_query(
                qids, incremental=self._incremental,
            )
            with trace.span("count_round", radius=grid_radius):
                touched = counter.expand(grid_radius)
                frequent = counter.frequent(params.l)[:target]
            with trace.span("verify", count=int(frequent.size)):
                dists = self._verify(frequent, query)
            keep = dists <= params.c * radius
            stats = QueryStats(rounds=1, final_radius=grid_radius,
                               candidates=int(frequent.size),
                               scanned_entries=int(touched.size),
                               terminated_by="decision")
            if snapshot is not None:
                delta_io = self._pm.since(snapshot)
                stats.io_reads = delta_io.reads
                stats.io_writes = delta_io.writes
            stats.elapsed_s = time.perf_counter() - started
            qspan.set(rounds=1, candidates=stats.candidates,
                      io_reads=stats.io_reads, io_writes=stats.io_writes,
                      terminated_by=stats.terminated_by,
                      elapsed_s=stats.elapsed_s)
        return QueryResult.from_candidates(
            frequent[keep], dists[keep], k, stats
        ) if np.any(keep) else QueryResult(
            np.empty(0, np.int64), np.empty(0), stats
        )

    @property
    def base_radius(self):
        """The distance unit the radius grid is expressed in."""
        self._require_fitted()
        return self._scale

    def _hash_view(self, points):
        """Points in radius-grid units (hashing only; never verification)."""
        if self._scale == 1.0:
            return points
        return points / self._scale

    def _verify(self, ids, query):
        """True distances for ``ids``, charging reads per the data layout."""
        return self._family.distance(self._datafile.read(ids), query)

    def query_batch(self, queries, k=1, n_jobs=None, budget=None,
                    probe=None):
        """Answer many queries; returns a list of :class:`QueryResult`.

        Queries run through the lockstep batch engine
        (:mod:`repro.core.batchengine`): hashing is one ``(q, m)`` matrix
        product, and every radius round advances all still-active queries
        with one batched binary search and one flat collision bincount.
        Results — ids, distances, stats, charged I/O — are identical to
        looping :meth:`query`; only the throughput changes.

        ``n_jobs > 1`` verifies candidate distances on a thread pool (page
        charging stays on the calling thread); ``n_jobs=None`` resolves
        through :func:`repro.sharding.default_parallelism` — the
        repository's single parallel-width policy, ``min(available cpus,
        batch size)`` — so the thread count is no longer implicit.
        ``n_jobs=1`` (or a single-CPU box) keeps verification on the
        calling thread. ``budget`` applies a
        :class:`repro.reliability.QueryBudget` to every query in the
        batch individually, with the same graceful-degradation semantics
        as :meth:`query`; a *sequence* of budgets (``None`` entries
        unbudgeted) instead budgets each query separately — how the
        serving front-end coalesces requests carrying different
        per-client deadlines into one batch. With ``incremental=False``
        (the A2 recount
        ablation) the per-query sequential path is kept, so the
        ablation's I/O pattern stays untouched. Batches larger than 1024
        queries are processed in blocks to bound the engine's
        ``(block, n)`` working matrices.

        ``probe="adaptive"`` (or an :class:`repro.core.AdaptiveConfig`)
        runs the blocks through the query-adaptive engine
        (:mod:`repro.core.adaptive`) instead: estimated radius starts,
        margin-ordered probing, chunked early exit. Requires a rehashable
        family and incremental counting; classic mode (the default) is
        the bit-exactness oracle.
        """
        self._require_fitted()
        config = as_probe_config(probe)
        queries = as_query_matrix(queries, self._data.shape[1])
        if config is not None:
            check_adaptive_supported(self._funcs, self._incremental)
        if n_jobs is None and queries.shape[0] > 0:
            # Lazy import: sharding.plan is a leaf module (os only), but
            # importing it at module scope would tangle core <-> sharding.
            from ..sharding.plan import default_parallelism

            n_jobs = default_parallelism(limit=queries.shape[0])
        started = time.perf_counter()
        budgets = as_budget_list(budget, queries.shape[0])
        with trace.span("hash", queries=int(queries.shape[0])):
            if config is not None:
                # Same two ops funcs.hash() performs, so the bucket ids
                # are bit-identical; the raw grid coordinates additionally
                # feed the margin-ordered probe schedule.
                uids = self._funcs.project(self._hash_view(queries)) \
                    / self._funcs.w
                all_ids = np.floor(uids).astype(np.int64)
            else:
                all_ids = self._funcs.hash(self._hash_view(queries))
        if not self._incremental:
            results = []
            for i, (q, qids) in enumerate(zip(queries, all_ids)):
                with trace.span("query", k=int(k)) as qspan:
                    results.append(self._query_hashed(
                        q, qids, k, qspan=qspan,
                        budget=budgets[i] if budgets is not None
                        else None))
            return results
        results = []
        for start in range(0, queries.shape[0], _BATCH_BLOCK):
            stop = start + _BATCH_BLOCK
            block_budget = (budgets[start:stop] if budgets is not None
                            else None)
            if config is not None:
                results.extend(adaptive_batch_query(
                    self, queries[start:stop], all_ids[start:stop],
                    uids[start:stop], k, n_jobs=n_jobs, started=started,
                    budget=block_budget, config=config))
            else:
                results.extend(batch_query(
                    self, queries[start:stop], all_ids[start:stop], k,
                    n_jobs=n_jobs, started=started,
                    budget=block_budget))
        return results

    def __repr__(self):
        if not self.is_fitted:
            return f"C2LSH(c={self._c}, unfitted)"
        return (f"C2LSH(n={self._data.shape[0]}, dim={self._data.shape[1]}, "
                f"m={self.params.m}, l={self.params.l}, c={self.params.c})")
