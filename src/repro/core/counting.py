"""Dynamic collision counting with virtual rehashing.

The engine keeps one sorted bucket file per LSH function (the layout of
:class:`repro.storage.SortedHashTable`, held as stacked ``(m, n)`` arrays so
all ``m`` lookups vectorize). For a query ``q`` and search radius ``R`` (an
integer from the grid ``{1, c, c^2, ...}``), the radius-``R`` bucket of
``q`` under table ``j`` is the contiguous base-id interval::

    anchor = floor(q_j / R) * R        # q's radius-R bucket, as base ids
    [anchor, anchor + R)

Because ``R`` divides ``c * R``, these intervals are *nested* across radius
steps, so a collision at radius ``R`` persists at radius ``c*R`` and a
per-object collision count only ever grows. Incremental expansion exploits
this: stepping the radius scans only the two newly uncovered sub-ranges per
table (left and right extensions), which is what makes virtual rehashing
cheap. ``incremental=False`` re-scans every table's full interval at each
radius — identical answers, strictly more I/O — and exists for the A2
ablation.

All ``m`` binary searches per radius step run in lockstep via
:func:`repro.storage.vsearch.row_searchsorted`; bucket-scan I/O is charged
through :meth:`repro.storage.PageManager.charge_bucket_scans` so every
index shares one cost formula.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..kernels import row_searchsorted
from ..storage.hashfile import ENTRY_BYTES

__all__ = ["CollisionCounter", "QueryCounter"]


class CollisionCounter:
    """Index-side state: ``m`` sorted hash tables over ``n`` objects."""

    def __init__(self, bucket_ids, page_manager=None, entry_bytes=ENTRY_BYTES):
        bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
        if bucket_ids.ndim != 2:
            raise ValueError(
                f"bucket_ids must have shape (n, m), got {bucket_ids.shape}"
            )
        self.n, self.m = bucket_ids.shape
        if self.n == 0:
            raise ValueError("cannot index an empty database")
        columns = bucket_ids.T  # (m, n)
        self.order = np.argsort(columns, axis=1, kind="stable")
        self.sorted_ids = np.take_along_axis(columns, self.order, axis=1)
        self._rank = None
        #: Global bucket-id span; see QueryCounter._intervals_for for the
        #: saturation rule that keeps huge radii well-defined.
        self.id_span = int(bucket_ids.max()) - int(bucket_ids.min())
        self._pm = page_manager
        self._entry_bytes = int(entry_bytes)
        if self._pm is not None:
            self._pm.charge_write(
                self.m * self._pm.pages_for(self.n, self._entry_bytes),
                site="build",
            )

    @property
    def rank(self):
        """``(m, n)`` position of every object in every table's sort order.

        The inverse permutation of :attr:`order`, built lazily (int32,
        ``4*m*n`` bytes) and cached: the batch engine's dense counting
        kernel turns "object in covered interval?" into two comparisons
        against this matrix instead of gathering the interval's entries.
        """
        if self._rank is None:
            rank = np.empty((self.m, self.n), dtype=np.int32)
            np.put_along_axis(
                rank, self.order,
                np.arange(self.n, dtype=np.int32)[None, :], axis=1,
            )
            self._rank = rank
        return self._rank

    def storage_pages(self, page_manager):
        """Total pages occupied by all hash-table entry files."""
        return self.m * page_manager.pages_for(self.n, self._entry_bytes)

    def start_query(self, query_bucket_ids, incremental=True):
        """Begin counting for a query hashed to ``(m,)`` base bucket ids."""
        query_bucket_ids = np.asarray(query_bucket_ids, dtype=np.int64)
        if query_bucket_ids.shape != (self.m,):
            raise ValueError(
                f"expected {self.m} query bucket ids, got shape "
                f"{query_bucket_ids.shape}"
            )
        return QueryCounter(self, query_bucket_ids, incremental=incremental)


class QueryCounter:
    """Per-query collision counts, expandable to growing radii."""

    def __init__(self, index, query_bucket_ids, incremental=True):
        self._index = index
        self._qids = query_bucket_ids
        self._incremental = bool(incremental)
        self.counts = np.zeros(index.n, dtype=np.int32)
        # Currently covered position interval [lo, hi) per table.
        self._lo = np.zeros(index.m, dtype=np.int64)
        self._hi = np.zeros(index.m, dtype=np.int64)
        self._started = False
        self.radius = 0  # last expanded radius (0 = nothing counted yet)
        #: Per-object count increment of the most recent expand() call
        #: (None before the first call / when nothing was touched). Lets
        #: callers detect threshold crossings without re-scanning ids.
        self.last_delta = None

    @property
    def exhausted(self):
        """True when every table's interval already covers all entries."""
        n = self._index.n
        return self._started and bool(
            np.all(self._lo == 0) and np.all(self._hi == n)
        )

    def _intervals_for(self, radius):
        # Saturation: with an aligned grid, a query and a point on opposite
        # sides of a boundary that is aligned at *every* level (e.g. 0) never
        # share a bucket, however large the radius — so "cover everything"
        # is the correct limit semantics once the radius dwarfs the id span.
        # Saturating at 2*(span+1) also keeps anchor arithmetic inside int64.
        if radius >= 2 * (self._index.id_span + 1):
            return (np.zeros(self._index.m, dtype=np.int64),
                    np.full(self._index.m, self._index.n, dtype=np.int64))
        anchors = (self._qids // radius) * radius
        lo = row_searchsorted(self._index.sorted_ids, anchors, side="left")
        hi = row_searchsorted(self._index.sorted_ids, anchors + radius,
                              side="left")
        return lo, hi

    def _check_radius(self, radius):
        if radius < 1 or int(radius) != radius:
            raise ValueError(f"radius must be a positive integer, got {radius}")
        radius = int(radius)
        if self._started and (radius <= self.radius
                              or radius % self.radius != 0):
            raise ValueError(
                f"radius must grow by integer factors: "
                f"{self.radius} -> {radius}"
            )
        return radius

    def _gather(self, rows, lo, hi):
        """Collect object ids for per-table ``[lo, hi)`` segments, charge I/O.

        ``rows``/``lo``/``hi`` are parallel arrays: segment ``s`` is the
        position range ``[lo[s], hi[s])`` of table ``rows[s]``. Each segment
        is one contiguous bucket-range scan; the shared cost formula in
        ``PageManager.charge_bucket_scans`` prices them. The gather itself
        is a single flat fancy index built from ``np.repeat`` offsets — no
        per-segment Python loop.
        """
        keep = hi > lo
        rows, lo, hi = rows[keep], lo[keep], hi[keep]
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        lengths = hi - lo
        pm = self._index._pm
        if pm is not None:
            pm.charge_bucket_scans(lengths, self._index._entry_bytes)
        total = int(lengths.sum())
        # Flat position of element t of the output: lo[s] + (t - start[s])
        # where s is t's segment and start[s] the cumulative offset.
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        pos = np.repeat(lo - starts, lengths) + np.arange(total)
        return self._index.order[np.repeat(rows, lengths), pos]

    def expand(self, radius):
        """Grow coverage to ``radius``; return object ids newly counted.

        ``radius`` must be a positive integer multiple of the previous
        radius (the grid ``{1, c, c^2, ...}`` satisfies this), so intervals
        nest and counts stay monotone. The returned array may contain an id
        once per table that newly covers it.
        """
        radius = self._check_radius(radius)
        if not self._incremental:
            return self._recount(radius)

        lo_new, hi_new = self._intervals_for(radius)
        if self._started:
            if np.any(lo_new > self._lo) or np.any(hi_new < self._hi):
                raise AssertionError(
                    "virtual-rehashing nesting violated: some table's "
                    f"radius-{radius} interval shrank"
                )
            # Interleave each table's left extension [lo_new, lo_old) and
            # right extension [hi_old, hi_new); _gather drops empty ones.
            js = np.flatnonzero((lo_new < self._lo) | (self._hi < hi_new))
            rows = np.repeat(js, 2)
            seg_lo = np.empty(rows.size, dtype=np.int64)
            seg_hi = np.empty(rows.size, dtype=np.int64)
            seg_lo[0::2], seg_hi[0::2] = lo_new[js], self._lo[js]
            seg_lo[1::2], seg_hi[1::2] = self._hi[js], hi_new[js]
        else:
            rows = np.arange(self._index.m)
            seg_lo, seg_hi = lo_new, hi_new
        self._lo, self._hi = lo_new, hi_new
        self._started = True
        self.radius = radius

        touched = self._gather(rows, seg_lo, seg_hi)
        self._apply(touched)
        return touched

    def _apply(self, touched):
        if touched.size:
            # Kernel-tier bincount: an order of magnitude faster than
            # np.add.at on the numpy tier, a compiled loop on numba.
            self.last_delta = kernels.bincount_i32(touched, self._index.n)
            self.counts += self.last_delta
        else:
            self.last_delta = None

    def newly_frequent(self, threshold):
        """Ids whose count crossed ``threshold`` in the last expand() call.

        In recount mode counts reset each round, so "crossed" means
        "frequent this round" — callers must dedupe across rounds.
        """
        if self.last_delta is None:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(
            (self.counts >= threshold)
            & (self.counts - self.last_delta < threshold)
        )

    def _recount(self, radius):
        """Ablation mode: rebuild all counts from scratch at ``radius``."""
        self.counts[:] = 0
        lo_new, hi_new = self._intervals_for(radius)
        self._lo, self._hi = lo_new, hi_new
        self._started = True
        self.radius = radius
        touched = self._gather(np.arange(self._index.m), lo_new, hi_new)
        self._apply(touched)
        return touched

    def frequent(self, threshold):
        """All object ids with collision count ``>= threshold``."""
        return np.flatnonzero(self.counts >= threshold)
