"""EXPLAIN for C2LSH queries: a per-round trace of the search.

Debugging an approximate index means answering "why did this query stop
where it did?". :func:`explain` re-runs a query while recording, per radius
round: the grid radius, entries scanned, objects that crossed the
collision threshold, the closest verified distance so far, the state of
both termination rules, and the I/O bill — then renders it as a table.

The trace drives the *real* engine (it reuses the index's counter and
verification paths), so what it shows is exactly what ``query`` did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.reporting import Table
from ..validation import as_query_vector

__all__ = ["RoundTrace", "QueryExplanation", "explain"]


@dataclass
class RoundTrace:
    """What one radius round did."""

    radius: int
    scanned_entries: int
    new_candidates: int
    total_candidates: int
    best_distance: float
    t1_threshold: float
    within_t1: int
    io_reads: int


@dataclass
class QueryExplanation:
    """Full account of one query's execution."""

    rounds: list
    terminated_by: str
    k: int
    target: int          # the T2 candidate cap (k + beta*n)
    result_ids: np.ndarray
    result_distances: np.ndarray

    def render(self):
        """The trace as an aligned text table plus a verdict line."""
        table = Table(
            ["round", "radius", "scanned", "new_cand", "total_cand",
             "best_dist", "T1_thresh", "within_T1", "io_pages"],
            title=f"Query explanation (k={self.k}, "
                  f"T2 cap={self.target})",
        )
        for i, r in enumerate(self.rounds, start=1):
            table.add(i, r.radius, r.scanned_entries, r.new_candidates,
                      r.total_candidates,
                      f"{r.best_distance:.4f}" if np.isfinite(
                          r.best_distance) else "-",
                      f"{r.t1_threshold:.4f}", r.within_t1, r.io_reads)
        verdict = {
            "T1": "stopped by T1: enough verified candidates within c*R",
            "T2": "stopped by T2: the false-positive budget filled",
            "exhausted": "stopped because the tables were exhausted",
            "fallback": "fell back to count-ordered verification",
        }.get(self.terminated_by, self.terminated_by)
        return table.render() + f"\n=> {verdict}"

    def print(self, file=None):
        """Print the rendered explanation."""
        print(self.render(), file=file)


def explain(index, query, k=1):
    """Trace one C2LSH query round by round.

    Parameters
    ----------
    index:
        A fitted :class:`repro.core.c2lsh.C2LSH` over a rehashable family.
    query, k:
        As for ``index.query``.

    Returns
    -------
    QueryExplanation
    """
    index._require_fitted()
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if not index._funcs.rehashable:
        raise ValueError("explain requires a rehashable family "
                         "(radius rounds do not exist otherwise)")
    query = as_query_vector(query, index._data.shape[1])
    params = index.params
    n = index._data.shape[0]
    target = min(n, k + params.false_positive_budget)
    pm = index._pm

    counter = index._counter.start_query(
        index._funcs.hash(index._hash_view(query)),
        incremental=index._incremental,
    )
    is_candidate = np.zeros(n, dtype=bool)
    cand_ids, cand_dists = [], []
    n_candidates = 0
    rounds = []
    terminated = "exhausted"

    radius = 1
    for _ in range(64):
        before = pm.snapshot() if pm is not None else None
        touched = counter.expand(radius)
        fresh = counter.newly_frequent(params.l)
        fresh = fresh[~is_candidate[fresh]]
        if fresh.size:
            dists = index._verify(fresh, query)
            is_candidate[fresh] = True
            cand_ids.append(fresh)
            cand_dists.append(dists)
            n_candidates += fresh.size

        threshold = params.c * radius * index._scale
        within = sum(int(np.count_nonzero(d <= threshold))
                     for d in cand_dists)
        best = min((float(d.min()) for d in cand_dists if d.size),
                   default=float("inf"))
        rounds.append(RoundTrace(
            radius=radius,
            scanned_entries=int(touched.size),
            new_candidates=int(fresh.size),
            total_candidates=n_candidates,
            best_distance=best,
            t1_threshold=threshold,
            within_t1=within,
            io_reads=pm.since(before).reads if pm is not None else 0,
        ))

        if n_candidates >= target:
            terminated = "T2"
            break
        if index._use_t1 and n_candidates >= k and within >= k:
            terminated = "T1"
            break
        if counter.exhausted:
            terminated = "exhausted"
            break
        radius *= params.c

    if n_candidates < k:
        terminated = "fallback"

    from .results import QueryResult
    ids = np.concatenate(cand_ids) if cand_ids else np.empty(0, np.int64)
    dists = np.concatenate(cand_dists) if cand_dists else np.empty(0)
    result = QueryResult.from_candidates(ids, dists, k)
    return QueryExplanation(
        rounds=rounds, terminated_by=terminated, k=k, target=target,
        result_ids=result.ids, result_distances=result.distances,
    )
