"""EXPLAIN for C2LSH queries: a per-round trace of the search.

Debugging an approximate index means answering "why did this query stop
where it did?". :func:`explain` runs the query under a
:mod:`repro.obs` trace and rebuilds, per radius round: the grid radius,
entries scanned, objects that crossed the collision threshold, the
closest verified distance so far, the state of both termination rules,
and the I/O bill — then renders it as a table.

The round records come straight from the ``"round"`` span attributes the
engine itself emits (see ``C2LSH._annotate_round``), so the telemetry
stream is the single source of truth: what EXPLAIN shows is literally
what ``query`` did, not a re-implementation of the search loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.reporting import Table
from ..obs import tracing
from ..validation import as_query_vector

__all__ = ["RoundTrace", "QueryExplanation", "explain"]


@dataclass
class RoundTrace:
    """What one radius round did."""

    radius: int
    scanned_entries: int
    new_candidates: int
    total_candidates: int
    best_distance: float
    t1_threshold: float
    within_t1: int
    io_reads: int


@dataclass
class QueryExplanation:
    """Full account of one query's execution."""

    rounds: list
    terminated_by: str
    k: int
    target: int          # the T2 candidate cap (k + beta*n)
    result_ids: np.ndarray
    result_distances: np.ndarray

    def render(self):
        """The trace as an aligned text table plus a verdict line."""
        table = Table(
            ["round", "radius", "scanned", "new_cand", "total_cand",
             "best_dist", "T1_thresh", "within_T1", "io_pages"],
            title=f"Query explanation (k={self.k}, "
                  f"T2 cap={self.target})",
        )
        for i, r in enumerate(self.rounds, start=1):
            table.add(i, r.radius, r.scanned_entries, r.new_candidates,
                      r.total_candidates,
                      f"{r.best_distance:.4f}" if np.isfinite(
                          r.best_distance) else "-",
                      f"{r.t1_threshold:.4f}", r.within_t1, r.io_reads)
        verdict = {
            "T1": "stopped by T1: enough verified candidates within c*R",
            "T2": "stopped by T2: the false-positive budget filled",
            "exhausted": "stopped because the tables were exhausted",
            "fallback": "fell back to count-ordered verification",
        }.get(self.terminated_by, self.terminated_by)
        return table.render() + f"\n=> {verdict}"

    def print(self, file=None):
        """Print the rendered explanation."""
        print(self.render(), file=file)


def explain(index, query, k=1):
    """Trace one C2LSH query round by round.

    Runs the real :meth:`~repro.core.c2lsh.C2LSH.query` under a local
    telemetry trace and decodes the emitted ``"round"`` spans into
    :class:`RoundTrace` records, so the explanation is guaranteed to match
    what the engine actually executed (same counter, same verification,
    same termination decision).

    Parameters
    ----------
    index:
        A fitted :class:`repro.core.c2lsh.C2LSH` over a rehashable family.
    query, k:
        As for ``index.query``.

    Returns
    -------
    QueryExplanation
    """
    index._require_fitted()
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if not index._funcs.rehashable:
        raise ValueError("explain requires a rehashable family "
                         "(radius rounds do not exist otherwise)")
    query = as_query_vector(query, index._data.shape[1])
    params = index.params
    n = index._data.shape[0]
    target = min(n, k + params.false_positive_budget)

    with tracing() as tr:
        result = index.query(query, k=k)

    rounds = [
        RoundTrace(
            radius=ev.attrs["radius"],
            scanned_entries=ev.attrs["scanned"],
            new_candidates=ev.attrs["new_candidates"],
            total_candidates=ev.attrs["total_candidates"],
            best_distance=ev.attrs["best_distance"],
            t1_threshold=ev.attrs["t1_threshold"],
            within_t1=ev.attrs["within_t1"],
            io_reads=ev.attrs["io_reads"],
        )
        for ev in tr.events
        if getattr(ev, "name", None) == "round"
    ]
    return QueryExplanation(
        rounds=rounds, terminated_by=result.stats.terminated_by, k=k,
        target=target, result_ids=result.ids,
        result_distances=result.distances,
    )
