"""EXPLAIN for C2LSH queries: a per-round trace of the search.

Debugging an approximate index means answering "why did this query stop
where it did?". :func:`explain` runs the query under a
:mod:`repro.obs` trace and rebuilds, per radius round: the grid radius,
entries scanned, objects that crossed the collision threshold, the
closest verified distance so far, the state of both termination rules,
and the I/O bill — then renders it as a table.

The round records come straight from the ``"round"`` span attributes the
engine itself emits (see ``C2LSH._annotate_round``), so the telemetry
stream is the single source of truth: what EXPLAIN shows is literally
what ``query`` did, not a re-implementation of the search loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.reporting import Table
from ..obs import tracing
from ..validation import as_query_vector

__all__ = ["RoundTrace", "QueryExplanation", "explain",
           "ShardSpanTrace", "ShardedQueryExplanation", "explain_sharded"]


@dataclass
class RoundTrace:
    """What one radius round did.

    The probe columns are populated by adaptive-mode queries
    (``probe="adaptive"``): per-table probes executed vs. avoided and the
    page bill the avoided probes would have cost. Classic rounds render
    zeros — the classic engine probes every table every round and skips
    nothing. ``skipped`` marks a start round the adaptive estimator
    proved outcome-free and never ran.
    """

    radius: int
    scanned_entries: int
    new_candidates: int
    total_candidates: int
    best_distance: float
    t1_threshold: float
    within_t1: int
    io_reads: int
    probes_issued: int = 0
    probes_skipped: int = 0
    pages_saved: int = 0
    skipped: bool = False


@dataclass
class QueryExplanation:
    """Full account of one query's execution."""

    rounds: list
    terminated_by: str
    k: int
    target: int          # the T2 candidate cap (k + beta*n)
    result_ids: np.ndarray
    result_distances: np.ndarray

    def render(self):
        """The trace as an aligned text table plus a verdict line."""
        table = Table(
            ["round", "radius", "scanned", "new_cand", "total_cand",
             "best_dist", "T1_thresh", "within_T1", "io_pages",
             "probes", "skipped", "pages_saved"],
            title=f"Query explanation (k={self.k}, "
                  f"T2 cap={self.target})",
        )
        for i, r in enumerate(self.rounds, start=1):
            table.add("skip" if r.skipped else i, r.radius,
                      r.scanned_entries, r.new_candidates,
                      r.total_candidates,
                      f"{r.best_distance:.4f}" if np.isfinite(
                          r.best_distance) else "-",
                      f"{r.t1_threshold:.4f}", r.within_t1, r.io_reads,
                      r.probes_issued, r.probes_skipped, r.pages_saved)
        verdict = {
            "T1": "stopped by T1: enough verified candidates within c*R",
            "T2": "stopped by T2: the false-positive budget filled",
            "T2-early": "stopped by provisional T2: projected crossers "
                        "filled the budget mid-round",
            "exhausted": "stopped because the tables were exhausted",
            "fallback": "fell back to count-ordered verification",
            "budget": "stopped by the query budget (degraded result)",
        }.get(self.terminated_by, self.terminated_by)
        return table.render() + f"\n=> {verdict}"

    def print(self, file=None):
        """Print the rendered explanation."""
        print(self.render(), file=file)


@dataclass
class ShardSpanTrace:
    """One worker-side span as observed during a sharded query.

    ``round_no`` is the coordinator round the span belongs to (0 for the
    fallback phase); ``pid`` and ``kernels`` identify the worker process
    and its kernel tier, proving the span really was recorded on the
    shard side and propagated back.
    """

    round_no: int
    radius: int
    shard: int
    pid: int
    kernels: str
    scanned: int
    candidates: int
    pages: int
    seconds: float
    probes_issued: int = 0
    probes_skipped: int = 0


@dataclass
class ShardedQueryExplanation:
    """Full account of one sharded query's execution, per shard."""

    spans: list              # ShardSpanTrace, (round, shard) order
    terminated_by: str
    k: int
    n_shards: int
    io_reads: int            # coordinator-aggregated page total
    result_ids: np.ndarray
    result_distances: np.ndarray

    def render(self):
        """The per-shard timeline as a table plus a verdict line."""
        table = Table(
            ["round", "radius", "shard", "pid", "kernels", "scanned",
             "new_cand", "pages", "probes", "skipped", "ms"],
            title=f"Sharded query explanation (k={self.k}, "
                  f"{self.n_shards} shards, {self.io_reads} pages)",
        )
        for s in self.spans:
            table.add(s.round_no if s.round_no else "FB",
                      s.radius if s.radius else "-",
                      s.shard, s.pid, s.kernels, s.scanned,
                      s.candidates, s.pages, s.probes_issued,
                      s.probes_skipped, f"{s.seconds * 1e3:.3f}")
        verdict = {
            "T1": "stopped by T1: enough verified candidates within c*R",
            "T2": "stopped by T2: the false-positive budget filled",
            "exhausted": "stopped because the tables were exhausted",
            "fallback": "fell back to count-ordered verification",
            "budget": "stopped by the query budget (degraded result)",
        }.get(self.terminated_by, self.terminated_by)
        return table.render() + f"\n=> {verdict}"

    def print(self, file=None):
        """Print the rendered explanation."""
        print(self.render(), file=file)


def explain_sharded(engine, query, k=1, probe=None):
    """Trace one sharded query; per-shard rounds from worker spans.

    Runs the real :meth:`~repro.sharding.ShardedC2LSH.query` under a
    local telemetry trace. The coordinator's ``shard.round`` spans give
    the round timeline; the ``shard.worker.round`` /
    ``shard.worker.fallback`` spans — recorded *inside the worker
    process* and shipped back on the round payloads — give the per-shard
    rows, each stamped with the worker's pid and kernel tier. The sum of
    per-shard ``pages`` equals the query's aggregate ``io_reads``.
    ``probe="adaptive"`` traces the adaptive protocol; its rows
    additionally show per-shard probes issued vs. skipped (classic rows
    render zeros).
    """
    engine._require_fitted()
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    query = as_query_vector(query, engine.dim)

    with tracing() as tr:
        result = engine.query(query, k=k, probe=probe)

    # Coordinator rounds close in radius order; number them 1..R so the
    # worker spans (matched by radius) can be grouped per round.
    round_no = {}
    for ev in tr.events:
        if getattr(ev, "name", None) == "shard.round":
            round_no.setdefault(ev.attrs["radius"], len(round_no) + 1)

    spans = []
    for ev in tr.events:
        name = getattr(ev, "name", None)
        if name not in ("shard.worker.round", "shard.worker.fallback"):
            continue
        attrs = ev.attrs
        radius = int(attrs.get("radius", 0))
        spans.append(ShardSpanTrace(
            round_no=round_no.get(radius, 0) if name.endswith(".round")
            else 0,
            radius=radius,
            shard=int(attrs["shard"]),
            pid=int(attrs["pid"]),
            kernels=str(attrs["kernels"]),
            scanned=int(attrs.get("scanned", 0)),
            candidates=int(attrs.get("candidates",
                                     attrs.get("queries", 0))),
            pages=int(attrs.get("pages", 0)),
            seconds=float(ev.duration_s),
            probes_issued=int(attrs.get("probes_issued", 0)),
            probes_skipped=int(attrs.get("probes_skipped", 0)),
        ))
    spans.sort(key=lambda s: (s.round_no or len(round_no) + 1, s.shard))
    return ShardedQueryExplanation(
        spans=spans, terminated_by=result.stats.terminated_by, k=k,
        n_shards=engine.n_shards, io_reads=result.stats.io_reads,
        result_ids=result.ids, result_distances=result.distances,
    )


def explain(index, query, k=1, probe=None):
    """Trace one C2LSH query round by round.

    Runs the real :meth:`~repro.core.c2lsh.C2LSH.query` under a local
    telemetry trace and decodes the emitted ``"round"`` spans into
    :class:`RoundTrace` records, so the explanation is guaranteed to match
    what the engine actually executed (same counter, same verification,
    same termination decision).

    Parameters
    ----------
    index:
        A fitted :class:`repro.core.c2lsh.C2LSH` over a rehashable family.
    query, k:
        As for ``index.query``.
    probe:
        Probing mode, as for ``index.query``. Under ``"adaptive"`` the
        trace includes estimator-skipped start rounds (rendered as
        ``skip`` rows) and per-round probes issued/skipped with the page
        bill the skips saved; classic traces render zeros there.

    Returns
    -------
    QueryExplanation
    """
    index._require_fitted()
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if not index._funcs.rehashable:
        raise ValueError("explain requires a rehashable family "
                         "(radius rounds do not exist otherwise)")
    query = as_query_vector(query, index._data.shape[1])
    params = index.params
    n = index._data.shape[0]
    target = min(n, k + params.false_positive_budget)

    with tracing() as tr:
        result = index.query(query, k=k, probe=probe)

    rounds = [
        RoundTrace(
            radius=ev.attrs["radius"],
            scanned_entries=ev.attrs["scanned"],
            new_candidates=ev.attrs["new_candidates"],
            total_candidates=ev.attrs["total_candidates"],
            best_distance=ev.attrs["best_distance"],
            t1_threshold=ev.attrs["t1_threshold"],
            within_t1=ev.attrs["within_t1"],
            io_reads=ev.attrs["io_reads"],
            probes_issued=ev.attrs.get("probes_issued", 0),
            probes_skipped=ev.attrs.get("probes_skipped", 0),
            pages_saved=ev.attrs.get("pages_saved", 0),
            skipped=bool(ev.attrs.get("skipped", False)),
        )
        for ev in tr.events
        if getattr(ev, "name", None) == "round"
    ]
    return QueryExplanation(
        rounds=rounds, terminated_by=result.stats.terminated_by, k=k,
        target=target, result_ids=result.ids,
        result_distances=result.distances,
    )
