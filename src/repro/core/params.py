"""C2LSH parameter machinery.

C2LSH declares an object *frequent* (a candidate) when it collides with the
query under at least ``l`` of ``m`` single hash functions. The paper sets
``m`` and the collision-threshold percentage ``alpha = l/m`` from two
Hoeffding bounds so that, at any search radius ``R`` in the grid
``{1, c, c^2, ...}``:

* **P1 (no false negative):** a point within distance ``R`` of the query
  reaches ``l`` collisions with probability at least ``1 - delta``;
* **P2 (few false positives):** at most ``beta * n`` points farther than
  ``c * R`` become frequent, with probability at least ``1/2``.

With ``p1 = p(1)`` and ``p2 = p(c)`` the base collision probabilities, the
bounds require::

    m >= ln(1/delta)  / (2 * (p1 - alpha)^2)          (P1)
    m >= ln(2/beta)   / (2 * (alpha - p2)^2)          (P2)

and the ``m``-minimizing threshold is::

    alpha* = (z * p1 + p2) / (1 + z),   z = sqrt(ln(2/beta) / ln(1/delta))

Virtual rehashing keeps the same ``(m, l)`` valid at every radius because
the collision probability under the radius-``R`` function depends only on
``distance / R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..hashing.probability import rho as rho_exponent

__all__ = ["C2LSHParams", "optimal_alpha", "required_m", "design_params"]


def optimal_alpha(p1, p2, beta, delta):
    """The collision-threshold percentage minimizing ``m``.

    ``alpha* = (z*p1 + p2) / (1 + z)`` with ``z = sqrt(ln(2/beta)/ln(1/delta))``
    equalizes the two Hoeffding bounds, so neither constraint dominates.
    """
    _validate_probabilities(p1, p2, beta, delta)
    z = math.sqrt(math.log(2.0 / beta) / math.log(1.0 / delta))
    alpha = (z * p1 + p2) / (1.0 + z)
    # By construction p2 < alpha < p1; assert to catch numerics.
    if not (p2 < alpha < p1):
        raise ArithmeticError(
            f"computed alpha={alpha} escaped ({p2}, {p1}); "
            "check beta/delta inputs"
        )
    return alpha


def required_m(p1, p2, alpha, beta, delta):
    """Smallest ``m`` satisfying both Hoeffding bounds for threshold ``alpha``."""
    _validate_probabilities(p1, p2, beta, delta)
    if not (p2 < alpha < p1):
        raise ValueError(f"alpha must lie strictly in (p2, p1)=({p2}, {p1})")
    m_fn = math.log(1.0 / delta) / (2.0 * (p1 - alpha) ** 2)
    m_fp = math.log(2.0 / beta) / (2.0 * (alpha - p2) ** 2)
    return int(math.ceil(max(m_fn, m_fp)))


def _validate_probabilities(p1, p2, beta, delta):
    if not (0.0 < p2 < p1 < 1.0):
        raise ValueError(f"need 0 < p2 < p1 < 1, got p1={p1}, p2={p2}")
    if not (0.0 < beta < 2.0):
        raise ValueError(f"false-positive percentage beta must be in (0, 2), got {beta}")
    if not (0.0 < delta < 1.0):
        raise ValueError(f"error probability delta must be in (0, 1), got {delta}")


@dataclass(frozen=True)
class C2LSHParams:
    """A complete, validated C2LSH configuration.

    Attributes
    ----------
    n:
        Database cardinality the parameters were designed for.
    c:
        Approximation ratio (integer ``>= 2`` so virtual rehashing's bucket
        merging is exact); the quality guarantee is ``c**2``.
    w:
        Bucket width of the base hash functions.
    p1, p2:
        Collision probabilities at distance 1 and ``c``.
    alpha:
        Collision-threshold percentage, ``p2 < alpha < p1``.
    m:
        Number of hash functions / hash tables.
    l:
        Absolute collision threshold, ``ceil(alpha * m)``.
    beta:
        Allowed false-positive fraction (the paper's default is ``100/n``).
    delta:
        Per-query false-negative probability bound.
    """

    n: int
    c: int
    w: float
    p1: float
    p2: float
    alpha: float
    m: int
    l: int = field(default=0)

    beta: float = 0.0
    delta: float = 0.0

    def __post_init__(self):
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.c < 2 or int(self.c) != self.c:
            raise ValueError(
                f"c must be an integer >= 2 for exact virtual rehashing, got {self.c}"
            )
        if self.m < 1:
            raise ValueError(f"m must be positive, got {self.m}")
        if not (self.p2 < self.alpha < self.p1):
            raise ValueError(
                f"alpha={self.alpha} must lie in (p2, p1)=({self.p2}, {self.p1})"
            )
        if self.l == 0:
            # The tiny slack absorbs float noise like 0.55 * 100 == 55.0000…7,
            # which would otherwise ceil to 56.
            object.__setattr__(
                self, "l", int(math.ceil(self.alpha * self.m - 1e-9))
            )
        if not (1 <= self.l <= self.m):
            raise ValueError(f"threshold l={self.l} must lie in [1, m={self.m}]")

    @property
    def rho(self):
        """Quality exponent ``ln(1/p1)/ln(1/p2)`` of the underlying family."""
        return rho_exponent(self.p1, self.p2)

    @property
    def false_positive_budget(self):
        """Maximum tolerated number of false positives, ``ceil(beta * n)``."""
        return int(math.ceil(self.beta * self.n))

    @property
    def false_negative_bound(self):
        """Hoeffding bound on P[near point not frequent] at the design point."""
        return math.exp(-2.0 * self.m * (self.p1 - self.alpha) ** 2)

    @property
    def false_positive_bound(self):
        """Hoeffding bound on P[one far point frequent], times ``2/beta = 1``
        budget margin: the expected number of frequent far points is at most
        ``n * exp(-2 m (alpha - p2)^2) <= beta*n/2``."""
        return math.exp(-2.0 * self.m * (self.alpha - self.p2) ** 2)

    @property
    def success_probability(self):
        """Lower bound on the (R, c)-NN success probability: ``1/2 - delta``."""
        return 0.5 - self.delta

    def describe(self):
        """One-line human-readable summary (used by the harness tables)."""
        return (
            f"c={self.c} w={self.w:.3f} p1={self.p1:.4f} p2={self.p2:.4f} "
            f"alpha={self.alpha:.4f} m={self.m} l={self.l} "
            f"beta*n={self.false_positive_budget} delta={self.delta:g}"
        )


def design_params(n, family, c=2, beta=None, delta=0.01, alpha=None, m=None):
    """Design a full C2LSH configuration for a database of size ``n``.

    Parameters
    ----------
    n:
        Database cardinality.
    family:
        An :class:`repro.hashing.LSHFamily`; supplies ``p1 = p(r0)`` and
        ``p2 = p(c * r0)`` at its base radius. For the p-stable family the
        base radius is distance 1 with bucket width ``family.w``.
    c:
        Integer approximation ratio (default 2, as in the paper).
    beta:
        Allowed false-positive fraction. Defaults to the paper's
        ``100 / n`` (clamped below 1).
    delta:
        False-negative probability bound (default 0.01).
    alpha:
        Override the collision-threshold percentage; defaults to the
        ``m``-minimizing :func:`optimal_alpha`.
    m:
        Override the number of hash functions; must still satisfy
        ``1 <= l <= m``. Used by ablation studies.

    Returns
    -------
    C2LSHParams
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if beta is None:
        beta = min(100.0 / n, 0.5)
    base_radius = 1.0
    if family.metric == "angular":
        # Angular distances live in [0, pi]; pick a base radius small enough
        # that c * r0 stays within range.
        base_radius = math.pi / (2.0 * c)
    elif family.metric == "hamming":
        base_radius = max(1.0, family.dim / (4.0 * c))
    p1, p2 = family.probabilities(c, radius=base_radius)
    if alpha is None:
        alpha = optimal_alpha(p1, p2, beta, delta)
    if m is None:
        m = required_m(p1, p2, alpha, beta, delta)
    return C2LSHParams(
        n=int(n), c=int(c), w=getattr(family, "w", float("nan")),
        p1=p1, p2=p2, alpha=float(alpha), m=int(m), beta=float(beta),
        delta=float(delta),
    )
