"""Save/load fitted C2LSH and QALSH indexes, crash-safely.

A C2LSH index is fully determined by its data, its sampled hash functions
(projection matrix, offsets, bucket width), its parameters and its distance
unit, so persistence is one compressed ``.npz`` file. The sorted hash
tables are rebuilt on load (an ``O(n m log n)`` argsort — cheaper to redo
than to store, and bit-identical because hashing is deterministic).

Two reliability guarantees (format version 2):

* **Atomic saves.** The container is written to a temporary file in the
  destination directory, flushed and ``fsync``-ed, then moved into place
  with ``os.replace`` (followed by a directory fsync). A crash or fault
  mid-save leaves any previous index file untouched; no reader can ever
  observe a half-written container.
* **Verified loads.** Every array carries a CRC32 checksum, dtype and
  shape in an embedded JSON manifest (the ``__manifest__`` member).
  Loading re-hashes each array and raises
  :class:`repro.reliability.CorruptIndexError` — a ``ValueError``
  subclass — naming the damaged section when anything disagrees: a
  truncated zip, an unparsable manifest, a version or kind mismatch, or
  a flipped byte inside a specific array.

Only the default Euclidean (p-stable) family is supported; custom-family
indexes carry user callables that have no stable serialized form.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import zlib

import numpy as np

from ..hashing.pstable import PStableFamily, PStableFunctions
from ..reliability.errors import CorruptIndexError
from ..storage.datafile import DataFile
from .c2lsh import C2LSH
from .counting import CollisionCounter
from .params import C2LSHParams

__all__ = ["save_c2lsh", "load_c2lsh", "save_qalsh", "load_qalsh",
           "save_arrays", "load_arrays", "CorruptIndexError"]

_FORMAT_VERSION = 2
_MANIFEST = "__manifest__"


def _crc32(array):
    """CRC32 of an array's raw bytes (C-contiguous view)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def _build_manifest(kind, arrays):
    """Embed per-array checksums + metadata as a uint8 JSON blob."""
    entries = {
        name: {
            "crc32": _crc32(np.asarray(value)),
            "dtype": str(np.asarray(value).dtype),
            "shape": list(np.asarray(value).shape),
        }
        for name, value in arrays.items()
    }
    manifest = {
        "format_version": _FORMAT_VERSION,
        "kind": kind,
        "arrays": entries,
    }
    payload = json.dumps(manifest, sort_keys=True).encode("utf-8")
    return np.frombuffer(payload, dtype=np.uint8)


def _atomic_save(path, arrays):
    """Write ``arrays`` as an npz at ``path`` via tempfile + atomic rename.

    Mirrors ``np.savez``'s convention of appending ``.npz`` to paths that
    lack the suffix. Returns the final path actually written.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    dest_dir = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=dest_dir, prefix=".index-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    dir_fd = os.open(dest_dir, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def _save_index(path, kind, arrays):
    """Stamp version/kind, attach the manifest, and save atomically."""
    arrays = dict(arrays)
    arrays["format_version"] = _FORMAT_VERSION
    arrays["kind"] = kind
    arrays[_MANIFEST] = _build_manifest(kind, arrays)
    return _atomic_save(path, arrays)


def _read_member(blob, path, name):
    """Decode one npz member, mapping failures to CorruptIndexError."""
    try:
        return blob[name]
    except KeyError:
        raise CorruptIndexError(path, name, "array is missing") from None
    except Exception as exc:  # truncated/undecodable zip member
        raise CorruptIndexError(path, name, f"undecodable: {exc}") from exc


def _load_verified(path, expected_kind):
    """Open, verify and return ``{name: array}`` for a v2 index file.

    Verification order: container readability, manifest, format version,
    kind, then per-array dtype/shape/CRC32. The first disagreement raises
    :class:`CorruptIndexError` naming the failing section; a missing file
    propagates as ``FileNotFoundError`` (absence is not corruption).
    """
    try:
        blob = np.load(os.fspath(path))
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CorruptIndexError(path, "container",
                                f"unreadable npz: {exc}") from exc
    with blob:
        if _MANIFEST not in blob.files:
            if "format_version" in blob.files:
                version = int(_read_member(blob, path, "format_version"))
                raise CorruptIndexError(
                    path, "format_version",
                    f"unsupported index file version {version} "
                    f"(expected {_FORMAT_VERSION})",
                )
            raise CorruptIndexError(path, "manifest",
                                    "no __manifest__ member")
        try:
            raw = _read_member(blob, path, _MANIFEST)
            manifest = json.loads(bytes(bytearray(raw)).decode("utf-8"))
            version = int(manifest["format_version"])
            kind = str(manifest["kind"])
            entries = dict(manifest["arrays"])
        except CorruptIndexError:
            raise
        except Exception as exc:
            raise CorruptIndexError(path, "manifest",
                                    f"unparsable manifest: {exc}") from exc
        if version != _FORMAT_VERSION:
            raise CorruptIndexError(
                path, "format_version",
                f"unsupported index file version {version} "
                f"(expected {_FORMAT_VERSION})",
            )
        stored_version = int(_read_member(blob, path, "format_version"))
        if stored_version != version:
            raise CorruptIndexError(
                path, "format_version",
                f"stored version {stored_version} does not match "
                f"manifest version {version}",
            )
        if kind != expected_kind:
            raise CorruptIndexError(
                path, "kind",
                f"file holds a {kind!r} index, expected {expected_kind!r}",
            )
        arrays = {}
        for name, meta in sorted(entries.items()):
            array = _read_member(blob, path, name)
            if str(array.dtype) != meta["dtype"]:
                raise CorruptIndexError(
                    path, name,
                    f"dtype {array.dtype} != recorded {meta['dtype']}",
                )
            if list(array.shape) != list(meta["shape"]):
                raise CorruptIndexError(
                    path, name,
                    f"shape {list(array.shape)} != recorded {meta['shape']}",
                )
            if _crc32(array) != int(meta["crc32"]):
                raise CorruptIndexError(
                    path, name, "CRC32 checksum mismatch")
            arrays[name] = array
    return arrays


def save_arrays(path, kind, arrays):
    """Save a verified v2 array container of the given ``kind``.

    The checkpoint section of the persistence format: the same atomic
    write (tempfile + fsync + ``os.replace`` + directory fsync) and the
    same embedded CRC32/dtype/shape manifest as the index savers, but for
    an arbitrary ``{name: array}`` mapping. :mod:`repro.durability` uses
    this for :class:`~repro.durability.DurableUpdatableC2LSH` checkpoint
    snapshots; ``kind`` is recorded in the manifest and re-checked by
    :func:`load_arrays` so containers cannot be confused across callers.
    Returns the path written (``.npz`` appended when missing).
    """
    return _save_index(path, str(kind), arrays)


def load_arrays(path, kind):
    """Load and verify a container written by :func:`save_arrays`.

    Every array is checked against its recorded CRC32/dtype/shape and the
    stored ``kind`` must match; any disagreement raises
    :class:`CorruptIndexError` naming the damaged section. Returns the
    ``{name: array}`` mapping.
    """
    return _load_verified(path, str(kind))


def save_c2lsh(index, path):
    """Persist a fitted :class:`C2LSH` index to ``path`` (``.npz``).

    The write is atomic: a crash mid-save leaves any existing file at
    ``path`` intact. Returns the path written (``.npz`` appended when
    missing, matching ``np.savez``).
    """
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index")
    if not isinstance(index._family, PStableFamily):
        raise TypeError(
            "only indexes over the default PStableFamily can be saved, "
            f"got {type(index._family).__name__}"
        )
    p = index.params
    return _save_index(path, "c2lsh", {
        "data": index._data,
        "projections": index._funcs._projections,
        "offsets": index._funcs._offsets,
        "funcs_w": index._funcs.w,
        "family_w": index._family.w,
        "scale": index._scale,
        "params": np.array([p.n, p.c, p.w, p.p1, p.p2, p.alpha, p.m, p.l,
                            p.beta, p.delta]),
        "incremental": index._incremental,
        "use_t1": index._use_t1,
    })


def load_c2lsh(path, page_manager=None):
    """Load an index previously written by :func:`save_c2lsh`.

    Every array is verified against its recorded CRC32/dtype/shape;
    damage raises :class:`CorruptIndexError` naming the bad section.
    ``page_manager`` may be supplied to re-enable I/O accounting (the
    rebuild of the hash tables is charged as index writes, as on a fresh
    ``fit``).
    """
    blob = _load_verified(path, "c2lsh")
    data = blob["data"]
    projections = blob["projections"]
    offsets = blob["offsets"]
    funcs_w = float(blob["funcs_w"])
    family_w = float(blob["family_w"])
    scale = float(blob["scale"])
    raw = blob["params"]
    incremental = bool(blob["incremental"])
    use_t1 = bool(blob["use_t1"])

    params = C2LSHParams(
        n=int(raw[0]), c=int(raw[1]), w=float(raw[2]), p1=float(raw[3]),
        p2=float(raw[4]), alpha=float(raw[5]), m=int(raw[6]), l=int(raw[7]),
        beta=float(raw[8]), delta=float(raw[9]),
    )
    index = C2LSH(c=params.c, page_manager=page_manager,
                  base_radius=scale, incremental=incremental,
                  use_t1=use_t1)
    index._family = PStableFamily(data.shape[1], w=family_w)
    index._scale = scale
    index.params = params
    index._data = np.ascontiguousarray(data)
    index._funcs = PStableFunctions(projections, offsets, funcs_w)
    bucket_ids = index._funcs.hash(index._hash_view(index._data))
    index._counter = CollisionCounter(bucket_ids, page_manager)
    index._datafile = DataFile(index._data, page_manager)
    return index


def save_qalsh(index, path):
    """Persist a fitted :class:`repro.core.qalsh.QALSH` index (``.npz``).

    Atomic and checksummed exactly like :func:`save_c2lsh`.
    """
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index")
    return _save_index(path, "qalsh", {
        "data": index._data,
        "projections": index._funcs._projections,
        "offsets": index._funcs._offsets,
        "funcs_w": index._funcs.w,
        "scale": index._scale,
        "scalars": np.array([index.c, index.w, index.p1, index.p2,
                             index.alpha, index.m, index.l, index.beta,
                             index.delta]),
    })


def load_qalsh(path, page_manager=None):
    """Load an index previously written by :func:`save_qalsh`.

    Verified like :func:`load_c2lsh`; damage raises
    :class:`CorruptIndexError`.
    """
    from .qalsh import QALSH

    blob = _load_verified(path, "qalsh")
    data = np.ascontiguousarray(blob["data"])
    projections = blob["projections"]
    offsets = blob["offsets"]
    funcs_w = float(blob["funcs_w"])
    scale = float(blob["scale"])
    raw = blob["scalars"]

    index = QALSH(c=float(raw[0]), w=float(raw[1]), beta=float(raw[7]),
                  delta=float(raw[8]), page_manager=page_manager,
                  base_radius=scale)
    index.p1, index.p2 = float(raw[2]), float(raw[3])
    index.alpha = float(raw[4])
    index.m, index.l = int(raw[5]), int(raw[6])
    index.beta = float(raw[7])
    index._scale = scale
    index._data = data
    index._funcs = PStableFunctions(projections, offsets, funcs_w)
    proj = index._funcs.project(data / scale)
    index._order = np.argsort(proj, axis=0).T.copy()
    index._sorted_proj = np.take_along_axis(
        proj, index._order.T, axis=0
    ).T.copy()
    if page_manager is not None:
        index._object_pages = max(
            1, page_manager.pages_for(1, data.shape[1] * 8))
        page_manager.charge_write(
            index.m * page_manager.pages_for(data.shape[0], 12)
            + page_manager.pages_for(data.shape[0], data.shape[1] * 8)
        )
    return index
