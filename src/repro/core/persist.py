"""Save/load fitted C2LSH and QALSH indexes.

A C2LSH index is fully determined by its data, its sampled hash functions
(projection matrix, offsets, bucket width), its parameters and its distance
unit, so persistence is one compressed ``.npz`` file. The sorted hash
tables are rebuilt on load (an ``O(n m log n)`` argsort — cheaper to redo
than to store, and bit-identical because hashing is deterministic).

Only the default Euclidean (p-stable) family is supported; custom-family
indexes carry user callables that have no stable serialized form.
"""

from __future__ import annotations

import numpy as np

from ..hashing.pstable import PStableFamily, PStableFunctions
from ..storage.datafile import DataFile
from .c2lsh import C2LSH
from .counting import CollisionCounter
from .params import C2LSHParams

__all__ = ["save_c2lsh", "load_c2lsh", "save_qalsh", "load_qalsh"]

_FORMAT_VERSION = 1


def save_c2lsh(index, path):
    """Persist a fitted :class:`C2LSH` index to ``path`` (``.npz``)."""
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index")
    if not isinstance(index._family, PStableFamily):
        raise TypeError(
            "only indexes over the default PStableFamily can be saved, "
            f"got {type(index._family).__name__}"
        )
    p = index.params
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        kind="c2lsh",
        data=index._data,
        projections=index._funcs._projections,
        offsets=index._funcs._offsets,
        funcs_w=index._funcs.w,
        family_w=index._family.w,
        scale=index._scale,
        params=np.array([p.n, p.c, p.w, p.p1, p.p2, p.alpha, p.m, p.l,
                         p.beta, p.delta]),
        incremental=index._incremental,
        use_t1=index._use_t1,
    )


def load_c2lsh(path, page_manager=None):
    """Load an index previously written by :func:`save_c2lsh`.

    ``page_manager`` may be supplied to re-enable I/O accounting (the
    rebuild of the hash tables is charged as index writes, as on a fresh
    ``fit``).
    """
    with np.load(path) as blob:
        version = int(blob["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        if "kind" in blob and str(blob["kind"]) != "c2lsh":
            raise ValueError("file does not hold a C2LSH index")
        data = blob["data"]
        projections = blob["projections"]
        offsets = blob["offsets"]
        funcs_w = float(blob["funcs_w"])
        family_w = float(blob["family_w"])
        scale = float(blob["scale"])
        raw = blob["params"]
        incremental = bool(blob["incremental"])
        use_t1 = bool(blob["use_t1"])

    params = C2LSHParams(
        n=int(raw[0]), c=int(raw[1]), w=float(raw[2]), p1=float(raw[3]),
        p2=float(raw[4]), alpha=float(raw[5]), m=int(raw[6]), l=int(raw[7]),
        beta=float(raw[8]), delta=float(raw[9]),
    )
    index = C2LSH(c=params.c, page_manager=page_manager,
                  base_radius=scale, incremental=incremental,
                  use_t1=use_t1)
    index._family = PStableFamily(data.shape[1], w=family_w)
    index._scale = scale
    index.params = params
    index._data = np.ascontiguousarray(data)
    index._funcs = PStableFunctions(projections, offsets, funcs_w)
    bucket_ids = index._funcs.hash(index._hash_view(index._data))
    index._counter = CollisionCounter(bucket_ids, page_manager)
    index._datafile = DataFile(index._data, page_manager)
    return index


def save_qalsh(index, path):
    """Persist a fitted :class:`repro.core.qalsh.QALSH` index (``.npz``)."""
    if not index.is_fitted:
        raise ValueError("cannot save an unfitted index")
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        kind="qalsh",
        data=index._data,
        projections=index._funcs._projections,
        offsets=index._funcs._offsets,
        funcs_w=index._funcs.w,
        scale=index._scale,
        scalars=np.array([index.c, index.w, index.p1, index.p2,
                          index.alpha, index.m, index.l, index.beta,
                          index.delta]),
    )


def load_qalsh(path, page_manager=None):
    """Load an index previously written by :func:`save_qalsh`."""
    from .qalsh import QALSH

    with np.load(path) as blob:
        version = int(blob["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        if "kind" not in blob or str(blob["kind"]) != "qalsh":
            raise ValueError("file does not hold a QALSH index")
        data = np.ascontiguousarray(blob["data"])
        projections = blob["projections"]
        offsets = blob["offsets"]
        funcs_w = float(blob["funcs_w"])
        scale = float(blob["scale"])
        raw = blob["scalars"]

    index = QALSH(c=float(raw[0]), w=float(raw[1]), beta=float(raw[7]),
                  delta=float(raw[8]), page_manager=page_manager,
                  base_radius=scale)
    index.p1, index.p2 = float(raw[2]), float(raw[3])
    index.alpha = float(raw[4])
    index.m, index.l = int(raw[5]), int(raw[6])
    index.beta = float(raw[7])
    index._scale = scale
    index._data = data
    index._funcs = PStableFunctions(projections, offsets, funcs_w)
    proj = index._funcs.project(data / scale)
    index._order = np.argsort(proj, axis=0).T.copy()
    index._sorted_proj = np.take_along_axis(
        proj, index._order.T, axis=0
    ).T.copy()
    if page_manager is not None:
        index._object_pages = max(
            1, page_manager.pages_for(1, data.shape[1] * 8))
        page_manager.charge_write(
            index.m * page_manager.pages_for(data.shape[0], 12)
            + page_manager.pages_for(data.shape[0], data.shape[1] * 8)
        )
    return index
