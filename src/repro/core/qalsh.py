"""QALSH: query-aware dynamic collision counting (extension module).

QALSH (Huang et al., PVLDB 2015) is the published successor of C2LSH's
framework: instead of pre-quantized buckets ``floor((a.o + b)/w)``, it keeps
the *raw* projections ``a.o`` sorted, and at search radius ``R`` counts a
collision for object ``o`` under function ``a`` iff::

    |a.o - a.q| <= w * R / 2

i.e. the bucket is always centered on the query ("query-aware"). This
removes the boundary effect of static buckets. The collision probability at
distance ``s`` and radius ``R`` is ``2*Phi(w*R/(2*s)) - 1``, which depends
only on ``s/R`` — so, exactly as in C2LSH, one ``(m, l)`` pair is valid at
every radius of the grid ``{1, c, c^2, ...}``.

This module is an **extension** beyond the 2012 paper (DESIGN.md §3 item 6);
the ablation benchmark compares it against C2LSH under the identical cost
model.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.special import ndtr

from .. import kernels
from ..hashing.pstable import PStableFamily
from ..kernels import row_searchsorted
from ..obs import trace
from ..storage.hashfile import ENTRY_BYTES
from ..validation import as_data_matrix, as_query_matrix, as_query_vector
from .scaling import resolve_base_radius
from .params import optimal_alpha, required_m
from .results import QueryResult, QueryStats

__all__ = ["QALSH", "qalsh_collision_probability", "qalsh_optimal_w"]

_MAX_ROUNDS = 64


def qalsh_collision_probability(s, w, radius=1.0):
    """P[|a.(o-q)| <= w*radius/2] for points at Euclidean distance ``s``."""
    if w <= 0 or radius <= 0:
        raise ValueError("w and radius must be positive")
    s_arr = np.asarray(s, dtype=np.float64)
    if np.any(s_arr < 0):
        raise ValueError("distances must be non-negative")
    scalar = s_arr.ndim == 0
    s_arr = np.atleast_1d(s_arr)
    p = np.ones_like(s_arr)
    positive = s_arr > 0
    t = (w * radius / 2.0) / s_arr[positive]
    p[positive] = 2.0 * ndtr(t) - 1.0
    if scalar:
        return float(p[0])
    return p


def qalsh_optimal_w(c):
    """QALSH's rho-minimizing bucket width ``sqrt(8 c^2 ln c / (c^2 - 1))``."""
    if c <= 1:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")
    return math.sqrt(8.0 * c * c * math.log(c) / (c * c - 1.0))


class QALSH:
    """Query-aware LSH index with dynamic collision counting.

    Accepts the same tuning knobs as :class:`repro.core.c2lsh.C2LSH`, but
    ``c`` may be any real number greater than 1 (query-centered windows need
    no integer bucket merging).
    """

    def __init__(self, c=2.0, w=None, beta=None, delta=0.01, alpha=None,
                 m=None, seed=None, rng=None, page_manager=None,
                 base_radius="auto"):
        if c <= 1:
            raise ValueError(f"approximation ratio c must exceed 1, got {c}")
        self.c = float(c)
        self.w = float(w) if w is not None else qalsh_optimal_w(self.c)
        self._beta = beta
        self._delta = float(delta)
        self._alpha_override = alpha
        self._m_override = m
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._pm = page_manager
        self._base_radius = base_radius
        self._scale = 1.0

        self._data = None
        self._funcs = None
        self._order = None       # (m, n) argsort per projection
        self._sorted_proj = None  # (m, n) sorted projections
        self._object_pages = 1

        self.p1 = qalsh_collision_probability(1.0, self.w)
        self.p2 = qalsh_collision_probability(self.c, self.w)
        self.alpha = None
        self.m = None
        self.l = None
        self.beta = None
        self.delta = self._delta

    def fit(self, data):
        """Build sorted projection files over ``data``; returns self."""
        data = as_data_matrix(data)
        n, dim = data.shape
        self.beta = self._beta if self._beta is not None else min(100.0 / n, 0.5)
        self.alpha = (self._alpha_override
                      if self._alpha_override is not None
                      else optimal_alpha(self.p1, self.p2, self.beta, self._delta))
        self.m = (self._m_override
                  if self._m_override is not None
                  else required_m(self.p1, self.p2, self.alpha, self.beta,
                                  self._delta))
        self.l = int(math.ceil(self.alpha * self.m))

        self._data = data
        self._scale = resolve_base_radius(self._base_radius, data, self._rng)
        family = PStableFamily(dim, w=self.w)
        self._funcs = family.sample(self.m, self._rng)
        proj = self._funcs.project(data / self._scale)  # (n, m)
        self._order = np.argsort(proj, axis=0).T.copy()        # (m, n)
        self._sorted_proj = np.take_along_axis(
            proj, self._order.T, axis=0
        ).T.copy()                                              # (m, n)
        if self._pm is not None:
            self._object_pages = max(1, self._pm.pages_for(1, dim * 8))
            self._pm.charge_write(
                self.m * self._pm.pages_for(n, ENTRY_BYTES)
                + self._pm.pages_for(n, dim * 8),
                site="build",
            )
        return self

    @property
    def is_fitted(self):
        """Whether fit() has been called."""
        return self._data is not None

    @property
    def false_positive_budget(self):
        """Maximum tolerated false positives, ceil(beta * n)."""
        return int(math.ceil(self.beta * self._data.shape[0]))

    def index_pages(self):
        """Pages occupied by the m sorted projection files."""
        if self._pm is None:
            raise RuntimeError("index was built without a page manager")
        return self.m * self._pm.pages_for(self._data.shape[0], ENTRY_BYTES)

    def query(self, query, k=1, budget=None):
        """Answer a c-k-ANN query; returns a :class:`QueryResult`.

        ``budget`` optionally caps the query's work with a
        :class:`repro.reliability.QueryBudget`; on overrun the verified
        candidates collected so far are returned with
        ``stats.degraded = True``.
        """
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        started = time.perf_counter()
        with trace.span("query", k=int(k), index="qalsh",
                        kernels=kernels.backend_name()) as qspan:
            return self._traced_query(query, k, started, qspan, budget)

    def _traced_query(self, query, k, started, qspan, budget=None):
        """Body of :meth:`query`, run inside its ``"query"`` span."""
        n, dim = self._data.shape
        query = as_query_vector(query, dim)
        with trace.span("hash"):
            centers = self._funcs.project(query / self._scale)  # (m,)
        target = min(n, k + self.false_positive_budget)
        snapshot = self._pm.snapshot() if self._pm is not None else None
        tracker = budget.start(self._pm, started) \
            if budget is not None else None

        counts = np.zeros(n, dtype=np.int32)
        lo = np.zeros(self.m, dtype=np.int64)
        hi = np.zeros(self.m, dtype=np.int64)
        is_candidate = np.zeros(n, dtype=bool)
        cand_ids, cand_dists = [], []
        n_candidates = 0
        stats = QueryStats()

        radius = 1.0
        opened = False
        while True:
            with trace.span("count_round", radius=int(radius)):
                half = self.w * radius / 2.0
                lo_new = row_searchsorted(self._sorted_proj, centers - half,
                                          side="left")
                hi_new = row_searchsorted(self._sorted_proj, centers + half,
                                          side="right")
                segments = []
                if opened:
                    for j in np.flatnonzero((lo_new < lo) | (hi < hi_new)):
                        if lo_new[j] < lo[j]:
                            segments.append((j, int(lo_new[j]), int(lo[j])))
                        if hi[j] < hi_new[j]:
                            segments.append((j, int(hi[j]), int(hi_new[j])))
                else:
                    segments = [(j, int(lo_new[j]), int(hi_new[j]))
                                for j in range(self.m)]
                touched = [self._order[j, a:b]
                           for j, a, b in segments if b > a]
                if self._pm is not None and touched:
                    self._pm.charge_bucket_scans(
                        [b - a for _, a, b in segments if b > a], ENTRY_BYTES
                    )
                lo, hi = lo_new, hi_new
                opened = True
                stats.rounds += 1
                stats.final_radius = int(radius)

                fresh = np.empty(0, dtype=np.int64)
                if touched:
                    touched = np.concatenate(touched)
                    stats.scanned_entries += int(touched.size)
                    delta = kernels.bincount_i32(touched, n)
                    counts += delta
                    fresh = np.flatnonzero(
                        (counts >= self.l) & (counts - delta < self.l)
                    )
                    fresh = fresh[~is_candidate[fresh]]
            if fresh.size:
                with trace.span("verify", count=int(fresh.size)):
                    dists = self._verify(fresh, query)
                is_candidate[fresh] = True
                cand_ids.append(fresh)
                cand_dists.append(dists)
                n_candidates += fresh.size

            if n_candidates >= target:
                stats.terminated_by = "T2"
                break
            if n_candidates >= k:
                threshold = self.c * radius * self._scale
                within = sum(
                    int(np.count_nonzero(d <= threshold))
                    for d in cand_dists
                )
                if within >= k:
                    stats.terminated_by = "T1"
                    break
            exhausted = bool(np.all(lo == 0) and np.all(hi == n))
            if exhausted or stats.rounds >= _MAX_ROUNDS:
                stats.terminated_by = "exhausted"
                break
            if tracker is not None:
                tripped = tracker.exceeded(n_candidates)
                if tripped:
                    stats.terminated_by = "budget"
                    stats.degraded = True
                    stats.budget_exhausted = tripped
                    break
            radius *= self.c

        if n_candidates < k:
            remaining = np.flatnonzero(~is_candidate)
            if remaining.size:
                order = np.argsort(-counts[remaining], kind="stable")
                need = min(k - n_candidates + self.false_positive_budget,
                           remaining.size)
                extra = remaining[order[:need]]
                cand_ids.append(extra)
                with trace.span("verify", count=int(extra.size),
                                fallback=True):
                    cand_dists.append(self._verify(extra, query))
                n_candidates += extra.size
                if not stats.degraded:
                    stats.terminated_by = "fallback"

        stats.candidates = n_candidates
        if snapshot is not None:
            delta_io = self._pm.since(snapshot)
            stats.io_reads = delta_io.reads
            stats.io_writes = delta_io.writes
        stats.elapsed_s = time.perf_counter() - started
        qspan.set(rounds=stats.rounds, final_radius=stats.final_radius,
                  candidates=stats.candidates,
                  scanned_entries=stats.scanned_entries,
                  io_reads=stats.io_reads, io_writes=stats.io_writes,
                  terminated_by=stats.terminated_by,
                  elapsed_s=stats.elapsed_s, degraded=stats.degraded)

        ids = np.concatenate(cand_ids) if cand_ids else np.empty(0, np.int64)
        dists = np.concatenate(cand_dists) if cand_dists else np.empty(0)
        return QueryResult.from_candidates(ids, dists, k, stats)

    def query_batch(self, queries, k=1, budget=None):
        """Answer many queries; returns a list of QueryResult."""
        if not self.is_fitted:
            raise RuntimeError("index is not fitted; call fit(data) first")
        queries = as_query_matrix(queries, self._data.shape[1])
        return [self.query(q, k=k, budget=budget) for q in queries]

    def _verify(self, ids, query):
        if self._pm is not None:
            self._pm.charge_read(self._object_pages * ids.size,
                                 site="data_read")
        vectors = self._data[ids]
        if self._pm is not None and self._pm.fault_injector is not None \
                and ids.size:
            vectors = self._pm.fault_injector.corrupt("data_read", vectors)
        diff = vectors - query
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def __repr__(self):
        if not self.is_fitted:
            return f"QALSH(c={self.c}, unfitted)"
        return (f"QALSH(n={self._data.shape[0]}, dim={self._data.shape[1]}, "
                f"m={self.m}, l={self.l}, c={self.c})")
