"""Result and statistics containers shared by all indexes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryStats", "QueryResult"]


@dataclass
class QueryStats:
    """Work performed to answer one query.

    Attributes
    ----------
    rounds:
        Radius-expansion rounds executed (C2LSH/QALSH) or probe rounds.
    final_radius:
        Search radius at termination (0 when radii do not apply).
    candidates:
        Number of objects whose true distance was computed.
    scanned_entries:
        Hash-table / leaf entries read while counting or sweeping.
    io_reads / io_writes:
        Page I/O charged during the query (0 in pure in-memory mode).
    terminated_by:
        Which rule stopped the search: ``"T1"``, ``"T2"``, ``"exhausted"``,
        ``"budget"`` or an index-specific label.
    elapsed_s:
        Wall-clock seconds from the query entering the engine until its
        result was final. The sequential path times each call; the batch
        engine stamps each query when it terminates, so the value is the
        query's observed latency inside its batch (not a per-query share
        of the batch total).
    degraded:
        True when the result is best-effort rather than a full search:
        a :class:`repro.reliability.QueryBudget` cap tripped
        (``budget_exhausted`` names it), or — on the sharded engine —
        one or more shards were lost to worker failure while the query
        ran (``failed_shards`` names them). Always False for unbudgeted
        queries on healthy deployments.
    budget_exhausted:
        Which budget cap tripped (``"deadline"``, ``"io_pages"`` or
        ``"candidates"``); empty when no cap tripped.
    failed_shards:
        Shard ids whose rows could not contribute to this answer because
        their worker was dead or quarantined while the query was active
        (sharded engine, ``on_worker_failure="degrade"`` or a tripped
        circuit breaker). Empty on healthy deployments and under the
        ``"rebuild"`` policy, whose answers are never degraded.
    probes_issued / probes_skipped:
        Per-table bucket probes executed vs. avoided (adaptive probing:
        estimator-skipped start rounds plus early-exited tables; both 0
        in classic mode, which probes every table every round).
    """

    rounds: int = 0
    final_radius: int = 0
    candidates: int = 0
    scanned_entries: int = 0
    io_reads: int = 0
    io_writes: int = 0
    terminated_by: str = ""
    elapsed_s: float = 0.0
    degraded: bool = False
    budget_exhausted: str = ""
    failed_shards: tuple = ()
    probes_issued: int = 0
    probes_skipped: int = 0


@dataclass
class QueryResult:
    """Top-``k`` answer to one query, sorted by ascending distance."""

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats = field(default_factory=QueryStats)

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.distances = np.asarray(self.distances, dtype=np.float64)
        if self.ids.shape != self.distances.shape:
            raise ValueError("ids and distances must have the same shape")
        if self.distances.size > 1 and np.any(np.diff(self.distances) < 0):
            raise ValueError("result distances must be sorted ascending")

    def __len__(self):
        return self.ids.shape[0]

    @staticmethod
    def from_candidates(ids, distances, k, stats=None):
        """Select the ``k`` nearest of the verified candidates."""
        ids = np.asarray(ids, dtype=np.int64)
        distances = np.asarray(distances, dtype=np.float64)
        if ids.shape != distances.shape:
            raise ValueError("ids and distances must have the same shape")
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if ids.size > k:
            keep = np.argpartition(distances, k - 1)[:k]
            ids, distances = ids[keep], distances[keep]
        order = np.argsort(distances, kind="stable")
        return QueryResult(ids[order], distances[order],
                           stats or QueryStats())
