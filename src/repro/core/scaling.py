"""Distance-scale estimation for the radius grid.

C2LSH's radius grid ``{1, c, c^2, ...}`` presumes that nearest-neighbor
distances are on the order of 1 (the paper evaluates on integer-coordinate
feature data scaled that way). Arbitrary real-valued datasets violate this,
wasting early rounds (unit too small) or overshooting (unit too large). The
estimator below recovers the dataset's near-distance unit: indexes divide
points by it before hashing, making all distances "radius-grid units",
and multiply back when comparing true distances to ``c * R``.

This is exactly the dataset pre-scaling the original evaluation performed
offline; doing it inside the index makes the library usable on raw data.
"""

from __future__ import annotations

import numpy as np

from ..data.groundtruth import exact_knn

__all__ = ["estimate_base_radius", "resolve_base_radius"]


def estimate_base_radius(data, rng=None, sample_size=1000,
                         metric="euclidean"):
    """Median 1-NN distance of a random sample (the near-distance unit).

    Within-sample NN distances slightly overestimate the full-data ones,
    which errs on the safe side: radius 1 then covers true nearest
    neighbors. Duplicate-heavy data (median 0) falls back to the mean of
    the positive distances, then to 1.0. ``metric`` selects the distance
    the unit is measured in (any value :func:`repro.data.exact_knn`
    accepts).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 2:
        raise ValueError("need at least two points to estimate a scale")
    rng = rng if isinstance(rng, np.random.Generator) \
        else np.random.default_rng(rng)
    size = min(int(sample_size), data.shape[0])
    chosen = rng.choice(data.shape[0], size=size, replace=False)
    sample = data[chosen]
    # 2-NN within the sample: rank 0 is the point itself (distance 0).
    _, dists = exact_knn(sample, sample, k=2, metric=metric)
    nn = dists[:, 1]
    median = float(np.median(nn))
    if median > 0:
        return median
    positive = nn[nn > 0]
    if positive.size:
        return float(positive.mean())
    return 1.0


def resolve_base_radius(base_radius, data, rng=None, metric="euclidean"):
    """Turn the user-facing ``base_radius`` knob into a positive float.

    ``"auto"`` estimates from the data; a number is validated and passed
    through.
    """
    if base_radius == "auto":
        return estimate_base_radius(data, rng=rng, metric=metric)
    value = float(base_radius)
    if value <= 0:
        raise ValueError(f"base_radius must be positive, got {base_radius}")
    return value
