"""Automatic parameter tuning for a recall target.

The theory picks ``(m, l)`` for the worst case; practitioners usually want
the *cheapest* configuration reaching a recall floor on their own data.
This tuner does what every LSH paper's evaluation does offline — a small
grid search over the knobs with held-out validation queries — packaged as a
library call:

    result = tune_c2lsh(data, target_recall=0.9, k=10, seed=0)
    index = result.build_best().fit(data)

It evaluates each candidate configuration on a validation split under the
shared page-cost model and returns the cheapest configuration (by I/O per
query) that reaches the target, along with the full trial log for
inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.generators import split_queries
from ..data.groundtruth import exact_knn
from ..eval.metrics import evaluate_results
from ..storage.pages import PageManager
from .c2lsh import C2LSH

__all__ = ["TrialResult", "TuningResult", "tune_c2lsh"]


@dataclass
class TrialResult:
    """One evaluated configuration."""

    config: dict
    recall: float
    ratio: float
    io_reads: float
    candidates: float

    @property
    def cost(self):
        """The quantity minimized when picking the winner (I/O per query)."""
        return self.io_reads


@dataclass
class TuningResult:
    """Outcome of :func:`tune_c2lsh`."""

    best: TrialResult | None
    trials: list = field(default_factory=list)
    target_recall: float = 0.0
    k: int = 1

    @property
    def reached_target(self):
        """Whether any trial met the recall floor."""
        return self.best is not None

    def build_best(self, **extra):
        """A fresh (unfitted) index with the winning configuration.

        Keyword overrides (e.g. ``page_manager=...``) are merged in. Raises
        if no configuration reached the target — callers should fall back
        to the theory defaults in that case.
        """
        if self.best is None:
            raise RuntimeError(
                f"no configuration reached recall {self.target_recall}; "
                "fall back to C2LSH() theory defaults"
            )
        config = dict(self.best.config)
        config.update(extra)
        return C2LSH(**config)


def tune_c2lsh(data, target_recall=0.9, k=10, n_validation=30,
               c_grid=(2, 3), budget_grid=(25, 100, 400), seed=0,
               probe=None):
    """Grid-search C2LSH's knobs for the cheapest recall-reaching config.

    Parameters
    ----------
    data:
        The full dataset; ``n_validation`` rows are held out as validation
        queries (the returned factory should be fit on the *full* data).
    target_recall:
        Recall floor in ``(0, 1]``.
    k:
        Neighbors per query the target refers to.
    c_grid, budget_grid:
        Approximation ratios and false-positive budgets (absolute counts,
        converted to ``beta``) to try.
    seed:
        Controls the validation split and the trial indexes.
    probe:
        Probing mode used to evaluate every trial (as for
        :meth:`~repro.core.c2lsh.C2LSH.query_batch`). Tune with the mode
        you will serve with: ``"adaptive"`` trials report the adaptive
        I/O bill, so the cheapest-config choice reflects it.

    Returns
    -------
    TuningResult
        ``best`` is the cheapest trial meeting the floor (or None);
        ``trials`` holds every evaluated configuration.
    """
    if not (0.0 < target_recall <= 1.0):
        raise ValueError(
            f"target_recall must lie in (0, 1], got {target_recall}"
        )
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] <= n_validation:
        raise ValueError(
            "data must be a (n, dim) matrix with n > n_validation"
        )
    train, validation = split_queries(data, n_validation, seed=seed)
    true_ids, true_dists = exact_knn(train, validation, k)

    trials = []
    for c in c_grid:
        for budget in budget_grid:
            beta = min(budget / train.shape[0], 0.9)
            config = dict(c=int(c), beta=beta, seed=seed)
            index = C2LSH(page_manager=PageManager(), **config).fit(train)
            results = index.query_batch(validation, k=k, probe=probe)
            summary = evaluate_results(results, true_ids, true_dists, k)
            trials.append(TrialResult(
                config=config,
                recall=summary.recall,
                ratio=summary.ratio,
                io_reads=summary.io_reads,
                candidates=summary.candidates,
            ))

    eligible = [t for t in trials if t.recall >= target_recall]
    best = min(eligible, key=lambda t: t.cost) if eligible else None
    return TuningResult(best=best, trials=trials,
                        target_recall=target_recall, k=k)
