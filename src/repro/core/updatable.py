"""Updatable wrapper over the static C2LSH index.

C2LSH's sorted bucket files are bulk-built and immutable — the standard
trade-off for external-memory range scans. Real deployments still need
inserts and deletes, and the classical answer is the one implemented here
(a small LSM-style split):

* **inserts** accumulate in an exactly-searched side buffer; a query merges
  the main index's answer with a linear scan of the buffer (the buffer is
  small, so the scan is one or two pages);
* **deletes** go into a tombstone set filtered out of every answer;
* when the buffer outgrows ``rebuild_threshold`` (a fraction of the indexed
  size), the wrapper rebuilds the main index over the live points —
  amortized O(polylog) per update for any constant fraction.

Ids are stable handles assigned at insert time and never reused, so callers
can keep external references across rebuilds.
"""

from __future__ import annotations

import numpy as np

from .c2lsh import C2LSH
from .results import QueryResult, QueryStats

__all__ = ["UpdatableC2LSH"]


class UpdatableC2LSH:
    """Insert/delete-capable facade over :class:`C2LSH`.

    Parameters
    ----------
    rebuild_threshold:
        Rebuild when the side buffer exceeds this fraction of the indexed
        point count (default 0.2).
    min_index_size:
        Below this many live points everything stays in the buffer
        (brute force) — too little data for LSH parameters to make sense.
    **c2lsh_kwargs:
        Forwarded to every :class:`C2LSH` (re)build, e.g. ``c=2, seed=0``.
    """

    def __init__(self, rebuild_threshold=0.2, min_index_size=200,
                 **c2lsh_kwargs):
        if not (0.0 < rebuild_threshold <= 1.0):
            raise ValueError(
                f"rebuild_threshold must lie in (0, 1], got {rebuild_threshold}"
            )
        if min_index_size < 1:
            raise ValueError(
                f"min_index_size must be positive, got {min_index_size}"
            )
        self.rebuild_threshold = float(rebuild_threshold)
        self.min_index_size = int(min_index_size)
        if "family" in c2lsh_kwargs:
            raise ValueError(
                "UpdatableC2LSH merges buffered points by Euclidean "
                "distance, so custom families are not supported"
            )
        self._kwargs = dict(c2lsh_kwargs)
        self._dim = None
        self._index = None          # C2LSH over _indexed rows
        self._indexed = None        # (n_idx, dim) matrix behind _index
        self._indexed_ids = np.empty(0, dtype=np.int64)
        self._buffer = []           # list of (handle, vector)
        self._deleted = set()
        self._next_id = 0
        self.rebuilds = 0

    # -- updates -------------------------------------------------------------

    def insert(self, points):
        """Insert one vector or an ``(n, dim)`` batch; returns new handles."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[np.newaxis, :]
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, dim) matrix")
        if self._dim is None:
            self._dim = points.shape[1]
        elif points.shape[1] != self._dim:
            raise ValueError(
                f"dimension mismatch: index holds {self._dim}-d points, "
                f"got {points.shape[1]}-d"
            )
        handles = np.arange(self._next_id, self._next_id + points.shape[0],
                            dtype=np.int64)
        self._next_id += points.shape[0]
        self._buffer.extend(zip(handles.tolist(), points))
        self._maybe_rebuild()
        return handles

    def delete(self, handles):
        """Tombstone one handle or an iterable of handles."""
        if np.isscalar(handles):
            handles = [handles]
        for handle in handles:
            handle = int(handle)
            if not (0 <= handle < self._next_id):
                raise KeyError(f"unknown handle {handle}")
            self._deleted.add(handle)

    def __len__(self):
        """Number of live (inserted minus deleted) points."""
        live_buffer = sum(1 for h, _ in self._buffer
                          if h not in self._deleted)
        live_indexed = int(np.count_nonzero(
            ~np.isin(self._indexed_ids, list(self._deleted))
        )) if self._indexed_ids.size else 0
        return live_buffer + live_indexed

    def _maybe_rebuild(self):
        indexed = self._indexed_ids.size
        buffered = len(self._buffer)
        if indexed + buffered < self.min_index_size:
            return
        if buffered <= self.rebuild_threshold * max(indexed, 1):
            return
        self._rebuild()

    def _rebuild(self):
        rows = []
        handles = []
        if self._indexed is not None:
            for handle, row in zip(self._indexed_ids, self._indexed):
                if int(handle) not in self._deleted:
                    rows.append(row)
                    handles.append(int(handle))
        for handle, row in self._buffer:
            if handle not in self._deleted:
                rows.append(row)
                handles.append(handle)
        self._buffer = []
        self._deleted = set()
        if not rows:
            self._index = None
            self._indexed = None
            self._indexed_ids = np.empty(0, dtype=np.int64)
            return
        self._indexed = np.vstack(rows)
        self._indexed_ids = np.asarray(handles, dtype=np.int64)
        self._index = C2LSH(**self._kwargs).fit(self._indexed)
        self.rebuilds += 1

    # -- queries -------------------------------------------------------------

    def query(self, query, k=1):
        """c-k-ANN over the live points; ids are insert-time handles."""
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if self._dim is None:
            raise RuntimeError("index is empty; insert points first")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self._dim,):
            raise ValueError(f"query must have shape ({self._dim},)")

        ids = []
        dists = []
        stats = QueryStats(terminated_by="merged")
        if self._index is not None:
            main = self._index.query(query, k=k + len(self._deleted))
            handles = self._indexed_ids[main.ids]
            live = ~np.isin(handles, list(self._deleted)) \
                if self._deleted else np.ones(handles.size, dtype=bool)
            ids.append(handles[live])
            dists.append(main.distances[live])
            stats = main.stats
        live_buffer = [(h, row) for h, row in self._buffer
                       if h not in self._deleted]
        if live_buffer:
            buf_handles = np.array([h for h, _ in live_buffer],
                                   dtype=np.int64)
            buf_rows = np.vstack([row for _, row in live_buffer])
            diff = buf_rows - query
            ids.append(buf_handles)
            dists.append(np.sqrt(np.einsum("ij,ij->i", diff, diff)))
            stats.candidates += len(live_buffer)
        if not ids:
            raise RuntimeError("index is empty; insert points first")
        return QueryResult.from_candidates(
            np.concatenate(ids), np.concatenate(dists), k, stats
        )

    def __repr__(self):
        return (f"UpdatableC2LSH(live={len(self)}, "
                f"indexed={self._indexed_ids.size}, "
                f"buffered={len(self._buffer)}, rebuilds={self.rebuilds})")
