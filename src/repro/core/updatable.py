"""Updatable wrapper over the static C2LSH index.

C2LSH's sorted bucket files are bulk-built and immutable — the standard
trade-off for external-memory range scans. Real deployments still need
inserts and deletes, and the classical answer is the one implemented here
(a small LSM-style split):

* **inserts** accumulate in an exactly-searched side buffer; a query merges
  the main index's answer with a linear scan of the buffer (the buffer is
  small, so the scan is one or two pages);
* **deletes** go into a tombstone set filtered out of every answer;
* when the buffer outgrows ``rebuild_threshold`` (a fraction of the indexed
  size), the wrapper rebuilds the main index over the live points —
  amortized O(polylog) per update for any constant fraction.

Ids are stable handles assigned at insert time and never reused, so callers
can keep external references across rebuilds.

Everything here lives in RAM; for crash safety wrap the index in
:class:`repro.durability.DurableUpdatableC2LSH`, which write-ahead-logs
every update and checkpoints snapshots through :mod:`repro.core.persist`.
"""

from __future__ import annotations

import numpy as np

from .c2lsh import C2LSH
from .results import QueryResult, QueryStats

__all__ = ["UpdatableC2LSH"]


class UpdatableC2LSH:
    """Insert/delete-capable facade over :class:`C2LSH`.

    Parameters
    ----------
    rebuild_threshold:
        Rebuild when the side buffer exceeds this fraction of the indexed
        point count (default 0.2).
    min_index_size:
        Below this many live points everything stays in the buffer
        (brute force) — too little data for LSH parameters to make sense.
    **c2lsh_kwargs:
        Forwarded to every :class:`C2LSH` (re)build, e.g. ``c=2, seed=0``.
    """

    def __init__(self, rebuild_threshold=0.2, min_index_size=200,
                 **c2lsh_kwargs):
        if not (0.0 < rebuild_threshold <= 1.0):
            raise ValueError(
                f"rebuild_threshold must lie in (0, 1], got {rebuild_threshold}"
            )
        if min_index_size < 1:
            raise ValueError(
                f"min_index_size must be positive, got {min_index_size}"
            )
        self.rebuild_threshold = float(rebuild_threshold)
        self.min_index_size = int(min_index_size)
        if "family" in c2lsh_kwargs:
            raise ValueError(
                "UpdatableC2LSH merges buffered points by Euclidean "
                "distance, so custom families are not supported"
            )
        self._kwargs = dict(c2lsh_kwargs)
        self._dim = None
        self._index = None          # C2LSH over _indexed rows
        self._indexed = None        # (n_idx, dim) matrix behind _index
        self._indexed_ids = np.empty(0, dtype=np.int64)
        self._indexed_ids_sorted = np.empty(0, dtype=np.int64)
        self._buffer = []           # list of (handle, vector)
        self._deleted = set()
        # Sorted int64 mirror of _deleted: vectorized filtering uses this
        # array directly instead of rebuilding list(self._deleted) per call.
        self._tombstones = np.empty(0, dtype=np.int64)
        self._deleted_indexed = 0   # tombstones referring to indexed rows
        self._next_id = 0
        self.rebuilds = 0

    # -- updates -------------------------------------------------------------

    def _coerce_points(self, points):
        """Validate one vector or an ``(n, dim)`` batch; returns the batch.

        Shared with :class:`repro.durability.DurableUpdatableC2LSH`, which
        must reject bad input *before* write-ahead-logging it.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[np.newaxis, :]
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, dim) matrix")
        if self._dim is not None and points.shape[1] != self._dim:
            raise ValueError(
                f"dimension mismatch: index holds {self._dim}-d points, "
                f"got {points.shape[1]}-d"
            )
        return points

    def insert(self, points):
        """Insert one vector or an ``(n, dim)`` batch; returns new handles."""
        points = self._coerce_points(points)
        if self._dim is None:
            self._dim = points.shape[1]
        handles = np.arange(self._next_id, self._next_id + points.shape[0],
                            dtype=np.int64)
        self._next_id += points.shape[0]
        self._buffer.extend(zip(handles.tolist(), points))
        self._maybe_rebuild()
        return handles

    def _coerce_handles(self, handles):
        """Validate one handle or an iterable; returns a list of ints.

        Validation happens before any mutation, so a :class:`KeyError`
        leaves the tombstone set untouched (and lets the durable facade
        refuse to log invalid deletes).
        """
        if np.isscalar(handles):
            handles = [handles]
        out = []
        for handle in handles:
            handle = int(handle)
            if not (0 <= handle < self._next_id):
                raise KeyError(f"unknown handle {handle}")
            out.append(handle)
        return out

    def delete(self, handles):
        """Tombstone one handle or an iterable of handles."""
        fresh = [h for h in self._coerce_handles(handles)
                 if h not in self._deleted]
        if not fresh:
            return
        self._deleted.update(fresh)
        fresh = np.asarray(sorted(set(fresh)), dtype=np.int64)
        self._tombstones = np.union1d(self._tombstones, fresh)
        if self._indexed_ids_sorted.size:
            pos = np.searchsorted(self._indexed_ids_sorted, fresh)
            pos = np.minimum(pos, self._indexed_ids_sorted.size - 1)
            self._deleted_indexed += int(
                np.count_nonzero(self._indexed_ids_sorted[pos] == fresh)
            )

    def __len__(self):
        """Number of live (inserted minus deleted) points."""
        live_buffer = sum(1 for h, _ in self._buffer
                          if h not in self._deleted)
        return live_buffer + self._indexed_ids.size - self._deleted_indexed

    def _maybe_rebuild(self):
        indexed = self._indexed_ids.size
        buffered = len(self._buffer)
        if indexed + buffered < self.min_index_size:
            return
        if buffered <= self.rebuild_threshold * max(indexed, 1):
            return
        self._rebuild()

    def _rebuild(self):
        rows = []
        handles = []
        if self._indexed is not None:
            for handle, row in zip(self._indexed_ids, self._indexed):
                if int(handle) not in self._deleted:
                    rows.append(row)
                    handles.append(int(handle))
        for handle, row in self._buffer:
            if handle not in self._deleted:
                rows.append(row)
                handles.append(handle)
        self._buffer = []
        self._deleted = set()
        self._tombstones = np.empty(0, dtype=np.int64)
        self._deleted_indexed = 0
        if not rows:
            self._index = None
            self._indexed = None
            self._indexed_ids = np.empty(0, dtype=np.int64)
            self._indexed_ids_sorted = np.empty(0, dtype=np.int64)
            return
        self._indexed = np.vstack(rows)
        self._indexed_ids = np.asarray(handles, dtype=np.int64)
        self._indexed_ids_sorted = np.sort(self._indexed_ids)
        self._index = C2LSH(**self._kwargs).fit(self._indexed)
        self.rebuilds += 1

    # -- queries -------------------------------------------------------------

    def query(self, query, k=1, budget=None):
        """c-k-ANN over the live points; ids are insert-time handles.

        ``budget`` optionally caps the main-index search with a
        :class:`repro.reliability.QueryBudget`; on overrun the result is
        best-effort and ``stats.degraded`` / ``stats.budget_exhausted``
        report the tripped cap. The side-buffer scan is always exact (it
        is at most one or two pages), so a degraded answer still contains
        every live buffered point.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if self._dim is None:
            raise RuntimeError("index is empty; insert points first")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self._dim,):
            raise ValueError(f"query must have shape ({self._dim},)")

        ids = []
        dists = []
        stats = QueryStats(terminated_by="merged")
        if self._index is not None:
            # Over-fetch only for tombstones that can actually displace an
            # indexed answer (buffered deletes never appear in the main
            # index), and never ask the inner index for more than it holds.
            fetch = min(self._indexed_ids.size, k + self._deleted_indexed)
            main = self._index.query(query, k=fetch, budget=budget)
            handles = self._indexed_ids[main.ids]
            live = ~np.isin(handles, self._tombstones) \
                if self._deleted_indexed else np.ones(handles.size, dtype=bool)
            ids.append(handles[live])
            dists.append(main.distances[live])
            stats = main.stats
        live_buffer = [(h, row) for h, row in self._buffer
                       if h not in self._deleted]
        if live_buffer:
            buf_handles = np.array([h for h, _ in live_buffer],
                                   dtype=np.int64)
            buf_rows = np.vstack([row for _, row in live_buffer])
            diff = buf_rows - query
            ids.append(buf_handles)
            dists.append(np.sqrt(np.einsum("ij,ij->i", diff, diff)))
            stats.candidates += len(live_buffer)
        if not ids:
            raise RuntimeError("index is empty; insert points first")
        return QueryResult.from_candidates(
            np.concatenate(ids), np.concatenate(dists), k, stats
        )

    def __repr__(self):
        return (f"UpdatableC2LSH(live={len(self)}, "
                f"indexed={self._indexed_ids.size}, "
                f"buffered={len(self._buffer)}, rebuilds={self.rebuilds})")
