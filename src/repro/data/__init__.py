"""Datasets: synthetic generators, paper-profile substitutes, formats, ground truth."""

from .generators import (
    as_rng,
    binary_vectors,
    correlated_gaussian,
    gaussian_clusters,
    histogram_vectors,
    planted_queries,
    sparse_nonnegative,
    split_queries,
    uniform_hypercube,
)
from .groundtruth import exact_knn, pairwise_euclidean
from .io import read_fvecs, read_ivecs, write_fvecs, write_ivecs
from .profiles import (
    PROFILES,
    Dataset,
    aerial_like,
    color_like,
    load_profile,
    mnist_like,
    nus_like,
)

__all__ = [
    "as_rng",
    "gaussian_clusters",
    "correlated_gaussian",
    "uniform_hypercube",
    "binary_vectors",
    "histogram_vectors",
    "sparse_nonnegative",
    "planted_queries",
    "split_queries",
    "exact_knn",
    "pairwise_euclidean",
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
    "Dataset",
    "mnist_like",
    "color_like",
    "aerial_like",
    "nus_like",
    "PROFILES",
    "load_profile",
]
