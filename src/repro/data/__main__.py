"""Dataset CLI: generate profile datasets and exact ground truth as files.

Exports the synthetic profiles (and their held-out queries / exact k-NN)
in the ecosystem-standard fvecs/ivecs formats so they can be consumed by
external tools — or regenerated bit-identically from a seed by anyone
reproducing the experiments.

Usage::

    python -m repro.data generate mnist --scale 0.1 --out-dir datasets/
    python -m repro.data groundtruth datasets/mnist-like.base.fvecs \
        datasets/mnist-like.query.fvecs --k 100 --out datasets/mnist-like.gt
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .groundtruth import exact_knn
from .io import read_fvecs, write_fvecs, write_ivecs
from .profiles import PROFILES, load_profile

__all__ = ["main"]


def cmd_generate(args):
    dataset = load_profile(args.profile, scale=args.scale,
                           n_queries=args.queries, seed=args.seed)
    os.makedirs(args.out_dir, exist_ok=True)
    base = os.path.join(args.out_dir, dataset.name)
    write_fvecs(f"{base}.base.fvecs", dataset.data)
    write_fvecs(f"{base}.query.fvecs", dataset.queries)
    print(f"wrote {base}.base.fvecs   ({dataset.n} x {dataset.dim})")
    print(f"wrote {base}.query.fvecs  ({dataset.queries.shape[0]} x "
          f"{dataset.dim})")
    if args.k:
        ids, dists = dataset.ground_truth(args.k)
        write_ivecs(f"{base}.gt.ivecs", ids.astype(np.int32))
        write_fvecs(f"{base}.gt.fvecs", dists)
        print(f"wrote {base}.gt.ivecs / .gt.fvecs (top-{args.k} exact)")
    return 0


def cmd_groundtruth(args):
    data = read_fvecs(args.base)
    queries = read_fvecs(args.queries_file)
    ids, dists = exact_knn(data, queries, args.k, metric=args.metric)
    write_ivecs(f"{args.out}.ivecs", ids.astype(np.int32))
    write_fvecs(f"{args.out}.fvecs", dists)
    print(f"wrote {args.out}.ivecs / {args.out}.fvecs "
          f"({queries.shape[0]} queries, top-{args.k})")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.data",
        description="Generate benchmark datasets and exact ground truth.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a profile dataset to disk")
    gen.add_argument("profile", choices=sorted(PROFILES))
    gen.add_argument("--scale", type=float, default=0.1)
    gen.add_argument("--queries", type=int, default=50)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--k", type=int, default=100,
                     help="also write top-k exact ground truth (0 = skip)")
    gen.add_argument("--out-dir", default="datasets")
    gen.set_defaults(func=cmd_generate)

    gt = sub.add_parser("groundtruth",
                        help="exact k-NN for existing fvecs files")
    gt.add_argument("base", help="base vectors (.fvecs)")
    gt.add_argument("queries_file", help="query vectors (.fvecs)")
    gt.add_argument("--k", type=int, default=100)
    gt.add_argument("--metric", default="euclidean",
                    choices=["euclidean", "angular", "hamming"])
    gt.add_argument("--out", default="groundtruth")
    gt.set_defaults(func=cmd_groundtruth)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
