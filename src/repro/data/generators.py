"""Synthetic dataset generators.

The original C2LSH evaluation used real image/audio feature collections we
cannot ship; these generators produce laptop-scale substitutes with the
geometric character that matters to LSH behaviour — clustered mass, low
intrinsic dimensionality inside a higher ambient dimension, non-negative
histogram-like coordinates, or sparse bag-of-features vectors
(see DESIGN.md §5 for the substitution argument).

Every generator takes an explicit seed or ``numpy.random.Generator`` so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_rng",
    "gaussian_clusters",
    "correlated_gaussian",
    "uniform_hypercube",
    "binary_vectors",
    "histogram_vectors",
    "sparse_nonnegative",
    "planted_queries",
    "split_queries",
]


def as_rng(seed_or_rng):
    """Normalize a seed / Generator / None into a ``numpy.random.Generator``."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def _check_shape(n, dim):
    if n < 1 or dim < 1:
        raise ValueError(f"need n >= 1 and dim >= 1, got n={n}, dim={dim}")


def gaussian_clusters(n, dim, n_clusters=10, cluster_std=1.0, spread=10.0,
                      anisotropy=0.0, seed=None):
    """Mixture of Gaussian clusters, optionally anisotropic.

    ``anisotropy`` in ``[0, 1)`` shrinks the variance of later coordinates
    geometrically, lowering the intrinsic dimensionality (feature vectors of
    real images behave this way).
    """
    _check_shape(n, dim)
    if n_clusters < 1:
        raise ValueError(f"need at least one cluster, got {n_clusters}")
    if not (0.0 <= anisotropy < 1.0):
        raise ValueError(f"anisotropy must lie in [0, 1), got {anisotropy}")
    rng = as_rng(seed)
    centers = rng.uniform(-spread, spread, size=(n_clusters, dim))
    assignment = rng.integers(0, n_clusters, size=n)
    scales = cluster_std * (1.0 - anisotropy) ** np.arange(dim)
    noise = rng.standard_normal((n, dim)) * scales
    return centers[assignment] + noise


def correlated_gaussian(n, dim, decay=0.9, seed=None):
    """Zero-mean Gaussian with AR(1)-style coordinate correlation ``decay``."""
    _check_shape(n, dim)
    if not (0.0 <= decay < 1.0):
        raise ValueError(f"decay must lie in [0, 1), got {decay}")
    rng = as_rng(seed)
    data = np.empty((n, dim))
    data[:, 0] = rng.standard_normal(n)
    innovation_scale = np.sqrt(1.0 - decay * decay)
    for j in range(1, dim):
        data[:, j] = decay * data[:, j - 1] \
            + innovation_scale * rng.standard_normal(n)
    return data


def uniform_hypercube(n, dim, low=0.0, high=1.0, seed=None):
    """I.i.d. uniform coordinates — the LSH worst case (no cluster structure)."""
    _check_shape(n, dim)
    if high <= low:
        raise ValueError(f"need high > low, got [{low}, {high}]")
    rng = as_rng(seed)
    return rng.uniform(low, high, size=(n, dim))


def histogram_vectors(n, dim, concentration=0.5, scale=100.0, seed=None):
    """Non-negative rows summing to ``scale`` (color-histogram geometry).

    Drawn from a symmetric Dirichlet; small ``concentration`` makes
    histograms peaky, like real HSV color histograms.
    """
    _check_shape(n, dim)
    if concentration <= 0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    rng = as_rng(seed)
    rows = rng.dirichlet(np.full(dim, concentration), size=n)
    return rows * scale


def sparse_nonnegative(n, dim, density=0.05, value_scale=5.0, seed=None):
    """Sparse non-negative vectors (bag-of-visual-words geometry)."""
    _check_shape(n, dim)
    if not (0.0 < density <= 1.0):
        raise ValueError(f"density must lie in (0, 1], got {density}")
    rng = as_rng(seed)
    mask = rng.random((n, dim)) < density
    values = rng.exponential(value_scale, size=(n, dim))
    return np.where(mask, values, 0.0)


def binary_vectors(n, dim, ones_fraction=0.5, n_clusters=0, flip=0.05,
                   seed=None):
    """Random (optionally clustered) binary vectors for Hamming-space tests.

    With ``n_clusters > 0``, rows are noisy copies of cluster prototypes:
    each bit of the prototype flips with probability ``flip``, giving
    controlled Hamming neighborhoods.
    """
    _check_shape(n, dim)
    if not (0.0 < ones_fraction < 1.0):
        raise ValueError(
            f"ones_fraction must lie in (0, 1), got {ones_fraction}"
        )
    rng = as_rng(seed)
    if n_clusters <= 0:
        return (rng.random((n, dim)) < ones_fraction).astype(np.int64)
    if not (0.0 <= flip < 0.5):
        raise ValueError(f"flip must lie in [0, 0.5), got {flip}")
    prototypes = (rng.random((n_clusters, dim)) < ones_fraction)
    assignment = rng.integers(0, n_clusters, size=n)
    flips = rng.random((n, dim)) < flip
    return (prototypes[assignment] ^ flips).astype(np.int64)


def planted_queries(data, n_queries, noise_std=0.1, seed=None):
    """Queries planted next to random data points (known-near-neighbor regime).

    Useful for tests that need a guaranteed close neighbor at a controlled
    distance scale.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("data must be a non-empty (n, dim) matrix")
    if n_queries < 1:
        raise ValueError(f"need at least one query, got {n_queries}")
    rng = as_rng(seed)
    anchors = rng.integers(0, data.shape[0], size=n_queries)
    noise = rng.standard_normal((n_queries, data.shape[1])) * noise_std
    return data[anchors] + noise, anchors


def split_queries(data, n_queries, seed=None):
    """Hold out ``n_queries`` random rows as queries; return (rest, queries).

    This mirrors the papers' protocol of sampling queries from the dataset's
    own test split.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a (n, dim) matrix")
    n = data.shape[0]
    if not (1 <= n_queries < n):
        raise ValueError(
            f"n_queries must lie in [1, n), got {n_queries} for n={n}"
        )
    rng = as_rng(seed)
    chosen = rng.choice(n, size=n_queries, replace=False)
    mask = np.zeros(n, dtype=bool)
    mask[chosen] = True
    return data[~mask], data[mask]
