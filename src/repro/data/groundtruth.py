"""Exact k-nearest-neighbor ground truth.

Blocked brute force over numpy: memory stays bounded at
``block * n`` distance entries while throughput stays BLAS-bound, which is
what makes paper-size ground truth feasible in pure Python (the repro band's
"numpy works" observation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["exact_knn", "pairwise_euclidean"]


def pairwise_euclidean(data, queries):
    """Dense ``(q, n)`` Euclidean distance matrix (use for small inputs)."""
    data = np.asarray(data, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if data.ndim != 2 or queries.shape[1] != data.shape[1]:
        raise ValueError(
            f"dimension mismatch: data {data.shape}, queries {queries.shape}"
        )
    data_sq = np.einsum("ij,ij->i", data, data)
    query_sq = np.einsum("ij,ij->i", queries, queries)
    sq = query_sq[:, None] + data_sq[None, :] - 2.0 * (queries @ data.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def _angular_matrix(data, queries):
    data_norm = np.linalg.norm(data, axis=1)
    query_norm = np.linalg.norm(queries, axis=1)
    if np.any(data_norm == 0) or np.any(query_norm == 0):
        raise ValueError("angular distance is undefined for zero vectors")
    cosine = (queries @ data.T) / (query_norm[:, None] * data_norm[None, :])
    return np.arccos(np.clip(cosine, -1.0, 1.0))


def _hamming_matrix(data, queries):
    return np.array([
        np.count_nonzero(data != q, axis=1) for q in queries
    ], dtype=np.float64)


def _manhattan_matrix(data, queries):
    return np.array([
        np.abs(data - q).sum(axis=1) for q in queries
    ], dtype=np.float64)


_METRIC_MATRICES = {
    "euclidean": pairwise_euclidean,
    "angular": _angular_matrix,
    "hamming": _hamming_matrix,
    "manhattan": _manhattan_matrix,
}


def exact_knn(data, queries, k, block=256, metric="euclidean"):
    """Exact k-NN ids and distances for every query.

    Parameters
    ----------
    data:
        ``(n, dim)`` matrix.
    queries:
        ``(q, dim)`` matrix (or a single ``(dim,)`` vector).
    k:
        Neighbors per query, ``1 <= k <= n``.
    block:
        Queries processed per distance-matrix block.
    metric:
        ``"euclidean"`` (default), ``"angular"``, ``"hamming"``, or a
        callable ``(data, query_block) -> (q_block, n)`` distance matrix.

    Returns
    -------
    (ids, distances):
        Both ``(q, k)``, sorted by ascending distance; ties broken by id
        order (numpy argsort stability on the distance key).
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    single = queries.ndim == 1
    queries = np.atleast_2d(queries)
    n = data.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"k must lie in [1, {n}], got {k}")
    if block < 1:
        raise ValueError(f"block must be positive, got {block}")
    if callable(metric):
        matrix = metric
    else:
        try:
            matrix = _METRIC_MATRICES[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; "
                f"available: {sorted(_METRIC_MATRICES)}"
            ) from None

    q = queries.shape[0]
    ids = np.empty((q, k), dtype=np.int64)
    dists = np.empty((q, k), dtype=np.float64)
    for start in range(0, q, block):
        chunk = queries[start:start + block]
        dmat = np.asarray(matrix(data, chunk), dtype=np.float64)
        if dmat.shape != (chunk.shape[0], n):
            raise ValueError(
                f"metric returned shape {dmat.shape}, expected "
                f"{(chunk.shape[0], n)}"
            )
        if k < n:
            part = np.argpartition(dmat, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(n), (chunk.shape[0], 1))
        part_d = np.take_along_axis(dmat, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids[start:start + block] = np.take_along_axis(part, order, axis=1)
        dists[start:start + block] = np.take_along_axis(part_d, order, axis=1)
    if single:
        return ids[0], dists[0]
    return ids, dists
