"""Vector-file formats used by the ANN-benchmark ecosystem.

``.fvecs`` / ``.ivecs`` are the de-facto interchange formats for ANN
datasets (SIFT/GIST distributions use them): each vector is stored as a
little-endian ``int32`` dimension header followed by ``dim`` values
(``float32`` for fvecs, ``int32`` for ivecs). Supporting them lets users
run this library directly on the public corpora the original paper drew
from, when they have the files.
"""

from __future__ import annotations

import numpy as np

__all__ = ["read_fvecs", "write_fvecs", "read_ivecs", "write_ivecs"]


def _read_payload(path):
    """Parse the common record layout; returns the int32 payload block."""
    raw = np.fromfile(path, dtype=np.int32)
    if raw.size == 0:
        return np.empty((0, 0), dtype=np.int32)
    dim = int(raw[0])
    if dim <= 0:
        raise ValueError(f"{path}: corrupt header, dimension {dim}")
    record = dim + 1
    if raw.size % record != 0:
        raise ValueError(
            f"{path}: file size is not a multiple of the record size "
            f"({raw.size} int32 words, records of {record})"
        )
    table = raw.reshape(-1, record)
    if not np.all(table[:, 0] == dim):
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    return np.ascontiguousarray(table[:, 1:])


def read_fvecs(path):
    """Read an ``.fvecs`` file into an ``(n, dim)`` float64 matrix."""
    payload = _read_payload(path)
    return payload.view(np.float32).astype(np.float64)


def read_ivecs(path):
    """Read an ``.ivecs`` file into an ``(n, dim)`` int32 matrix."""
    return _read_payload(path)


def write_fvecs(path, data):
    """Write an ``(n, dim)`` matrix as ``.fvecs`` (float32 payload)."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float32))
    if data.ndim != 2 or data.shape[1] == 0:
        raise ValueError(f"data must be a non-empty (n, dim) matrix, got {data.shape}")
    n, dim = data.shape
    out = np.empty((n, dim + 1), dtype=np.int32)
    out[:, 0] = dim
    out[:, 1:] = data.view(np.int32)
    out.tofile(path)


def write_ivecs(path, data):
    """Write an ``(n, dim)`` integer matrix as ``.ivecs``."""
    data = np.atleast_2d(np.asarray(data, dtype=np.int32))
    if data.ndim != 2 or data.shape[1] == 0:
        raise ValueError(f"data must be a non-empty (n, dim) matrix, got {data.shape}")
    n, dim = data.shape
    out = np.empty((n, dim + 1), dtype=np.int32)
    out[:, 0] = dim
    out[:, 1:] = data
    out.tofile(path)
