"""Dataset profiles matching the shapes of the paper's evaluation datasets.

Each profile returns a :class:`Dataset` whose cardinality and dimensionality
match one of the original collections (scaled down by ``scale`` so the full
benchmark suite stays laptop-sized; ``scale=1.0`` reproduces paper-size
inputs). The geometry of each substitute is chosen to exercise the same LSH
behaviour as the original — see DESIGN.md §5 for the substitution table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from . import generators as gen
from .groundtruth import exact_knn

__all__ = ["Dataset", "mnist_like", "color_like", "aerial_like", "nus_like",
           "PROFILES", "load_profile"]

#: Queries per dataset, as in the paper's protocol.
DEFAULT_QUERIES = 50


@dataclass
class Dataset:
    """A benchmark dataset: points, held-out queries, and provenance."""

    name: str
    data: np.ndarray
    queries: np.ndarray
    description: str

    @property
    def n(self):
        """Number of indexed points (queries excluded)."""
        return self.data.shape[0]

    @property
    def dim(self):
        """Dimensionality of the vectors."""
        return self.data.shape[1]

    def ground_truth(self, k):
        """Exact k-NN ids and distances for the held-out queries."""
        return exact_knn(self.data, self.queries, k)

    def __repr__(self):
        return (f"Dataset({self.name!r}, n={self.n}, dim={self.dim}, "
                f"queries={self.queries.shape[0]})")


def _scaled(n, scale):
    if not (0.0 < scale <= 1.0):
        raise ValueError(f"scale must lie in (0, 1], got {scale}")
    return max(1000, int(math.ceil(n * scale)))


def _finish(name, raw, n_queries, seed, description):
    data, queries = gen.split_queries(raw, n_queries, seed=seed + 1)
    return Dataset(name=name, data=data, queries=queries,
                   description=description)


def mnist_like(scale=0.1, n_queries=DEFAULT_QUERIES, seed=0):
    """60 000 x 50 digit-feature stand-in: 10 anisotropic clusters."""
    n = _scaled(60_000, scale)
    raw = gen.gaussian_clusters(
        n + n_queries, dim=50, n_clusters=10, cluster_std=2.0,
        spread=15.0, anisotropy=0.05, seed=seed,
    )
    return _finish("mnist-like", raw, n_queries, seed,
                   "10 anisotropic Gaussian clusters in 50-d "
                   "(digit-feature geometry)")


def color_like(scale=0.1, n_queries=DEFAULT_QUERIES, seed=0):
    """68 040 x 32 color-histogram stand-in: peaky Dirichlet histograms."""
    n = _scaled(68_040, scale)
    raw = gen.histogram_vectors(
        n + n_queries, dim=32, concentration=0.3, scale=100.0, seed=seed,
    )
    return _finish("color-like", raw, n_queries, seed,
                   "non-negative Dirichlet histograms in 32-d "
                   "(HSV-histogram geometry)")


def aerial_like(scale=0.1, n_queries=DEFAULT_QUERIES, seed=0):
    """275 465 x 60 texture-feature stand-in: many correlated clusters."""
    n = _scaled(275_465, scale)
    clusters = gen.gaussian_clusters(
        n + n_queries, dim=60, n_clusters=60, cluster_std=1.0,
        spread=8.0, anisotropy=0.03, seed=seed,
    )
    correlation = gen.correlated_gaussian(
        n + n_queries, dim=60, decay=0.8, seed=seed + 2,
    )
    raw = clusters + 2.0 * correlation
    return _finish("aerial-like", raw, n_queries, seed,
                   "60 correlated Gaussian clusters in 60-d "
                   "(texture-feature geometry)")


def nus_like(scale=0.1, n_queries=DEFAULT_QUERIES, seed=0):
    """269 648 x 500 bag-of-words stand-in: sparse non-negative vectors."""
    n = _scaled(269_648, scale)
    raw = gen.sparse_nonnegative(
        n + n_queries, dim=500, density=0.04, value_scale=4.0, seed=seed,
    )
    return _finish("nus-like", raw, n_queries, seed,
                   "sparse non-negative 500-d vectors "
                   "(bag-of-visual-words geometry)")


#: Registry used by the harness's ``--datasets`` flag.
PROFILES = {
    "mnist": mnist_like,
    "color": color_like,
    "aerial": aerial_like,
    "nus": nus_like,
}


def load_profile(name, scale=0.1, n_queries=DEFAULT_QUERIES, seed=0):
    """Instantiate a profile by registry name."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset profile {name!r}; "
            f"available: {sorted(PROFILES)}"
        ) from None
    return factory(scale=scale, n_queries=n_queries, seed=seed)
