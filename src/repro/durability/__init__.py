"""Durability: write-ahead logging, checkpointing, crash recovery.

The static index got crash-safe persistence in the reliability layer
(atomic renames + CRC manifests in :mod:`repro.core.persist`); this
package is the dynamic half. :class:`DurableUpdatableC2LSH` wraps
:class:`repro.core.updatable.UpdatableC2LSH` so that every insert and
delete survives a crash:

* :mod:`repro.durability.wal` — a CRC32-framed, fsync'd write-ahead log
  with torn-tail repair and mid-log corruption detection;
* :mod:`repro.durability.checkpoint` — full-state snapshots through the
  persist-v2 container format, stamped with a WAL high-water mark so
  replay is idempotent;
* :mod:`repro.durability.durable` — the facade tying them together:
  log → apply → checkpoint → rotate, and exact-state recovery on open.

Typical session::

    from repro.durability import DurableUpdatableC2LSH

    with DurableUpdatableC2LSH("idx/", seed=0, c=2) as index:
        handles = index.insert(batch)
        index.delete(handles[:3])
        index.checkpoint()
    # ... crash anywhere above ...
    recovered = DurableUpdatableC2LSH("idx/", seed=0, c=2)

See ``docs/RELIABILITY.md`` ("Durable updates & recovery") for the log
format, the fsync policy, and the recovery semantics.
"""

from .checkpoint import CHECKPOINT_KIND, load_checkpoint, save_checkpoint
from .durable import DurableUpdatableC2LSH
from .wal import (
    CHECKPOINT_BEGIN,
    CHECKPOINT_END,
    DELETE,
    INSERT,
    RECORD_TYPES,
    ScanResult,
    WalRecord,
    WriteAheadLog,
    scan_log,
)

__all__ = [
    "DurableUpdatableC2LSH",
    "WriteAheadLog",
    "WalRecord",
    "ScanResult",
    "scan_log",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_KIND",
    "INSERT",
    "DELETE",
    "CHECKPOINT_BEGIN",
    "CHECKPOINT_END",
    "RECORD_TYPES",
]
