"""Checkpoint snapshots of :class:`~repro.core.updatable.UpdatableC2LSH`.

A checkpoint is one persist-v2 array container (atomic rename +
CRC32/dtype/shape manifest, written through
:func:`repro.core.persist.save_arrays`) capturing the wrapper's *entire*
mutable state — the indexed matrix and its handle array, the side
buffer, the tombstones, the next-handle counter and the rebuild count —
plus the ``wal_seqno`` high-water mark: every WAL record with a sequence
number at or below it is folded into the snapshot, so recovery replays
only the records above it (which is what makes replay over a stale,
un-rotated log idempotent).

The inner :class:`~repro.core.c2lsh.C2LSH` is *not* serialized: it is
re-fit over the restored indexed matrix with the stored constructor
kwargs, exactly as every rebuild does. With a fixed ``seed`` the re-fit
is bit-identical to the pre-crash index (same data, same RNG stream);
without one the recovered index holds fresh hash functions — still a
valid c-ANN index over the exact same points, but pass ``seed`` when you
need bit-exact recovery.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.c2lsh import C2LSH
from ..core.persist import load_arrays, save_arrays
from ..core.updatable import UpdatableC2LSH
from ..reliability.errors import CorruptIndexError

__all__ = ["CHECKPOINT_KIND", "save_checkpoint", "load_checkpoint"]

#: The manifest ``kind`` stamped on checkpoint containers.
CHECKPOINT_KIND = "updatable-checkpoint"


def save_checkpoint(path, index, wal_seqno, config=None):
    """Snapshot ``index`` (an :class:`UpdatableC2LSH`) to ``path``.

    ``wal_seqno`` is the highest WAL sequence number reflected in the
    snapshot; ``config`` is a JSON-serializable dict restored verbatim by
    :func:`load_checkpoint` (the durable facade stores its constructor
    arguments there). Atomic: a crash mid-save leaves any previous
    checkpoint intact. Returns the path written.
    """
    dim = index._dim
    if index._buffer:
        buffer_rows = np.vstack([row for _, row in index._buffer])
    else:
        buffer_rows = np.empty((0, dim if dim is not None else 0))
    indexed = index._indexed if index._indexed is not None \
        else np.empty((0, dim if dim is not None else 0))
    config_blob = json.dumps(config if config is not None else {},
                             sort_keys=True).encode("utf-8")
    return save_arrays(path, CHECKPOINT_KIND, {
        "scalars": np.asarray(
            [dim if dim is not None else -1, index._next_id,
             index.rebuilds, int(wal_seqno)], dtype=np.int64),
        "indexed": np.asarray(indexed, dtype=np.float64),
        "indexed_ids": np.asarray(index._indexed_ids, dtype=np.int64),
        "buffer_rows": np.asarray(buffer_rows, dtype=np.float64),
        "buffer_handles": np.asarray([h for h, _ in index._buffer],
                                     dtype=np.int64),
        "tombstones": np.asarray(index._tombstones, dtype=np.int64),
        "config": np.frombuffer(config_blob, dtype=np.uint8),
    })


def load_checkpoint(path):
    """Restore a snapshot; returns ``(index, wal_seqno, config)``.

    The returned :class:`UpdatableC2LSH` is in the exact state captured
    by :func:`save_checkpoint` — ids, buffer, tombstones and rebuild
    counter included (see the module docstring for the one caveat on
    hash-function identity). Damage raises :class:`CorruptIndexError`;
    a missing file propagates as ``FileNotFoundError``.
    """
    blob = load_arrays(path, CHECKPOINT_KIND)
    try:
        config = json.loads(bytes(bytearray(blob["config"])).decode("utf-8"))
    except Exception as exc:
        raise CorruptIndexError(path, "config",
                                f"unparsable config: {exc}") from exc
    scalars = blob["scalars"]
    if scalars.shape != (4,):
        raise CorruptIndexError(
            path, "scalars", f"expected 4 scalars, got {scalars.shape}")
    dim, next_id, rebuilds, wal_seqno = (int(v) for v in scalars)

    kwargs = dict(config.get("c2lsh_kwargs", {}))
    index = UpdatableC2LSH(
        rebuild_threshold=config.get("rebuild_threshold", 0.2),
        min_index_size=config.get("min_index_size", 200),
        **kwargs,
    )
    index._dim = dim if dim >= 0 else None
    index._next_id = next_id

    indexed = np.ascontiguousarray(blob["indexed"], dtype=np.float64)
    indexed_ids = np.asarray(blob["indexed_ids"], dtype=np.int64)
    if indexed.shape[0] != indexed_ids.size:
        raise CorruptIndexError(
            path, "indexed_ids",
            f"{indexed_ids.size} handles for {indexed.shape[0]} rows")
    if indexed.shape[0]:
        index._indexed = indexed
        index._indexed_ids = indexed_ids
        index._indexed_ids_sorted = np.sort(indexed_ids)
        index._index = C2LSH(**kwargs).fit(indexed)

    buffer_rows = np.asarray(blob["buffer_rows"], dtype=np.float64)
    buffer_handles = np.asarray(blob["buffer_handles"], dtype=np.int64)
    if buffer_rows.shape[0] != buffer_handles.size:
        raise CorruptIndexError(
            path, "buffer_handles",
            f"{buffer_handles.size} handles for {buffer_rows.shape[0]} rows")
    index._buffer = list(zip(buffer_handles.tolist(), buffer_rows))

    tombstones = np.asarray(blob["tombstones"], dtype=np.int64)
    index._tombstones = np.sort(tombstones)
    index._deleted = set(tombstones.tolist())
    index._deleted_indexed = int(np.isin(tombstones, indexed_ids).sum())
    # Restored last: the fit above must not perturb the stored count.
    index.rebuilds = rebuilds
    return index, wal_seqno, config
