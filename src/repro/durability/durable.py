"""Crash-safe facade over :class:`~repro.core.updatable.UpdatableC2LSH`.

:class:`DurableUpdatableC2LSH` write-ahead-logs every mutation before
applying it, checkpoints the full wrapper state through the persist-v2
container format, and reconstructs the exact pre-crash state on open:

* **Logging.** ``insert``/``delete`` validate their arguments, append a
  CRC32-framed record to the WAL (fsync'd by default), then apply the
  mutation in memory. A crash between the append and the apply is
  invisible — replay performs the apply on recovery.
* **Checkpointing.** :meth:`checkpoint` appends a ``checkpoint-begin``
  marker, snapshots the wrapper atomically (recording the marker's
  sequence number as the snapshot's high-water mark), appends
  ``checkpoint-end`` and rotates the log. A crash at *any* point in that
  protocol recovers cleanly: the snapshot rename is atomic, and replay
  skips records already folded into whichever snapshot survives.
* **Recovery.** Opening a directory that holds state loads the newest
  checkpoint (CRC-verified), repairs a torn WAL tail (the expected shape
  of a crash mid-append), replays the surviving records above the
  high-water mark through the ordinary ``insert``/``delete`` code paths,
  and raises :class:`~repro.reliability.CorruptIndexError` on mid-log or
  snapshot damage. Handles, tombstones, the side buffer and the rebuild
  counter all come back exactly; with a fixed ``seed`` the rebuilt
  hash tables are bit-identical too.

Telemetry lands in a :class:`repro.obs.MetricsRegistry`: counters
``durability.wal_appends``, ``durability.wal_replays``,
``durability.torn_tail``, ``durability.checkpoints`` and histograms
``durability.recovery_seconds`` / ``durability.checkpoint_seconds``.
A :class:`repro.reliability.FaultInjector` passed at construction is
consulted at sites ``"wal_append"``, ``"wal_fsync"``, ``"wal_replay"``
and ``"checkpoint"`` so the chaos suite can kill writes mid-record.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from ..core.updatable import UpdatableC2LSH
from ..obs.registry import MetricsRegistry
from .checkpoint import load_checkpoint, save_checkpoint
from .wal import (
    CHECKPOINT_BEGIN,
    CHECKPOINT_END,
    DELETE,
    INSERT,
    WriteAheadLog,
    encode_delete,
    encode_insert,
    encode_meta,
)

__all__ = ["DurableUpdatableC2LSH"]


class DurableUpdatableC2LSH:
    """Durable insert/delete-capable C2LSH index rooted at a directory.

    Parameters
    ----------
    path:
        Directory holding the index's files (``wal.log`` plus
        ``state.npz`` once checkpointed). Created when missing; opening
        a directory with existing state **recovers it** — constructor
        parameters must then match the stored configuration.
    fsync:
        Fsync the WAL after every record (default). ``False`` trades
        power-loss durability for update throughput (records still
        survive process crashes); see ``benchmarks/bench_updates.py``.
    auto_checkpoint:
        Checkpoint automatically after this many logged mutations
        (``None`` — the default — leaves checkpointing manual).
    fault_injector:
        Optional :class:`repro.reliability.FaultInjector` wired into the
        WAL and checkpoint paths (see the module docstring for sites).
    metrics:
        A :class:`repro.obs.MetricsRegistry` receiving the
        ``durability.*`` series; private when omitted.
    rebuild_threshold / min_index_size / **c2lsh_kwargs:
        Forwarded to :class:`UpdatableC2LSH`. The kwargs must be
        JSON-serializable (they are persisted in every checkpoint so
        recovery can re-fit the inner index identically); pass ``seed``
        for bit-exact recovery of the hash tables.
    """

    WAL_NAME = "wal.log"
    STATE_NAME = "state.npz"

    def __init__(self, path, *, fsync=True, auto_checkpoint=None,
                 fault_injector=None, metrics=None,
                 rebuild_threshold=0.2, min_index_size=200,
                 **c2lsh_kwargs):
        if auto_checkpoint is not None and auto_checkpoint < 1:
            raise ValueError(
                f"auto_checkpoint must be >= 1, got {auto_checkpoint}"
            )
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        try:
            config = json.loads(json.dumps({
                "rebuild_threshold": float(rebuild_threshold),
                "min_index_size": int(min_index_size),
                "c2lsh_kwargs": dict(c2lsh_kwargs),
            }, sort_keys=True))
        except TypeError as exc:
            raise TypeError(
                "DurableUpdatableC2LSH persists its C2LSH kwargs in every "
                f"checkpoint, so they must be JSON-serializable: {exc}"
            ) from None
        self._config = config
        self.auto_checkpoint = auto_checkpoint
        self.fault_injector = fault_injector
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._mutations_since_checkpoint = 0
        self.recovered_records = 0
        self._recover(fsync)

    # -- recovery ------------------------------------------------------------

    @property
    def wal_path(self):
        """The write-ahead log file."""
        return os.path.join(self.path, self.WAL_NAME)

    @property
    def state_path(self):
        """The checkpoint snapshot file."""
        return os.path.join(self.path, self.STATE_NAME)

    def _recover(self, fsync):
        started = time.perf_counter()
        if os.path.exists(self.state_path):
            inner, applied_seqno, stored = load_checkpoint(self.state_path)
            if stored != self._config:
                raise ValueError(
                    f"stored configuration {stored} does not match the "
                    f"constructor arguments {self._config}; open the "
                    "directory with the parameters it was created with"
                )
        else:
            inner = UpdatableC2LSH(
                rebuild_threshold=self._config["rebuild_threshold"],
                min_index_size=self._config["min_index_size"],
                **self._config["c2lsh_kwargs"],
            )
            applied_seqno = -1
        wal = WriteAheadLog(self.wal_path, fsync=fsync,
                            fault_injector=self.fault_injector,
                            metrics=self.metrics)
        replayed = 0
        for record in wal.last_scan.records:
            if record.seqno <= applied_seqno:
                continue
            if self.fault_injector is not None:
                self.fault_injector.guard("wal_replay")
            self._apply(inner, record)
            replayed += 1
        self._inner = inner
        self._wal = wal
        self.recovered_records = replayed
        self.metrics.counter("durability.wal_replays").inc(replayed)
        self.metrics.histogram("durability.recovery_seconds").observe(
            time.perf_counter() - started)

    def _apply(self, inner, record):
        """Replay one WAL record through the ordinary update paths."""
        from ..reliability.errors import CorruptIndexError
        from .wal import decode_delete, decode_insert

        if record.rectype == INSERT:
            try:
                start, rows = decode_insert(record.body)
            except ValueError as exc:
                raise CorruptIndexError(
                    self.wal_path, f"wal_record_{record.seqno}", str(exc)
                ) from exc
            if start != inner._next_id:
                raise CorruptIndexError(
                    self.wal_path, f"wal_record_{record.seqno}",
                    f"insert starts at handle {start} but the index "
                    f"expects {inner._next_id}",
                )
            inner.insert(rows)
        elif record.rectype == DELETE:
            try:
                handles = decode_delete(record.body)
            except ValueError as exc:
                raise CorruptIndexError(
                    self.wal_path, f"wal_record_{record.seqno}", str(exc)
                ) from exc
            inner.delete(handles)
        # Checkpoint markers carry no state mutation.

    # -- updates -------------------------------------------------------------

    def insert(self, points):
        """Durably insert one vector or an ``(n, dim)`` batch.

        The batch is logged (and fsync'd, per policy) before it is
        applied, so returned handles are stable across crashes.
        """
        points = self._inner._coerce_points(points)
        self._wal.append(INSERT,
                         encode_insert(self._inner._next_id, points))
        handles = self._inner.insert(points)
        self._after_mutation()
        return handles

    def delete(self, handles):
        """Durably tombstone one handle or an iterable of handles."""
        handles = self._inner._coerce_handles(handles)
        self._wal.append(
            DELETE, encode_delete(np.asarray(handles, dtype=np.int64)))
        self._inner.delete(handles)
        self._after_mutation()

    def _after_mutation(self):
        self._mutations_since_checkpoint += 1
        if (self.auto_checkpoint is not None
                and self._mutations_since_checkpoint >= self.auto_checkpoint):
            self.checkpoint()

    def checkpoint(self):
        """Snapshot the index and rotate the WAL; returns the snapshot path.

        Safe to crash at any point: see the module docstring for the
        begin → snapshot → end → rotate protocol.
        """
        started = time.perf_counter()
        if self.fault_injector is not None:
            self.fault_injector.guard("checkpoint")
        begin = self._wal.append(
            CHECKPOINT_BEGIN, encode_meta({"state": self.STATE_NAME}))
        written = save_checkpoint(self.state_path, self._inner,
                                  wal_seqno=begin, config=self._config)
        self._wal.append(
            CHECKPOINT_END,
            encode_meta({"state": self.STATE_NAME, "begin": begin}))
        self._wal.reset()
        self._mutations_since_checkpoint = 0
        self.metrics.counter("durability.checkpoints").inc()
        self.metrics.histogram("durability.checkpoint_seconds").observe(
            time.perf_counter() - started)
        return written

    # -- queries & introspection ---------------------------------------------

    def query(self, query, k=1, budget=None):
        """c-k-ANN over the live points (see :meth:`UpdatableC2LSH.query`)."""
        return self._inner.query(query, k=k, budget=budget)

    @property
    def index(self):
        """The in-memory :class:`UpdatableC2LSH` behind this facade."""
        return self._inner

    @property
    def rebuilds(self):
        """Main-index rebuilds performed (survives recovery)."""
        return self._inner.rebuilds

    def __len__(self):
        return len(self._inner)

    def close(self):
        """Release the WAL file handle (the index stays queryable)."""
        self._wal.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (f"DurableUpdatableC2LSH({self.path!r}, live={len(self)}, "
                f"next_seqno={self._wal.next_seqno}, "
                f"rebuilds={self.rebuilds})")
