"""CRC32-framed, fsync'd write-ahead log for the updatable index.

On-disk layout (little-endian throughout)::

    header   ::=  magic "RWAL" | u32 version (=1) | u64 base_seqno
    record   ::=  u32 payload_len | u32 crc32(payload) | payload
    payload  ::=  u8 record_type | u64 seqno | body

Record types are :data:`INSERT`, :data:`DELETE`,
:data:`CHECKPOINT_BEGIN` and :data:`CHECKPOINT_END`; their body codecs
live at the bottom of this module. Sequence numbers are global and
contiguous: the header's ``base_seqno`` names the first record the file
may hold, every following record increments by one, and a checkpoint
rotates to a fresh file whose ``base_seqno`` continues the count — which
is what lets recovery skip records already folded into a snapshot.

Failure semantics on :func:`scan_log`:

* **Torn tail** — the final record is incomplete (truncated frame) or
  fails its CRC: the intact prefix is returned with ``torn=True`` and
  ``good_size`` marking where to truncate. This is the expected shape of
  a crash mid-append and is repaired silently on reopen.
* **Mid-log corruption** — a record that is *not* the last fails its
  CRC, carries an unknown type, or breaks seqno contiguity:
  :class:`repro.reliability.CorruptIndexError` is raised naming the bad
  record. Damage before intact data cannot be an interrupted append, so
  it is never silently dropped. (One undecidable case: a corrupted
  length field that makes the claimed frame run past end-of-file is
  indistinguishable from a torn final record and is classified torn.)

Fault injection: when a :class:`repro.reliability.FaultInjector` is
attached, every append consults site ``"wal_append"`` *before* writing —
an ``"error"`` rule there simulates a crash mid-record by persisting a
deterministic prefix of the frame and re-raising — and site
``"wal_fsync"`` between the buffered write and the fsync. After either
failure the log refuses further appends (the process is "dead"); reopen
the file to recover.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricsRegistry
from ..reliability.errors import CorruptIndexError, TransientIOError

__all__ = [
    "WriteAheadLog", "WalRecord", "ScanResult", "scan_log",
    "INSERT", "DELETE", "CHECKPOINT_BEGIN", "CHECKPOINT_END",
    "RECORD_TYPES",
    "encode_insert", "decode_insert", "encode_delete", "decode_delete",
    "encode_meta", "decode_meta",
]

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")    # magic, version, base_seqno
_FRAME = struct.Struct("<II")       # payload length, CRC32(payload)
_PREFIX = struct.Struct("<BQ")      # record type, seqno
_INSERT_HEAD = struct.Struct("<QII")  # start handle, count, dim
_DELETE_HEAD = struct.Struct("<I")    # handle count
_MAX_PAYLOAD = 1 << 30

#: Record types.
INSERT = 1
DELETE = 2
CHECKPOINT_BEGIN = 3
CHECKPOINT_END = 4
RECORD_TYPES = {
    INSERT: "insert",
    DELETE: "delete",
    CHECKPOINT_BEGIN: "checkpoint_begin",
    CHECKPOINT_END: "checkpoint_end",
}


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record plus its byte extent in the file."""

    rectype: int
    seqno: int
    body: bytes
    offset: int     # byte offset of the record's frame header
    end: int        # byte offset one past the record's last byte


@dataclass
class ScanResult:
    """Outcome of :func:`scan_log`: intact records + tail diagnosis."""

    records: list = field(default_factory=list)
    torn: bool = False
    good_size: int = _HEADER.size   # truncate here to drop a torn tail
    base_seqno: int = 0

    @property
    def next_seqno(self):
        """Sequence number the next append must carry."""
        if self.records:
            return self.records[-1].seqno + 1
        return self.base_seqno


def _crc(payload):
    return zlib.crc32(payload) & 0xFFFFFFFF


def scan_log(path):
    """Read and verify a WAL file; returns a :class:`ScanResult`.

    A torn tail (see the module docstring) sets ``torn`` and stops the
    scan; mid-log damage raises :class:`CorruptIndexError`. A missing
    file propagates as ``FileNotFoundError`` (absence is not corruption).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _HEADER.size:
        raise CorruptIndexError(
            path, "wal_header",
            f"file holds {len(data)} bytes, header needs {_HEADER.size}",
        )
    magic, version, base_seqno = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise CorruptIndexError(path, "wal_header",
                                f"bad magic {magic!r}")
    if version != _VERSION:
        raise CorruptIndexError(
            path, "wal_header",
            f"unsupported WAL version {version} (expected {_VERSION})",
        )
    result = ScanResult(base_seqno=int(base_seqno))
    expected = int(base_seqno)
    pos = _HEADER.size
    size = len(data)
    while pos < size:
        if size - pos < _FRAME.size:
            result.torn = True
            break
        length, crc = _FRAME.unpack_from(data, pos)
        body_start = pos + _FRAME.size
        end = body_start + length
        if length < _PREFIX.size or length > _MAX_PAYLOAD or end > size:
            # The frame claims bytes the file does not hold — only ever
            # the final (interrupted) append, so a torn tail.
            result.torn = True
            break
        payload = data[body_start:end]
        label = f"wal_record_{len(result.records)}"
        if _crc(payload) != crc:
            if end == size:
                result.torn = True
                break
            raise CorruptIndexError(
                path, label,
                "CRC32 mismatch on a record followed by intact data "
                "(mid-log corruption, not a torn append)",
            )
        rectype, seqno = _PREFIX.unpack_from(payload, 0)
        if rectype not in RECORD_TYPES:
            raise CorruptIndexError(path, label,
                                    f"unknown record type {rectype}")
        if seqno != expected:
            raise CorruptIndexError(
                path, label,
                f"sequence gap: record carries seqno {seqno}, "
                f"expected {expected}",
            )
        result.records.append(
            WalRecord(int(rectype), int(seqno), payload[_PREFIX.size:],
                      pos, end)
        )
        expected += 1
        pos = end
        result.good_size = pos
    return result


def _write_fresh(path, base_seqno):
    """Atomically (re)create ``path`` as an empty log with ``base_seqno``."""
    dest_dir = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=dest_dir, prefix=".wal-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, _VERSION, int(base_seqno)))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    dir_fd = os.open(dest_dir, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class WriteAheadLog:
    """Append-only durable log of index mutations.

    Opening scans and verifies the whole file: a torn tail is truncated
    away (recorded as the ``durability.torn_tail`` counter) and the
    surviving records are exposed as :attr:`last_scan` for replay;
    mid-log corruption raises :class:`CorruptIndexError`. A missing file
    is created empty.

    Parameters
    ----------
    path:
        The log file. Created (atomically) when absent.
    fsync:
        Whether :meth:`append` fsyncs after every record (default). With
        ``False`` records are flushed to the OS but survive only process
        crashes, not power loss — the classical durability/throughput
        trade, measured in ``benchmarks/bench_updates.py``.
    fault_injector:
        Optional :class:`repro.reliability.FaultInjector` consulted at
        sites ``"wal_append"`` and ``"wal_fsync"`` (see module docstring).
    metrics:
        A :class:`repro.obs.MetricsRegistry` for the ``durability.*``
        counters; a private registry is created when omitted.
    """

    def __init__(self, path, *, fsync=True, fault_injector=None,
                 metrics=None):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self.fault_injector = fault_injector
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._failed = False
        if not os.path.exists(self.path):
            _write_fresh(self.path, base_seqno=0)
        result = scan_log(self.path)
        if result.torn:
            self.metrics.counter("durability.torn_tail").inc()
            with open(self.path, "r+b") as fh:
                fh.truncate(result.good_size)
                fh.flush()
                os.fsync(fh.fileno())
        self.last_scan = result
        self._next_seqno = result.next_seqno
        self._fh = open(self.path, "ab")

    @property
    def next_seqno(self):
        """Sequence number the next appended record will carry."""
        return self._next_seqno

    def append(self, rectype, body):
        """Durably append one record; returns its sequence number.

        Raises :class:`TransientIOError` when a fault rule fires (the
        log then refuses further appends until reopened — a simulated
        crash leaves a torn tail for :func:`scan_log` to repair).
        """
        if rectype not in RECORD_TYPES:
            raise ValueError(f"unknown record type {rectype}")
        if self._failed:
            raise TransientIOError(
                "wal_append",
                detail="log is in a failed state; reopen to recover",
            )
        seqno = self._next_seqno
        payload = _PREFIX.pack(rectype, seqno) + bytes(body)
        frame = _FRAME.pack(len(payload), _crc(payload)) + payload
        injector = self.fault_injector
        if injector is not None:
            try:
                injector.check("wal_append")
            except TransientIOError as exc:
                # Simulated kill mid-record: a deterministic prefix of
                # the frame reaches the file, then the "process dies".
                cut = (exc.op * 7919) % len(frame)
                self._fh.write(frame[:cut])
                self._fh.flush()
                with contextlib.suppress(OSError):
                    os.fsync(self._fh.fileno())
                self._failed = True
                raise
        self._fh.write(frame)
        self._fh.flush()
        if injector is not None:
            try:
                injector.check("wal_fsync")
            except TransientIOError:
                # The record is in the OS page cache but not durable;
                # whether it survives is the crash's coin to flip.
                self._failed = True
                raise
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.metrics.counter("durability.wal_appends").inc()
        self._next_seqno += 1
        return seqno

    def reset(self, base_seqno=None):
        """Atomically rotate to a fresh empty log (after a checkpoint).

        The new file's ``base_seqno`` defaults to :attr:`next_seqno`, so
        the global record numbering continues across the rotation.
        """
        if base_seqno is None:
            base_seqno = self._next_seqno
        self._fh.close()
        _write_fresh(self.path, base_seqno)
        self._fh = open(self.path, "ab")
        self._next_seqno = int(base_seqno)
        self._failed = False
        self.last_scan = ScanResult(base_seqno=int(base_seqno))

    def close(self):
        """Close the underlying file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (f"WriteAheadLog({self.path!r}, fsync={self.fsync}, "
                f"next_seqno={self._next_seqno})")


# -- record body codecs ------------------------------------------------------

def encode_insert(start_handle, rows):
    """Body of an :data:`INSERT` record: contiguous handles + raw rows."""
    rows = np.ascontiguousarray(rows, dtype=np.float64)
    return _INSERT_HEAD.pack(int(start_handle), rows.shape[0],
                             rows.shape[1]) + rows.tobytes()


def decode_insert(body):
    """Inverse of :func:`encode_insert`: ``(start_handle, rows)``."""
    if len(body) < _INSERT_HEAD.size:
        raise ValueError("insert record body is too short")
    start, count, dim = _INSERT_HEAD.unpack_from(body, 0)
    raw = body[_INSERT_HEAD.size:]
    if len(raw) != count * dim * 8:
        raise ValueError(
            f"insert record claims {count}x{dim} float64 rows "
            f"but carries {len(raw)} bytes"
        )
    rows = np.frombuffer(raw, dtype=np.float64).reshape(count, dim)
    return int(start), rows


def encode_delete(handles):
    """Body of a :data:`DELETE` record: an int64 handle array."""
    handles = np.ascontiguousarray(handles, dtype=np.int64)
    return _DELETE_HEAD.pack(handles.size) + handles.tobytes()


def decode_delete(body):
    """Inverse of :func:`encode_delete`: the int64 handle array."""
    if len(body) < _DELETE_HEAD.size:
        raise ValueError("delete record body is too short")
    (count,) = _DELETE_HEAD.unpack_from(body, 0)
    raw = body[_DELETE_HEAD.size:]
    if len(raw) != count * 8:
        raise ValueError(
            f"delete record claims {count} handles "
            f"but carries {len(raw)} bytes"
        )
    return np.frombuffer(raw, dtype=np.int64).copy()


def encode_meta(meta):
    """Body of a checkpoint marker: a JSON object."""
    return json.dumps(meta, sort_keys=True).encode("utf-8")


def decode_meta(body):
    """Inverse of :func:`encode_meta`."""
    return json.loads(body.decode("utf-8"))
