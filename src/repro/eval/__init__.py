"""Evaluation: metrics, experiment runners, reporting, and the CLI harness."""

from .metrics import QuerySetSummary, evaluate_results, overall_ratio, recall
from .plots import AsciiChart
from .reporting import Table, format_table, write_csv
from .sweep import (
    BuildReport,
    RunRecord,
    best_under_recall,
    grid,
    run_experiment,
    timed_build,
    timed_queries,
)

__all__ = [
    "overall_ratio",
    "recall",
    "QuerySetSummary",
    "evaluate_results",
    "Table",
    "format_table",
    "write_csv",
    "BuildReport",
    "RunRecord",
    "timed_build",
    "timed_queries",
    "run_experiment",
    "grid",
    "best_under_recall",
    "AsciiChart",
]
