"""Experiment harness: regenerates every table and figure of the evaluation.

Each subcommand maps to one experiment ID from DESIGN.md §6 and prints the
rows the corresponding paper artifact reports (plus a CSV next to it when
``--out-dir`` is given). Absolute numbers are simulator-scale; the shapes —
who wins, by what factor, where crossovers fall — are what EXPERIMENTS.md
records against the paper's claims.

Run ``python -m repro.eval.harness all --scale 0.05`` for a quick full pass,
or individual experiments::

    python -m repro.eval.harness table-params
    python -m repro.eval.harness vs-k --datasets mnist color --ks 1 10 100
    python -m repro.eval.harness ablation-rehash --scale 0.02
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import traceback

import numpy as np

from ..baselines import E2LSH, LSBForest, LinearScan, MultiProbeLSH
from ..core import C2LSH, QALSH, design_params
from ..data import exact_knn, gaussian_clusters, load_profile, split_queries
from ..data.profiles import PROFILES, Dataset
from ..hashing import PStableFamily
from ..kernels import active_backend
from ..obs import SnapshotSink, flight, provenance, trace, tracing
from ..storage import DEFAULT_PAGE_SIZE, PageManager
from .reporting import Table
from .sweep import timed_build, timed_queries

__all__ = ["main", "EXPERIMENTS"]

DEFAULT_KS = (1, 10, 20, 40, 60, 80, 100)


# --------------------------------------------------------------------------
# shared plumbing
# --------------------------------------------------------------------------

def _datasets(args):
    for name in args.datasets:
        yield load_profile(name, scale=args.scale, seed=args.seed,
                           n_queries=args.queries)


def _method_factories(args, pm_for):
    """Name -> zero-arg index factory; ``pm_for(name)`` supplies accounting."""

    def c2lsh():
        return C2LSH(c=args.c, seed=args.seed, page_manager=pm_for("c2lsh"))

    def qalsh():
        return QALSH(c=args.c, seed=args.seed, page_manager=pm_for("qalsh"))

    def lsb():
        return LSBForest(n_trees=args.lsb_trees, seed=args.seed,
                         page_manager=pm_for("lsb"))

    def e2lsh():
        return E2LSH(K=args.e2lsh_K, L=args.e2lsh_L, c=args.c,
                     seed=args.seed, page_manager=pm_for("e2lsh"))

    def linear():
        return LinearScan(page_manager=pm_for("linear"))

    def mplsh():
        return MultiProbeLSH(K=args.e2lsh_K, L=max(1, args.e2lsh_L // 8),
                             n_probes=args.mp_probes, c=args.c,
                             seed=args.seed, page_manager=pm_for("mplsh"))

    registry = {"c2lsh": c2lsh, "qalsh": qalsh, "lsb": lsb, "e2lsh": e2lsh,
                "mplsh": mplsh, "linear": linear}
    return {name: registry[name] for name in args.methods}


def _save(args, table, stem):
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        table.save_csv(os.path.join(args.out_dir, f"{stem}.csv"))
        _save_metrics(args, stem)


def _save_metrics(args, stem):
    """Write the active trace's metrics snapshot next to the CSV.

    ``main`` runs each experiment under a :class:`SnapshotSink` when
    ``--out-dir`` is given, so the phase/I-O aggregates of everything the
    experiment executed land in ``{stem}_metrics.json`` alongside
    ``{stem}.csv``.
    """
    tr = trace.current()
    if tr is None:
        return
    for sink in tr.sinks:
        if isinstance(sink, SnapshotSink):
            path = os.path.join(args.out_dir, f"{stem}_metrics.json")
            snapshot = sink.snapshot()
            # Which kernel tier produced these numbers (alongside the
            # numeric kernels.numba gauge the sink itself records), so
            # metrics from mixed environments are attributable.
            snapshot["kernels"] = active_backend()
            # Full environment stamp (git SHA, host, cpu count, library
            # versions): two metrics files are only comparable — e.g. by
            # ``python -m repro.obs diff`` — when their provenance says
            # they came from comparable environments.
            snapshot["provenance"] = provenance()
            with open(path, "w") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
            return


def _ground_truth(dataset, max_k):
    k = min(max_k, dataset.n)
    return dataset.ground_truth(k)


# --------------------------------------------------------------------------
# T1 — parameter table
# --------------------------------------------------------------------------

def exp_table_params(args):
    """T1: the parameters C2LSH derives per dataset and ratio c."""
    table = Table(
        ["dataset", "n", "dim", "c", "w", "p1", "p2", "alpha", "m", "l",
         "beta*n"],
        title="T1. C2LSH parameter settings",
    )
    for dataset in _datasets(args):
        for c in (2, 3):
            family = PStableFamily(dataset.dim, c=c)
            params = design_params(dataset.n, family, c=c, delta=args.delta)
            table.add(
                dataset.name, dataset.n, dataset.dim, c,
                f"{params.w:.3f}", f"{params.p1:.4f}", f"{params.p2:.4f}",
                f"{params.alpha:.4f}", params.m, params.l,
                params.false_positive_budget,
            )
    table.print()
    _save(args, table, "t1_params")
    return table


# --------------------------------------------------------------------------
# T2 — index size / build time table
# --------------------------------------------------------------------------

def _table_count(index):
    """How many sorted files/trees the index keeps (for build-I/O modeling)."""
    if hasattr(index, "params") and index.params is not None:
        return index.params.m
    for attr in ("m", "L"):
        value = getattr(index, attr, None)
        if isinstance(value, int) and value > 0:
            return value
    return 0


def exp_table_index(args):
    """T2: index pages, build time, and modeled external-sort build I/O."""
    from ..storage.extsort import external_sort_pages

    table = Table(
        ["dataset", "method", "build_s", "index_pages", "index_MB",
         "build_io(est)", "note"],
        title="T2. Index size and construction cost",
    )
    for dataset in _datasets(args):
        for name, factory in _method_factories(
                args, lambda _n: PageManager()).items():
            report = timed_build(factory, dataset.data)
            mb = report.index_pages * DEFAULT_PAGE_SIZE / 1e6
            tables = _table_count(report.index)
            pm = PageManager()
            build_io = tables * external_sort_pages(dataset.n, pm) \
                + pm.pages_for(dataset.n, dataset.dim * 8)
            table.add(dataset.name, name, f"{report.build_time:.2f}",
                      report.index_pages, f"{mb:.1f}", build_io, "built")
        # Analytic sizes at the *theoretical* parameter settings, which are
        # what makes E2LSH/LSB-forest impractically large (paper's point).
        pm = PageManager()
        per_table = pm.pages_for(dataset.n, 12)
        K_th, L_th = E2LSH.theoretical_parameters(dataset.n, c=args.c)
        table.add(dataset.name, "e2lsh(theory)", "-", L_th * per_table,
                  f"{L_th * per_table * DEFAULT_PAGE_SIZE / 1e6:.1f}", "-",
                  f"K={K_th} L={L_th}, single radius")
        m_th, L_lsb = LSBForest.theoretical_parameters(dataset.n, dataset.dim)
        table.add(dataset.name, "lsb(theory)", "-", L_lsb * per_table,
                  f"{L_lsb * per_table * DEFAULT_PAGE_SIZE / 1e6:.1f}", "-",
                  f"m={m_th} L={L_lsb} trees")
    table.print()
    _save(args, table, "t2_index")
    return table


# --------------------------------------------------------------------------
# F1/F2/F3 — ratio / I/O / time vs k
# --------------------------------------------------------------------------

def exp_vs_k(args):
    """F1+F2+F3: overall ratio, I/O cost and query time as k grows."""
    table = Table(
        ["dataset", "method", "k", "ratio", "recall", "io_pages",
         "candidates", "ms/query"],
        title="F1-F3. Accuracy and cost vs k",
    )
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, max(args.ks))
        factories = _method_factories(args, lambda _n: PageManager())
        for name, factory in factories.items():
            build = timed_build(factory, dataset.data)
            for k in args.ks:
                if k > dataset.n:
                    continue
                summary = timed_queries(build.index, dataset.queries, k,
                                        gt_ids[:, :k], gt_dists[:, :k])
                table.add(dataset.name, name, k, f"{summary.ratio:.4f}",
                          f"{summary.recall:.4f}",
                          f"{summary.io_reads:.0f}",
                          f"{summary.candidates:.0f}",
                          f"{summary.query_time * 1e3:.2f}")
    table.print()
    _save(args, table, "f1_f3_vs_k")
    _vs_k_charts(args, table)
    return table


def _vs_k_charts(args, table):
    """Terminal figures of the F1/F2 shapes (one per dataset)."""
    from .plots import AsciiChart

    if len(args.ks) < 2:
        return
    for dataset_name in dict.fromkeys(row[0] for row in table.rows):
        for column, index, y_log in (("ratio", 3, False),
                                     ("io_pages", 5, True)):
            chart = AsciiChart(width=56, height=12,
                               title=f"{column} vs k — {dataset_name}",
                               x_label="k", y_label=column, y_log=y_log)
            added = False
            for method in dict.fromkeys(row[1] for row in table.rows):
                points = [(row[2], float(row[index]))
                          for row in table.rows
                          if row[0] == dataset_name and row[1] == method
                          and float(row[index]) > 0]
                if points:
                    chart.add_series(method, [p[0] for p in points],
                                     [p[1] for p in points])
                    added = True
            if added:
                chart.print()


# --------------------------------------------------------------------------
# F4 — effect of the approximation ratio c
# --------------------------------------------------------------------------

def exp_effect_c(args):
    """F4: larger c buys cheaper queries at worse ratio (C2LSH and QALSH)."""
    table = Table(
        ["dataset", "method", "c", "k", "ratio", "recall", "io_pages",
         "candidates", "m"],
        title="F4. Effect of the approximation ratio c",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        for c in (2, 3):
            for name, cls in (("c2lsh", C2LSH), ("qalsh", QALSH)):
                index = cls(c=c, seed=args.seed,
                            page_manager=PageManager()).fit(dataset.data)
                summary = timed_queries(index, dataset.queries, k,
                                        gt_ids[:, :k], gt_dists[:, :k])
                m = index.params.m if name == "c2lsh" else index.m
                table.add(dataset.name, name, c, k, f"{summary.ratio:.4f}",
                          f"{summary.recall:.4f}",
                          f"{summary.io_reads:.0f}",
                          f"{summary.candidates:.0f}", m)
    table.print()
    _save(args, table, "f4_effect_c")
    return table


# --------------------------------------------------------------------------
# F5 — accuracy/cost trade-off via the false-positive budget
# --------------------------------------------------------------------------

def exp_tradeoff(args):
    """F5: sweeping beta trades candidates (cost) against recall."""
    table = Table(
        ["dataset", "beta*n", "k", "ratio", "recall", "io_pages",
         "candidates"],
        title="F5. Recall/cost trade-off (false-positive budget sweep)",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        for budget in (25, 50, 100, 200, 400):
            beta = min(budget / dataset.n, 0.9)
            index = C2LSH(c=args.c, beta=beta, seed=args.seed,
                          page_manager=PageManager()).fit(dataset.data)
            summary = timed_queries(index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            table.add(dataset.name, budget, k, f"{summary.ratio:.4f}",
                      f"{summary.recall:.4f}", f"{summary.io_reads:.0f}",
                      f"{summary.candidates:.0f}")
    table.print()
    _save(args, table, "f5_tradeoff")
    return table


# --------------------------------------------------------------------------
# A1 — ablation: collision-threshold percentage alpha
# --------------------------------------------------------------------------

def exp_ablation_alpha(args):
    """A1: thresholds off the optimum break the FP/FN balance."""
    table = Table(
        ["dataset", "alpha", "position", "k", "ratio", "recall",
         "candidates", "io_pages"],
        title="A1. Ablation: collision-threshold percentage alpha",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        family = PStableFamily(dataset.dim, c=args.c)
        base = design_params(dataset.n, family, c=args.c, delta=args.delta)
        p1, p2 = base.p1, base.p2
        positions = [
            ("near-p2", p2 + 0.10 * (p1 - p2)),
            ("optimal", base.alpha),
            ("near-p1", p1 - 0.10 * (p1 - p2)),
        ]
        for label, alpha in positions:
            index = C2LSH(c=args.c, alpha=alpha, m=base.m, seed=args.seed,
                          page_manager=PageManager()).fit(dataset.data)
            summary = timed_queries(index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            table.add(dataset.name, f"{alpha:.4f}", label, k,
                      f"{summary.ratio:.4f}", f"{summary.recall:.4f}",
                      f"{summary.candidates:.0f}",
                      f"{summary.io_reads:.0f}")
    table.print()
    _save(args, table, "a1_alpha")
    return table


# --------------------------------------------------------------------------
# A2 — ablation: incremental virtual rehashing vs full recounting
# --------------------------------------------------------------------------

def exp_ablation_rehash(args):
    """A2: re-counting from scratch at every radius costs strictly more I/O.

    The starting radius unit is deliberately shrunk to a quarter of the
    estimated near-distance unit so every query walks several radius
    levels — otherwise most queries finish in round one and the two modes
    coincide trivially.
    """
    from ..core.scaling import estimate_base_radius

    table = Table(
        ["dataset", "mode", "k", "recall", "io_pages", "scanned_entries"],
        title="A2. Ablation: incremental expansion vs full recount",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        unit = estimate_base_radius(dataset.data, rng=args.seed) / 4.0
        for label, incremental in (("incremental", True), ("recount", False)):
            index = C2LSH(c=args.c, seed=args.seed, incremental=incremental,
                          base_radius=unit,
                          page_manager=PageManager()).fit(dataset.data)
            summary = timed_queries(index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            table.add(dataset.name, label, k, f"{summary.recall:.4f}",
                      f"{summary.io_reads:.0f}",
                      f"{summary.scanned_entries:.0f}")
    table.print()
    _save(args, table, "a2_rehash")
    return table


# --------------------------------------------------------------------------
# A3 — scalability in n and dim
# --------------------------------------------------------------------------

def exp_scalability(args):
    """A3: candidate/I-O growth with n and dim on controlled synthetics."""
    table = Table(
        ["axis", "n", "dim", "method", "ratio", "recall", "io_pages",
         "candidates", "ms/query"],
        title="A3. Scalability in n and dim (synthetic clusters)",
    )
    k = 10
    n_grid = [2_000, 5_000, 10_000, 20_000]
    d_grid = [16, 64, 256]
    combos = [("n", n, 50) for n in n_grid] + [("dim", 10_000, d)
                                               for d in d_grid]
    for axis, n, dim in combos:
        raw = gaussian_clusters(n + args.queries, dim, n_clusters=20,
                                cluster_std=1.5, spread=10.0, seed=args.seed)
        data, queries = split_queries(raw, args.queries, seed=args.seed + 1)
        dataset = Dataset("synthetic", data, queries, "scalability grid")
        gt_ids, gt_dists = dataset.ground_truth(k)
        for name, factory in (
            ("c2lsh", lambda: C2LSH(c=args.c, seed=args.seed,
                                    page_manager=PageManager())),
            ("linear", lambda: LinearScan(page_manager=PageManager())),
        ):
            build = timed_build(factory, dataset.data)
            summary = timed_queries(build.index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            table.add(axis, dataset.n, dim, name, f"{summary.ratio:.4f}",
                      f"{summary.recall:.4f}", f"{summary.io_reads:.0f}",
                      f"{summary.candidates:.0f}",
                      f"{summary.query_time * 1e3:.2f}")
    table.print()
    _save(args, table, "a3_scalability")
    return table


# --------------------------------------------------------------------------
# A4 — termination conditions
# --------------------------------------------------------------------------

def exp_termination(args):
    """A4: T1 keeps cost bounded; T2 alone verifies the full FP budget."""
    table = Table(
        ["dataset", "variant", "k", "recall", "ratio", "io_pages",
         "candidates", "stopped_by"],
        title="A4. Ablation: termination rules",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        variants = (
            ("T1+T2", dict()),
            ("T2-only", dict(use_t1=False)),
            ("T1-only", dict(beta=0.999)),
        )
        for label, overrides in variants:
            index = C2LSH(c=args.c, seed=args.seed,
                          page_manager=PageManager(), **overrides)
            index.fit(dataset.data)
            start = time.perf_counter()
            results = index.query_batch(dataset.queries, k=k)
            elapsed = time.perf_counter() - start
            from .metrics import evaluate_results
            summary = evaluate_results(results, gt_ids[:, :k],
                                       gt_dists[:, :k], k,
                                       total_time=elapsed)
            stops = sorted({r.stats.terminated_by for r in results})
            table.add(dataset.name, label, k, f"{summary.recall:.4f}",
                      f"{summary.ratio:.4f}", f"{summary.io_reads:.0f}",
                      f"{summary.candidates:.0f}", "/".join(stops))
    table.print()
    _save(args, table, "a4_termination")
    return table


# --------------------------------------------------------------------------
# A5 — data-file layout (verification locality)
# --------------------------------------------------------------------------

def exp_layout(args):
    """A5: clustering the data file turns candidate locality into I/O."""
    table = Table(
        ["dataset", "layout", "k", "recall", "io_pages", "candidates"],
        title="A5. Ablation: raw-vector file layout",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        for layout in ("scattered", "id", "zorder"):
            index = C2LSH(c=args.c, seed=args.seed, data_layout=layout,
                          page_manager=PageManager()).fit(dataset.data)
            summary = timed_queries(index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            table.add(dataset.name, layout, k, f"{summary.recall:.4f}",
                      f"{summary.io_reads:.0f}",
                      f"{summary.candidates:.0f}")
    table.print()
    _save(args, table, "a5_layout")
    return table


# --------------------------------------------------------------------------
# devices — page counts priced on HDD / SSD / NVMe
# --------------------------------------------------------------------------

def exp_devices(args):
    """Estimated per-query device time for every method (cost model).

    Index probes/verifications are priced as random reads; the linear
    scan reads the data file front to back, so its pages amortize seeks
    over one long run.
    """
    from ..storage import IOStats
    from ..storage.costmodel import HDD, NVME, SSD, estimate_seconds

    table = Table(
        ["dataset", "method", "io_pages", "access", "hdd_ms", "ssd_ms",
         "nvme_ms", "cpu_ms"],
        title="Device-time estimates per query (k=10)",
    )
    k = 10
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        factories = _method_factories(args, lambda _n: PageManager())
        for name, factory in factories.items():
            build = timed_build(factory, dataset.data)
            summary = timed_queries(build.index, dataset.queries, k,
                                    gt_ids[:, :k], gt_dists[:, :k])
            pages = int(round(summary.io_reads))
            io = IOStats(reads=pages, writes=0)
            run = max(1, pages) if name == "linear" else 1
            table.add(dataset.name, name, pages,
                      "seq" if name == "linear" else "random",
                      f"{estimate_seconds(io, HDD, read_run_length=run) * 1e3:.1f}",
                      f"{estimate_seconds(io, SSD, read_run_length=run) * 1e3:.2f}",
                      f"{estimate_seconds(io, NVME, read_run_length=run) * 1e3:.3f}",
                      f"{summary.query_time * 1e3:.2f}")
    table.print()
    _save(args, table, "devices")
    return table


# --------------------------------------------------------------------------
# compare — paired significance test between two methods
# --------------------------------------------------------------------------

def exp_compare(args):
    """Paired sign test + bootstrap CI between the first two --methods."""
    from .significance import bootstrap_mean_diff, sign_test

    if len(args.methods) < 2:
        raise SystemExit("compare needs two entries in --methods")
    name_a, name_b = args.methods[0], args.methods[1]
    table = Table(
        ["dataset", "metric", f"mean({name_a})", f"mean({name_b})",
         "wins/losses/ties", "p(sign)", "CI(mean diff)"],
        title=f"Paired comparison: {name_a} vs {name_b} "
              f"(k={args.ks[len(args.ks) // 2]})",
    )
    k = args.ks[len(args.ks) // 2]
    for dataset in _datasets(args):
        gt_ids, gt_dists = _ground_truth(dataset, k)
        factories = _method_factories(args, lambda _n: PageManager())
        summaries = {}
        for name in (name_a, name_b):
            build = timed_build(factories[name], dataset.data)
            summaries[name] = timed_queries(build.index, dataset.queries,
                                            k, gt_ids[:, :k],
                                            gt_dists[:, :k])
        for metric in ("recalls", "ratios"):
            a = getattr(summaries[name_a], metric)
            b = getattr(summaries[name_b], metric)
            test = sign_test(a, b)
            boot = bootstrap_mean_diff(a, b, seed=args.seed)
            table.add(
                dataset.name, metric[:-1],
                f"{np.mean(a):.4f}", f"{np.mean(b):.4f}",
                f"{test.wins}/{test.losses}/{test.ties}",
                f"{test.p_value:.3f}",
                f"[{boot.ci_low:+.4f}, {boot.ci_high:+.4f}]",
            )
    table.print()
    _save(args, table, "compare")
    return table


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

EXPERIMENTS = {
    "table-params": exp_table_params,
    "table-index": exp_table_index,
    "vs-k": exp_vs_k,
    "effect-c": exp_effect_c,
    "tradeoff": exp_tradeoff,
    "ablation-alpha": exp_ablation_alpha,
    "ablation-rehash": exp_ablation_rehash,
    "scalability": exp_scalability,
    "termination": exp_termination,
    "layout": exp_layout,
    "devices": exp_devices,
    "compare": exp_compare,
}


def build_parser():
    """The harness's argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="c2lsh-harness",
        description="Regenerate the C2LSH paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment ID from DESIGN.md section 6")
    parser.add_argument("--datasets", nargs="+", default=["mnist", "color"],
                        choices=sorted(PROFILES),
                        help="dataset profiles to run on")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="dataset size multiplier (1.0 = paper size)")
    parser.add_argument("--queries", type=int, default=50,
                        help="held-out queries per dataset")
    parser.add_argument("--ks", type=int, nargs="+", default=list(DEFAULT_KS),
                        help="k values for the vs-k experiments")
    parser.add_argument("--c", type=int, default=2,
                        help="approximation ratio")
    parser.add_argument("--delta", type=float, default=0.01,
                        help="false-negative probability bound")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--methods", nargs="+",
                        default=["c2lsh", "qalsh", "lsb", "e2lsh", "mplsh",
                                 "linear"],
                        choices=["c2lsh", "qalsh", "lsb", "e2lsh", "mplsh",
                                 "linear"])
    parser.add_argument("--mp-probes", type=int, default=16,
                        help="extra probes per table for Multi-Probe LSH")
    parser.add_argument("--lsb-trees", type=int, default=10,
                        help="LSB-forest trees (theory value is far larger)")
    parser.add_argument("--e2lsh-K", type=int, default=8)
    parser.add_argument("--e2lsh-L", type=int, default=64)
    parser.add_argument("--out-dir", default=None,
                        help="directory to drop per-experiment CSVs into")
    return parser


def _run_experiment(name, args, sink=None):
    """Run one experiment, traced into the sweep's shared sink.

    ``sink`` is the one :class:`SnapshotSink` ``main`` creates for the
    whole sweep when ``--out-dir`` is given; it is reset between
    experiments (see :meth:`SnapshotSink.reset`) so each
    ``{stem}_metrics.json`` reflects exactly one experiment.
    """
    if sink is not None:
        sink.reset()
        with tracing(sink, keep_events=False):
            return EXPERIMENTS[name](args)
    return EXPERIMENTS[name](args)


def _run_safely(name, args, sink=None):
    """Run one experiment, containing failures so a sweep can continue.

    Returns True on success. An unexpected exception is reported on
    stderr and — when ``--out-dir`` is given — recorded as
    ``{name}_error.json`` (type, message, traceback) next to where the
    experiment's CSV would have landed, plus a flight-recorder postmortem
    (``{name}_flight.json``) holding the telemetry tail leading up to the
    crash — so a long sweep both keeps going and leaves a
    machine-readable trail of what broke.
    ``KeyboardInterrupt`` and ``SystemExit`` still propagate: argument
    errors and user interrupts must not be swallowed as experiment
    failures.
    """
    try:
        _run_experiment(name, args, sink)
        return True
    except Exception as exc:
        print(f"experiment {name} failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        flight.note("experiment_failed", experiment=name,
                    error=type(exc).__name__, message=str(exc))
        if args.out_dir:
            os.makedirs(args.out_dir, exist_ok=True)
            stem = name.replace("-", "_")
            payload = {
                "experiment": name,
                "error": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }
            with open(os.path.join(args.out_dir,
                                   f"{stem}_error.json"), "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            flight.dump("experiment_failed",
                        extra={"experiment": name},
                        path=os.path.join(args.out_dir,
                                          f"{stem}_flight.json"),
                        force=True)
        return False


def main(argv=None):
    """CLI entry point; returns a process exit code.

    Individual experiments are fault-contained (see :func:`_run_safely`):
    a crash in one experiment of an ``all`` sweep is logged and the sweep
    continues; the exit code is 1 when anything failed.
    """
    args = build_parser().parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    sink = SnapshotSink() if args.out_dir else None
    failed = []
    for name in names:
        if args.experiment == "all":
            print(f"== {name} ==")
        if not _run_safely(name, args, sink):
            failed.append(name)
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
