"""Accuracy and cost metrics from the paper's evaluation protocol.

* **Overall ratio** — the paper's primary accuracy measure:
  ``(1/k) * sum_i dist(o_i, q) / dist(o_i*, q)`` where ``o_i`` is the i-th
  returned object and ``o_i*`` the true i-th NN. 1.0 is exact; the C2LSH
  guarantee bounds it by ``c**2`` with constant probability.
* **Recall** — fraction of the true top-k ids returned (secondary measure).
* **I/O cost** — pages read per query, from the shared
  :class:`repro.storage.PageManager` cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np

__all__ = ["overall_ratio", "recall", "QuerySetSummary", "evaluate_results"]

_EPS = 1e-12


def overall_ratio(result_dists, true_dists):
    """Overall (rank-wise) distance ratio of one query's answer.

    Missing answers (a method returning fewer than ``k``) are scored against
    the worst returned/true pair by convention ``inf``-free: each missing
    rank contributes the ratio of the farthest true distance to itself
    (i.e. 1.0) *times* a penalty is avoided — instead we simply compute the
    mean over the ranks that were returned and report misses separately via
    :func:`recall`. An empty result yields ``nan``.
    """
    result_dists = np.asarray(result_dists, dtype=np.float64)
    true_dists = np.asarray(true_dists, dtype=np.float64)
    if result_dists.size == 0:
        return float("nan")
    k = min(result_dists.size, true_dists.size)
    num = result_dists[:k] + _EPS
    den = true_dists[:k] + _EPS
    return float(np.mean(num / den))


def recall(result_ids, true_ids):
    """|returned ∩ true top-k| / k for one query."""
    true_ids = np.asarray(true_ids)
    if true_ids.size == 0:
        raise ValueError("true id set must be non-empty")
    result_ids = np.asarray(result_ids)
    hits = np.intersect1d(result_ids, true_ids, assume_unique=False).size
    return hits / true_ids.size


@dataclass
class QuerySetSummary:
    """Aggregated metrics over a query set (means unless noted)."""

    k: int
    n_queries: int
    ratio: float
    recall: float
    io_reads: float
    candidates: float
    scanned_entries: float
    rounds: float
    query_time: float = float("nan")
    ratios: list = field(default_factory=list, repr=False)
    recalls: list = field(default_factory=list, repr=False)

    def row(self):
        """Values in the canonical reporting order (see reporting.py)."""
        return [self.k, f"{self.ratio:.4f}", f"{self.recall:.4f}",
                f"{self.io_reads:.1f}", f"{self.candidates:.1f}",
                f"{self.query_time * 1e3:.2f}"]


def evaluate_results(results, true_ids, true_dists, k, total_time=None):
    """Summarize a list of :class:`QueryResult` against exact ground truth.

    Parameters
    ----------
    results:
        One :class:`repro.core.results.QueryResult` per query.
    true_ids, true_dists:
        Ground truth of shape ``(q, >=k)`` from
        :func:`repro.data.exact_knn`.
    k:
        The k the queries were run with.
    total_time:
        Optional wall-clock seconds for the whole batch; reported as
        per-query time.
    """
    true_ids = np.atleast_2d(np.asarray(true_ids))
    true_dists = np.atleast_2d(np.asarray(true_dists))
    if len(results) != true_ids.shape[0]:
        raise ValueError(
            f"{len(results)} results vs {true_ids.shape[0]} ground-truth rows"
        )
    if true_ids.shape[1] < k:
        raise ValueError(
            f"ground truth has only {true_ids.shape[1]} neighbors, need {k}"
        )
    ratios, recalls = [], []
    for res, ids_row, dists_row in zip(results, true_ids, true_dists):
        ratios.append(overall_ratio(res.distances, dists_row[:k]))
        recalls.append(recall(res.ids, ids_row[:k]))
    finite = [r for r in ratios if r == r]  # drop NaN from empty results
    return QuerySetSummary(
        k=k,
        n_queries=len(results),
        ratio=mean(finite) if finite else float("nan"),
        recall=mean(recalls),
        io_reads=mean(r.stats.io_reads for r in results),
        candidates=mean(r.stats.candidates for r in results),
        scanned_entries=mean(r.stats.scanned_entries for r in results),
        rounds=mean(r.stats.rounds for r in results),
        query_time=(total_time / len(results))
        if total_time is not None else float("nan"),
        ratios=ratios,
        recalls=recalls,
    )
