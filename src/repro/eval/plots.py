"""Terminal (ASCII) line charts for the figure-style experiments.

The paper's evaluation is figures, not tables; with no plotting stack
available offline, this module renders multi-series line charts directly in
the terminal so the harness can show *shapes* — crossovers, plateaus,
orderings — not just rows. Log-scaled axes are supported because most LSH
cost curves live on decades.

The renderer is deterministic (pure text), which also makes it testable.
"""

from __future__ import annotations

import math

__all__ = ["AsciiChart"]

_MARKERS = "ox+*#@%&"


class AsciiChart:
    """A multi-series scatter/line chart rendered as text.

    Parameters
    ----------
    width, height:
        Plot-area size in characters (excluding axes and legend).
    x_log, y_log:
        Render the axis on a log10 scale (values must be positive).
    """

    def __init__(self, width=64, height=18, x_log=False, y_log=False,
                 title=None, x_label="x", y_label="y"):
        if width < 8 or height < 4:
            raise ValueError("chart area too small to render")
        self.width = int(width)
        self.height = int(height)
        self.x_log = bool(x_log)
        self.y_log = bool(y_log)
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._series = []  # (name, [(x, y), ...])

    def add_series(self, name, xs, ys):
        """Add one named series; ``xs``/``ys`` must be equal-length."""
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if not xs:
            raise ValueError("series must contain at least one point")
        for axis_log, values, label in ((self.x_log, xs, "x"),
                                        (self.y_log, ys, "y")):
            if axis_log and any(v <= 0 for v in values):
                raise ValueError(
                    f"log-scaled {label} axis requires positive values"
                )
        self._series.append((str(name), list(zip(xs, ys))))
        return self

    def _transform(self, value, log):
        return math.log10(value) if log else value

    def _bounds(self):
        tx = [self._transform(x, self.x_log)
              for _, pts in self._series for x, _ in pts]
        ty = [self._transform(y, self.y_log)
              for _, pts in self._series for _, y in pts]
        x_lo, x_hi = min(tx), max(tx)
        y_lo, y_hi = min(ty), max(ty)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self):
        """Render the chart to a string."""
        if not self._series:
            raise ValueError("add at least one series before rendering")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def place(x, y, marker):
            tx = self._transform(x, self.x_log)
            ty = self._transform(y, self.y_log)
            col = round((tx - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = round((ty - y_lo) / (y_hi - y_lo) * (self.height - 1))
            grid[self.height - 1 - row][col] = marker

        for idx, (_, points) in enumerate(self._series):
            marker = _MARKERS[idx % len(_MARKERS)]
            for x, y in sorted(points):
                place(x, y, marker)

        def fmt(v, log):
            raw = 10 ** v if log else v
            if abs(raw) >= 1000 or (abs(raw) < 0.01 and raw != 0):
                return f"{raw:.1e}"
            return f"{raw:.3g}"

        lines = []
        if self.title:
            lines.append(self.title)
        y_hi_txt, y_lo_txt = fmt(y_hi, self.y_log), fmt(y_lo, self.y_log)
        margin = max(len(y_hi_txt), len(y_lo_txt), len(self.y_label)) + 1
        lines.append(f"{self.y_label:>{margin}}")
        for i, row in enumerate(grid):
            label = y_hi_txt if i == 0 else (
                y_lo_txt if i == self.height - 1 else "")
            lines.append(f"{label:>{margin}} |" + "".join(row))
        lines.append(" " * margin + " +" + "-" * self.width)
        x_lo_txt, x_hi_txt = fmt(x_lo, self.x_log), fmt(x_hi, self.x_log)
        pad = self.width - len(x_lo_txt) - len(x_hi_txt)
        lines.append(" " * (margin + 2) + x_lo_txt + " " * max(1, pad)
                     + x_hi_txt)
        lines.append(" " * (margin + 2) + self.x_label)
        legend = "   ".join(
            f"{_MARKERS[i % len(_MARKERS)]} {name}"
            for i, (name, _) in enumerate(self._series)
        )
        lines.append(" " * (margin + 2) + legend)
        return "\n".join(lines)

    def print(self, file=None):
        """Render and print the chart, followed by a blank line."""
        print(self.render(), file=file)
        print(file=file)
