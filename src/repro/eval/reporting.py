"""Plain-text table rendering for experiment output.

The harness prints the same rows the paper's tables/figures report; these
helpers keep that output aligned, diff-able, and optionally CSV-exportable
so EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

import csv
import io

__all__ = ["format_table", "write_csv", "Table"]


def format_table(headers, rows, title=None):
    """Render an aligned monospace table as a string."""
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path, headers, rows):
    """Write a table to CSV (for plotting outside the harness)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


class Table:
    """Accumulates rows, then prints and/or saves in one go."""

    def __init__(self, headers, title=None):
        self.headers = list(headers)
        self.title = title
        self.rows = []

    def add(self, *cells):
        """Append one row (as positional cells or a single list/tuple)."""
        if len(cells) == 1 and isinstance(cells[0], (list, tuple)):
            cells = tuple(cells[0])
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self):
        """The table as an aligned monospace string."""
        return format_table(self.headers, self.rows, title=self.title)

    def print(self, file=None):
        """Print the rendered table followed by a blank line."""
        print(self.render(), file=file)
        print(file=file)

    def save_csv(self, path):
        """Write headers + rows to a CSV file."""
        write_csv(path, self.headers, self.rows)

    def __str__(self):
        return self.render()


def _self_test():  # pragma: no cover - debugging helper
    buf = io.StringIO()
    t = Table(["a", "bb"], title="demo")
    t.add(1, 2)
    t.print(file=buf)
    return buf.getvalue()
