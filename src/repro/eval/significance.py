"""Statistical comparison of two methods on a shared query set.

"Method A beats method B" claims in ANN evaluations are per-query paired
observations — the right tools are paired tests, not eyeballing means.
This module provides the two standard ones used for such comparisons:

* :func:`sign_test` — distribution-free paired sign test (exact binomial
  tail), robust to the heavy-tailed per-query costs LSH produces;
* :func:`bootstrap_mean_diff` — percentile bootstrap confidence interval
  for the mean paired difference.

Both consume plain per-query metric vectors (e.g. ``summary.recalls`` or
per-query I/O), so they compose with any metric the harness records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["SignTestResult", "sign_test", "BootstrapResult",
           "bootstrap_mean_diff"]


@dataclass
class SignTestResult:
    """Outcome of a paired sign test."""

    n_pairs: int
    wins: int        # pairs where a > b
    losses: int      # pairs where a < b
    ties: int
    p_value: float   # two-sided, ties dropped (standard treatment)

    def significant(self, alpha=0.05):
        """Whether the difference is significant at level alpha."""
        return self.p_value <= alpha


def _binomial_two_sided_p(k, n):
    """Exact two-sided binomial(n, 1/2) p-value for observing ``k``."""
    if n == 0:
        return 1.0
    # P[X <= min(k, n-k)] + P[X >= max(k, n-k)] under p = 1/2.
    lo = min(k, n - k)
    tail = sum(math.comb(n, i) for i in range(0, lo + 1)) / 2 ** n
    p = 2.0 * tail
    if lo == n - lo:  # the two tails overlap at the center
        p -= math.comb(n, lo) / 2 ** n
    return min(1.0, p)


def sign_test(a, b):
    """Paired sign test of per-query metrics ``a`` vs ``b``.

    Returns a :class:`SignTestResult`; a small ``p_value`` means the two
    methods genuinely differ on this query distribution (direction given by
    ``wins`` vs ``losses``).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("a and b must be equal-length non-empty 1-D arrays")
    diff = a - b
    wins = int(np.count_nonzero(diff > 0))
    losses = int(np.count_nonzero(diff < 0))
    ties = int(diff.size - wins - losses)
    effective = wins + losses
    p = _binomial_two_sided_p(wins, effective)
    return SignTestResult(n_pairs=int(diff.size), wins=wins, losses=losses,
                          ties=ties, p_value=p)


@dataclass
class BootstrapResult:
    """Percentile-bootstrap CI for the mean paired difference ``a - b``."""

    mean_diff: float
    ci_low: float
    ci_high: float
    confidence: float
    n_resamples: int

    @property
    def excludes_zero(self):
        """True when the interval rules out \"no difference\"."""
        return self.ci_low > 0 or self.ci_high < 0


def bootstrap_mean_diff(a, b, confidence=0.95, n_resamples=2000, seed=0):
    """Bootstrap CI for ``mean(a - b)`` over paired per-query metrics."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("a and b must be equal-length non-empty 1-D arrays")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError(f"need at least 10 resamples, got {n_resamples}")
    diff = a - b
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, diff.size, size=(int(n_resamples), diff.size))
    means = diff[idx].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [tail, 1.0 - tail])
    return BootstrapResult(
        mean_diff=float(diff.mean()), ci_low=float(lo), ci_high=float(hi),
        confidence=float(confidence), n_resamples=int(n_resamples),
    )
