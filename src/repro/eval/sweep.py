"""Experiment execution helpers: timed builds, timed query batches, grids.

These are the nuts and bolts the harness and the benchmark suite share, so
every experiment measures builds and queries the same way.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from .metrics import QuerySetSummary, evaluate_results

__all__ = ["BuildReport", "RunRecord", "timed_build", "timed_queries",
           "run_experiment", "grid", "best_under_recall"]


@dataclass
class BuildReport:
    """Outcome of building one index."""

    index: object
    build_time: float
    index_pages: int = 0


@dataclass
class RunRecord:
    """One (method, dataset, k, config) experiment cell."""

    method: str
    dataset: str
    k: int
    summary: QuerySetSummary
    build: BuildReport = None
    config: dict = field(default_factory=dict)


def timed_build(factory, data):
    """Build ``factory().fit(data)`` under a wall clock; report pages if any."""
    start = time.perf_counter()
    index = factory().fit(data)
    elapsed = time.perf_counter() - start
    pages = 0
    try:
        pages = index.index_pages()
    except (RuntimeError, AttributeError):
        pass
    return BuildReport(index=index, build_time=elapsed, index_pages=pages)


def timed_queries(index, queries, k, true_ids, true_dists):
    """Run a query batch under a wall clock and summarize against truth."""
    start = time.perf_counter()
    results = index.query_batch(queries, k=k)
    elapsed = time.perf_counter() - start
    return evaluate_results(results, true_ids, true_dists, k,
                            total_time=elapsed)


def run_experiment(method_name, factory, dataset, k, true_ids, true_dists,
                   config=None):
    """Build + query one method on one dataset at one ``k``."""
    build = timed_build(factory, dataset.data)
    summary = timed_queries(build.index, dataset.queries, k,
                            true_ids, true_dists)
    return RunRecord(method=method_name, dataset=dataset.name, k=k,
                     summary=summary, build=build, config=dict(config or {}))


def grid(**axes):
    """Iterate the cartesian product of named parameter lists as dicts.

    >>> list(grid(a=[1, 2], b=["x"]))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def best_under_recall(records, min_recall, cost=lambda r: r.summary.io_reads):
    """Cheapest record meeting a recall floor (papers' 'at X% recall' rows).

    Returns ``None`` when no record reaches the floor.
    """
    eligible = [r for r in records if r.summary.recall >= min_recall]
    if not eligible:
        return None
    return min(eligible, key=cost)
