"""LSH families and collision-probability theory.

The sub-package provides the hash-function substrate C2LSH runs on: the
p-stable (Euclidean) family from the paper plus two binary families used by
the family-independence extension, and the analytic probability models the
parameter machinery needs.
"""

from .bitsample import BitSamplingFamily, BitSamplingFunctions
from .cauchy import (
    CauchyFamily,
    CauchyFunctions,
    cauchy_collision_probability,
    choose_w_l1,
)
from .diagnostics import (
    CalibrationReport,
    check_family_calibration,
    empirical_collision_probability,
    estimate_rho,
)
from .family import LSHFamily, LSHFunctions
from .probability import (
    angular_collision_probability,
    choose_w,
    hamming_collision_probability,
    pstable_collision_probability,
    rho,
)
from .pstable import PStableFamily, PStableFunctions
from .signrp import SignRandomProjectionFamily, SignRandomProjectionFunctions

__all__ = [
    "LSHFamily",
    "LSHFunctions",
    "PStableFamily",
    "PStableFunctions",
    "SignRandomProjectionFamily",
    "SignRandomProjectionFunctions",
    "BitSamplingFamily",
    "BitSamplingFunctions",
    "CauchyFamily",
    "CauchyFunctions",
    "cauchy_collision_probability",
    "choose_w_l1",
    "pstable_collision_probability",
    "angular_collision_probability",
    "hamming_collision_probability",
    "rho",
    "choose_w",
    "empirical_collision_probability",
    "check_family_calibration",
    "CalibrationReport",
    "estimate_rho",
]
