"""Bit-sampling LSH family for Hamming distance.

``h_i(o) = o[i]`` for a uniformly random coordinate ``i`` (Indyk & Motwani,
STOC 1998). The collision probability at Hamming distance ``s`` in ``dim``
dimensions is ``1 - s/dim``. Like the hyperplane family, bucket ids are
binary, so the family is not rehashable.
"""

from __future__ import annotations

import numpy as np

from .family import LSHFamily, LSHFunctions
from .probability import hamming_collision_probability

__all__ = ["BitSamplingFamily", "BitSamplingFunctions"]


class BitSamplingFunctions(LSHFunctions):
    """A batch of ``m`` sampled coordinates of binary vectors."""

    rehashable = False

    def __init__(self, coordinates, dim):
        coordinates = np.asarray(coordinates, dtype=np.int64)
        if coordinates.ndim != 1:
            raise ValueError("coordinates must be a 1-D index array")
        if np.any((coordinates < 0) | (coordinates >= dim)):
            raise ValueError("sampled coordinates out of range")
        self._coordinates = coordinates
        self.dim = int(dim)
        self.m = coordinates.shape[0]

    def hash(self, points):
        arr = np.asarray(points)
        single = arr.ndim == 1
        if single:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ValueError(
                f"expected binary points of dimension {self.dim}, "
                f"got shape {arr.shape}"
            )
        ids = arr[:, self._coordinates].astype(np.int64)
        return ids[0] if single else ids


class BitSamplingFamily(LSHFamily):
    """Factory/theory object for bit sampling over ``{0, 1}^dim``."""

    metric = "hamming"

    def __init__(self, dim):
        if dim < 1:
            raise ValueError(f"dim must be a positive integer, got {dim}")
        self.dim = int(dim)

    def sample(self, m, rng):
        m = self._check_m(m)
        coordinates = rng.integers(0, self.dim, size=m)
        return BitSamplingFunctions(coordinates, self.dim)

    def collision_probability(self, s):
        return hamming_collision_probability(s, self.dim)

    def distance(self, points, query):
        points = np.asarray(points)
        query = np.asarray(query)
        return np.count_nonzero(points != query, axis=1).astype(np.float64)

    def __repr__(self):
        return f"BitSamplingFamily(dim={self.dim})"
