"""The 1-stable (Cauchy) LSH family for Manhattan (l1) distance.

Datar et al.'s p-stable construction instantiated at p = 1::

    h_{a,b}(o) = floor((a . o + b) / w)

with each entry of ``a`` drawn from the standard Cauchy distribution. For
two points at l1 distance ``s``, the projection difference is Cauchy with
scale ``s``, giving the collision probability::

    p(s) = 2*atan(w/s)/pi - ln(1 + (w/s)^2) / (pi * (w/s))

The bucket ids are rehashable exactly like the Gaussian family's, so C2LSH
runs over l1 **with virtual rehashing intact** — the l_p generality the
dynamic-collision-counting line of work (C2LSH -> QALSH -> LazyLSH)
develops. This module is an extension beyond the 2012 paper (which
evaluates l2 only); it is exercised by the family-independence tests and
the extensions benchmark.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize_scalar

from ..kernels import manhattan_distances
from .family import LSHFamily, LSHFunctions

__all__ = ["CauchyFamily", "CauchyFunctions",
           "cauchy_collision_probability", "choose_w_l1"]


def cauchy_collision_probability(s, w=1.0):
    """Collision probability of the quantized Cauchy projection at l1
    distance ``s`` (vectorized)."""
    if w <= 0:
        raise ValueError(f"bucket width w must be positive, got {w}")
    s_arr = np.asarray(s, dtype=np.float64)
    if np.any(s_arr < 0):
        raise ValueError("distances must be non-negative")
    scalar = s_arr.ndim == 0
    s_arr = np.atleast_1d(s_arr)
    p = np.ones_like(s_arr)
    positive = s_arr > 0
    t = w / s_arr[positive]
    p[positive] = (2.0 * np.arctan(t) / math.pi
                   - np.log1p(t * t) / (math.pi * t))
    np.clip(p, 0.0, 1.0, out=p)
    if scalar:
        return float(p[0])
    return p


def choose_w_l1(c, lo=0.05, hi=40.0):
    """Bucket width maximizing the gap ``p1 - p2`` for the l1 family.

    Unlike the Gaussian family, the Cauchy family's rho decreases
    monotonically in ``w`` (its infimum ``1/c`` is only approached as every
    bucket swallows the whole dataset), so rho-minimization has no interior
    optimum. For C2LSH the right objective is different anyway: the table
    count ``m`` scales as ``1/(p1 - p2)**2`` (Hoeffding exponents), so the
    gap-maximizing width directly minimizes the index size.
    """
    if c <= 1:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")

    def objective(w):
        p1 = cauchy_collision_probability(1.0, w)
        p2 = cauchy_collision_probability(float(c), w)
        return p2 - p1  # minimize the negative gap

    result = minimize_scalar(objective, bounds=(lo, hi), method="bounded")
    return float(result.x)


class CauchyFunctions(LSHFunctions):
    """A batch of ``m`` quantized Cauchy projections sharing one width."""

    rehashable = True

    def __init__(self, projections, offsets, w):
        projections = np.asarray(projections, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        if projections.ndim != 2:
            raise ValueError("projections must have shape (dim, m)")
        if offsets.shape != (projections.shape[1],):
            raise ValueError("offsets must have shape (m,)")
        if w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        self._projections = projections
        self._offsets = offsets
        self.w = float(w)
        self.dim = projections.shape[0]
        self.m = projections.shape[1]

    def project(self, points):
        """Raw (unquantized) projections ``a . o + b``, shape ``(n, m)``."""
        arr, single = self._as_matrix(points, self.dim)
        proj = arr @ self._projections + self._offsets
        return proj[0] if single else proj

    def hash(self, points):
        """Quantize projections into integer bucket ids at base radius."""
        proj = self.project(points)
        return np.floor(proj / self.w).astype(np.int64)


class CauchyFamily(LSHFamily):
    """Factory/theory object for the Manhattan-distance (l1) family."""

    metric = "manhattan"

    def __init__(self, dim, w=None, c=2.0):
        if dim < 1:
            raise ValueError(f"dim must be a positive integer, got {dim}")
        self.dim = int(dim)
        self.w = float(w) if w is not None else choose_w_l1(c)
        if self.w <= 0:
            raise ValueError(f"bucket width w must be positive, got {self.w}")

    def sample(self, m, rng):
        m = self._check_m(m)
        projections = rng.standard_cauchy((self.dim, m))
        offsets = rng.uniform(0.0, self.w, size=m)
        return CauchyFunctions(projections, offsets, self.w)

    def collision_probability(self, s):
        return cauchy_collision_probability(s, self.w)

    def distance(self, points, query):
        # Kernel-tier verification: the deterministic fold reduction keeps
        # numpy and numba tiers bit-identical (see repro.kernels).
        return manhattan_distances(points, query)

    def __repr__(self):
        return f"CauchyFamily(dim={self.dim}, w={self.w:.4g})"
