"""Empirical diagnostics for LSH families.

The whole C2LSH parameter machinery rests on the analytic collision model
``p(s)``; if an implementation (or a custom family) deviates from its
model, every downstream guarantee silently breaks. These diagnostics
measure the *actual* collision behaviour of a sampled family and compare it
to the claimed model — the checks this repository's own test suite runs,
exposed as a public API for users bringing their own families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "empirical_collision_probability",
    "CalibrationReport",
    "check_family_calibration",
    "estimate_rho",
]


def empirical_collision_probability(family, distance, n_functions=2000,
                                    dim=None, seed=0):
    """Measured collision rate of two points at the given distance.

    Uses a fixed pair ``(0, distance * e1)`` — valid for the isotropic
    families shipped here (their collision probability depends only on the
    distance). Returns the rate over ``n_functions`` i.i.d. functions.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if n_functions < 1:
        raise ValueError(f"need at least one function, got {n_functions}")
    dim = int(dim if dim is not None else getattr(family, "dim"))
    rng = np.random.default_rng(seed)
    funcs = family.sample(n_functions, rng)
    a, b = _pair_at_distance(family, distance, dim)
    return float(np.mean(funcs.hash(a) == funcs.hash(b)))


def _pair_at_distance(family, distance, dim):
    """Two points whose distance under the family's metric is ``distance``."""
    metric = getattr(family, "metric", "euclidean")
    if metric == "angular":
        if dim < 2:
            raise ValueError("angular pairs need dim >= 2")
        if not (0 <= distance <= math.pi):
            raise ValueError("angular distances must lie in [0, pi]")
        a = np.zeros(dim)
        a[0] = 1.0
        b = np.zeros(dim)
        b[0], b[1] = math.cos(distance), math.sin(distance)
        return a, b
    if metric == "hamming":
        flips = int(round(distance))
        if not (0 <= flips <= dim):
            raise ValueError(f"Hamming distance must lie in [0, {dim}]")
        a = np.zeros(dim, dtype=np.int64)
        b = a.copy()
        b[:flips] = 1
        return a, b
    a = np.zeros(dim)
    b = np.zeros(dim)
    b[0] = distance
    return a, b


@dataclass
class CalibrationReport:
    """Model-vs-measurement comparison at several distances."""

    distances: list
    model: list
    measured: list
    max_abs_error: float
    tolerance: float

    @property
    def calibrated(self):
        """Pass/fail verdict under the configured tolerance."""
        return self.max_abs_error <= self.tolerance

    def rows(self):
        """Table rows (distance, model p, measured p, error)."""
        return [
            (d, m, e, abs(m - e))
            for d, m, e in zip(self.distances, self.model, self.measured)
        ]


def check_family_calibration(family, distances, n_functions=4000,
                             tolerance=0.03, seed=0):
    """Compare a family's analytic ``collision_probability`` to measurement.

    Returns a :class:`CalibrationReport`; ``report.calibrated`` is the
    pass/fail verdict under the given absolute tolerance (statistical noise
    at ``n_functions = 4000`` is about ±0.016 at p = 0.5, so the default
    tolerance has margin).
    """
    distances = [float(d) for d in distances]
    if not distances:
        raise ValueError("provide at least one distance to check")
    model = [float(family.collision_probability(d)) for d in distances]
    measured = [
        empirical_collision_probability(family, d, n_functions, seed=seed)
        for d in distances
    ]
    errors = [abs(m - e) for m, e in zip(model, measured)]
    return CalibrationReport(
        distances=distances, model=model, measured=measured,
        max_abs_error=max(errors), tolerance=float(tolerance),
    )


def estimate_rho(family, radius=1.0, c=2.0, n_functions=4000, seed=0):
    """Empirical quality exponent ``ln(1/p1) / ln(1/p2)`` of a family.

    Useful to sanity-check a custom family's sensitivity before handing it
    to C2LSH: values approaching 1 mean near and far points are barely
    distinguishable; ``>= 1`` means the family is not sensitive at this
    ``(radius, c)`` and C2LSH's parameter design would fail.
    """
    if radius <= 0 or c <= 1:
        raise ValueError("need radius > 0 and c > 1")
    p1 = empirical_collision_probability(family, radius, n_functions,
                                         seed=seed)
    p2 = empirical_collision_probability(family, c * radius, n_functions,
                                         seed=seed + 1)
    if not (0.0 < p2 < 1.0) or not (0.0 < p1 < 1.0):
        raise ValueError(
            f"degenerate measured probabilities p1={p1}, p2={p2}; "
            "increase n_functions or adjust the radius"
        )
    return math.log(1.0 / p1) / math.log(1.0 / p2)
