"""Abstract interfaces for LSH families.

C2LSH's dynamic collision counting framework is written against these two
abstractions so the same counting engine serves Euclidean, angular, and
Hamming metrics (the family-independence extension described in DESIGN.md):

* :class:`LSHFamily` — a distribution over hash functions, able to *sample*
  a batch of ``m`` i.i.d. functions and to report its analytic collision
  probability at a given distance.
* :class:`LSHFunctions` — a concrete sampled batch, able to hash a matrix of
  points into an ``(n, m)`` array of integer bucket ids.

A family is *rehashable* when its bucket ids support C2LSH's virtual
rehashing: the radius-``R`` bucket of a point is the union of ``R``
consecutive base buckets, i.e. two points collide at radius ``R`` iff
``floor(h(o) / R) == floor(h(q) / R)``. Only quantized-projection families
(the p-stable family) are rehashable; binary families (sign projections,
bit sampling) operate at a single granularity.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["LSHFamily", "LSHFunctions"]


class LSHFunctions(abc.ABC):
    """A sampled batch of ``m`` i.i.d. hash functions from one family."""

    #: Number of hash functions in the batch.
    m: int
    #: Whether ``floor(ids / R)`` implements hashing at radius ``R``.
    rehashable: bool = False

    @abc.abstractmethod
    def hash(self, points):
        """Hash ``points`` of shape ``(n, dim)`` to ``(n, m)`` bucket ids.

        Bucket ids are ``int64``. A single point of shape ``(dim,)`` is
        accepted and produces shape ``(m,)``.
        """

    def _as_matrix(self, points, dim):
        """Validate input and return a 2-D view plus a squeeze flag."""
        arr = np.asarray(points, dtype=np.float64)
        single = arr.ndim == 1
        if single:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != dim:
            raise ValueError(
                f"expected points of dimension {dim}, got shape {arr.shape}"
            )
        return arr, single


class LSHFamily(abc.ABC):
    """A distribution over locality-sensitive hash functions."""

    #: Name of the distance metric the family is sensitive to.
    metric: str

    @abc.abstractmethod
    def sample(self, m, rng):
        """Sample ``m`` i.i.d. hash functions.

        Parameters
        ----------
        m:
            Number of functions, ``m >= 1``.
        rng:
            A ``numpy.random.Generator``.

        Returns
        -------
        LSHFunctions
        """

    @abc.abstractmethod
    def collision_probability(self, s):
        """Analytic collision probability at distance ``s`` (base radius)."""

    @abc.abstractmethod
    def distance(self, points, query):
        """Distances from each row of ``points`` to ``query``, shape ``(n,)``."""

    def probabilities(self, c, radius=1.0):
        """Return ``(p1, p2)`` = collision probabilities at ``radius``/``c*radius``."""
        p1 = float(self.collision_probability(radius))
        p2 = float(self.collision_probability(c * radius))
        if not p1 > p2:
            raise ValueError(
                f"family is not sensitive at radius {radius} with c={c}: "
                f"p1={p1} <= p2={p2}"
            )
        return p1, p2

    @staticmethod
    def _check_m(m):
        if not isinstance(m, (int, np.integer)) or m < 1:
            raise ValueError(f"m must be a positive integer, got {m!r}")
        return int(m)
