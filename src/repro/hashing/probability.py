"""Collision-probability theory for LSH families.

This module implements the analytic collision-probability models that the
C2LSH parameter machinery (``repro.core.params``) is built on:

* :func:`pstable_collision_probability` — probability that two points at
  Euclidean distance ``s`` fall into the same bucket under a quantized
  2-stable (Gaussian) projection ``h(o) = floor((a.o + b) / w)``
  (Datar et al., SoCG 2004, eq. used verbatim by C2LSH).
* :func:`angular_collision_probability` — sign-random-projection family
  (Charikar, STOC 2002).
* :func:`hamming_collision_probability` — bit-sampling family
  (Indyk & Motwani, STOC 1998).
* :func:`rho` and :func:`choose_w` — the LSH quality exponent
  ``rho = ln(1/p1) / ln(1/p2)`` and a bucket-width optimizer.

All functions are vectorized over the distance argument.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import ndtr  # standard normal CDF, vectorized and fast

__all__ = [
    "pstable_collision_probability",
    "angular_collision_probability",
    "hamming_collision_probability",
    "rho",
    "choose_w",
]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def pstable_collision_probability(s, w=1.0):
    """Collision probability of the quantized Gaussian-projection family.

    For two points at Euclidean distance ``s`` and bucket width ``w``::

        p(s) = 1 - 2*Phi(-w/s) - 2/(sqrt(2*pi)*(w/s)) * (1 - exp(-(w/s)^2/2))

    where ``Phi`` is the standard normal CDF. ``p`` is monotonically
    decreasing in ``s`` and approaches 1 as ``s -> 0``.

    Parameters
    ----------
    s:
        Distance(s) between the two points; scalar or array, ``s >= 0``.
    w:
        Bucket width of the hash function, ``w > 0``.

    Returns
    -------
    float or numpy.ndarray
        The collision probability, in ``(0, 1]``, with the same shape as
        ``s``.
    """
    if w <= 0:
        raise ValueError(f"bucket width w must be positive, got {w}")
    s_arr = np.asarray(s, dtype=np.float64)
    if np.any(s_arr < 0):
        raise ValueError("distances must be non-negative")
    scalar = s_arr.ndim == 0
    s_arr = np.atleast_1d(s_arr)

    p = np.ones_like(s_arr)
    positive = s_arr > 0
    t = w / s_arr[positive]
    p[positive] = (
        1.0
        - 2.0 * ndtr(-t)
        - 2.0 / (_SQRT_2PI * t) * (1.0 - np.exp(-0.5 * t * t))
    )
    # Guard against tiny negative values from floating-point cancellation
    # when s >> w (p -> 0 from above).
    np.clip(p, 0.0, 1.0, out=p)
    if scalar:
        return float(p[0])
    return p


def angular_collision_probability(theta):
    """Collision probability of sign random projections at angle ``theta``.

    ``p(theta) = 1 - theta / pi`` for ``theta`` in ``[0, pi]``.
    """
    theta_arr = np.asarray(theta, dtype=np.float64)
    if np.any((theta_arr < 0) | (theta_arr > math.pi + 1e-12)):
        raise ValueError("angles must lie in [0, pi]")
    p = 1.0 - theta_arr / math.pi
    if np.ndim(theta) == 0:
        return float(p)
    return p


def hamming_collision_probability(s, dim):
    """Collision probability of bit sampling at Hamming distance ``s``.

    ``p(s) = 1 - s / dim`` for ``0 <= s <= dim``.
    """
    if dim <= 0:
        raise ValueError(f"dimension must be positive, got {dim}")
    s_arr = np.asarray(s, dtype=np.float64)
    if np.any((s_arr < 0) | (s_arr > dim)):
        raise ValueError(f"Hamming distances must lie in [0, {dim}]")
    p = 1.0 - s_arr / dim
    if np.ndim(s) == 0:
        return float(p)
    return p


def rho(p1, p2):
    """The LSH quality exponent ``rho = ln(1/p1) / ln(1/p2)``.

    Smaller is better; sub-linear query time scales as ``n**rho``.
    Requires ``0 < p2 < p1 < 1``.
    """
    if not (0.0 < p2 < p1 < 1.0):
        raise ValueError(f"need 0 < p2 < p1 < 1, got p1={p1}, p2={p2}")
    return math.log(1.0 / p1) / math.log(1.0 / p2)


def choose_w(c, lo=0.05, hi=24.0):
    """Pick the bucket width minimizing ``rho`` for approximation ratio ``c``.

    C2LSH fixes one bucket width per approximation ratio; the published text
    does not pin the constant, so we use the standard practice of minimizing
    ``rho(p(1; w), p(c; w))`` over ``w`` (documented as a reconstruction in
    DESIGN.md). The optimum is bracketed within ``[lo, hi]``.
    """
    if c <= 1:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")

    def objective(w):
        p1 = pstable_collision_probability(1.0, w)
        p2 = pstable_collision_probability(float(c), w)
        return rho(p1, p2)

    result = minimize_scalar(objective, bounds=(lo, hi), method="bounded")
    return float(result.x)
