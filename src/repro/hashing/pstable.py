"""The 2-stable (Gaussian random projection) LSH family for Euclidean space.

This is the family C2LSH is built on (Datar et al., SoCG 2004)::

    h_{a,b}(o) = floor((a . o + b) / w)

with ``a`` a d-dimensional standard Gaussian vector and ``b`` uniform on
``[0, w)``. Its bucket ids are *rehashable*: merging ``R`` consecutive base
buckets realizes the hash function at search radius ``R``, which is exactly
C2LSH's virtual rehashing.
"""

from __future__ import annotations

import numpy as np

from ..kernels import euclidean_distances
from .family import LSHFamily, LSHFunctions
from .probability import choose_w, pstable_collision_probability

__all__ = ["PStableFamily", "PStableFunctions"]


class PStableFunctions(LSHFunctions):
    """A batch of ``m`` quantized Gaussian projections sharing one width."""

    rehashable = True

    def __init__(self, projections, offsets, w):
        projections = np.asarray(projections, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        if projections.ndim != 2:
            raise ValueError("projections must have shape (dim, m)")
        if offsets.shape != (projections.shape[1],):
            raise ValueError("offsets must have shape (m,)")
        if w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        self._projections = projections
        self._offsets = offsets
        self.w = float(w)
        self.dim = projections.shape[0]
        self.m = projections.shape[1]

    def project(self, points):
        """Raw (unquantized) projections ``a . o + b``, shape ``(n, m)``.

        Exposed separately because the query-aware extension
        (:class:`repro.core.qalsh.QALSH`) counts collisions on raw
        projections instead of pre-quantized buckets.
        """
        arr, single = self._as_matrix(points, self.dim)
        proj = arr @ self._projections + self._offsets
        return proj[0] if single else proj

    def hash(self, points):
        """Quantize projections into integer bucket ids at base radius."""
        proj = self.project(points)
        return np.floor(proj / self.w).astype(np.int64)


class PStableFamily(LSHFamily):
    """Factory/theory object for the Euclidean p-stable family.

    Parameters
    ----------
    dim:
        Dimensionality of the data.
    w:
        Bucket width. When omitted, ``w`` is chosen to minimize the quality
        exponent ``rho`` for the given approximation ratio ``c``
        (see :func:`repro.hashing.probability.choose_w`).
    c:
        Approximation ratio used only for the default ``w`` choice.
    """

    metric = "euclidean"

    def __init__(self, dim, w=None, c=2.0):
        if dim < 1:
            raise ValueError(f"dim must be a positive integer, got {dim}")
        self.dim = int(dim)
        self.w = float(w) if w is not None else choose_w(c)
        if self.w <= 0:
            raise ValueError(f"bucket width w must be positive, got {self.w}")

    def sample(self, m, rng):
        m = self._check_m(m)
        projections = rng.standard_normal((self.dim, m))
        offsets = rng.uniform(0.0, self.w, size=m)
        return PStableFunctions(projections, offsets, self.w)

    def collision_probability(self, s):
        return pstable_collision_probability(s, self.w)

    def distance(self, points, query):
        # Kernel-tier verification: the deterministic fold reduction keeps
        # numpy and numba tiers bit-identical (see repro.kernels).
        return euclidean_distances(points, query)

    def __repr__(self):
        return f"PStableFamily(dim={self.dim}, w={self.w:.4g})"
