"""Sign-random-projection LSH family for angular distance.

``h_a(o) = sign(a . o)`` with Gaussian ``a`` (Charikar, STOC 2002). The
collision probability at angle ``theta`` is ``1 - theta/pi``. Bucket ids are
binary, so the family is *not* rehashable — C2LSH runs in single-granularity
mode on top of it (a family-independence extension beyond the 2012 paper).
"""

from __future__ import annotations

import numpy as np

from .family import LSHFamily, LSHFunctions
from .probability import angular_collision_probability

__all__ = ["SignRandomProjectionFamily", "SignRandomProjectionFunctions"]


class SignRandomProjectionFunctions(LSHFunctions):
    """A batch of ``m`` hyperplane hashes; bucket ids are 0/1."""

    rehashable = False

    def __init__(self, projections):
        projections = np.asarray(projections, dtype=np.float64)
        if projections.ndim != 2:
            raise ValueError("projections must have shape (dim, m)")
        self._projections = projections
        self.dim = projections.shape[0]
        self.m = projections.shape[1]

    def hash(self, points):
        arr, single = self._as_matrix(points, self.dim)
        ids = (arr @ self._projections >= 0.0).astype(np.int64)
        return ids[0] if single else ids


class SignRandomProjectionFamily(LSHFamily):
    """Factory/theory object for the hyperplane family (angular metric)."""

    metric = "angular"

    def __init__(self, dim):
        if dim < 1:
            raise ValueError(f"dim must be a positive integer, got {dim}")
        self.dim = int(dim)

    def sample(self, m, rng):
        m = self._check_m(m)
        return SignRandomProjectionFunctions(rng.standard_normal((self.dim, m)))

    def collision_probability(self, s):
        """Collision probability at angular distance ``s`` (radians)."""
        return angular_collision_probability(s)

    def distance(self, points, query):
        """Angle (radians) between each row of ``points`` and ``query``."""
        points = np.asarray(points, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        q_norm = np.linalg.norm(query)
        p_norms = np.linalg.norm(points, axis=1)
        if q_norm == 0 or np.any(p_norms == 0):
            raise ValueError("angular distance is undefined for zero vectors")
        cosine = (points @ query) / (p_norms * q_norm)
        return np.arccos(np.clip(cosine, -1.0, 1.0))

    def __repr__(self):
        return f"SignRandomProjectionFamily(dim={self.dim})"
