"""Compiled counting-kernel tier with a bit-identical pure-numpy fallback.

The five primitives that dominate C2LSH query wall-clock — lockstep
row-wise binary search, dense rank-comparison counting, sparse
gather/accumulate, threshold scans (crossings + the T1 tally), and
candidate distance verification — are implemented twice:

* :mod:`repro.kernels._numpy` — vectorized numpy, the reference tier and
  the specification of every kernel's exact result;
* :mod:`repro.kernels._numba` — numba-jitted loops (the optional ``fast``
  extra: ``pip install repro[fast]``), operation-for-operation identical.

:mod:`repro.kernels.backend` selects the tier once at import —
``REPRO_KERNELS=numpy|numba`` forces it, ``numba`` requested-but-missing
raises — and :func:`active_backend` reports the selection for telemetry
and benchmark stamping. The wrappers below carry the shared validation and
dtype normalization so both tiers see identical inputs; call sites
(:mod:`repro.core.batchengine`, :mod:`repro.core.counting`,
:mod:`repro.core.c2lsh`, :mod:`repro.core.qalsh`,
:mod:`repro.storage.vsearch`, :mod:`repro.sharding.worker`) route every
hot call through them.
"""

from __future__ import annotations

import numpy as np

from . import backend
from .backend import (KernelBackendError, active_backend, backend_name,
                      reselect, select)

__all__ = [
    "KernelBackendError", "active_backend", "backend_name", "reselect",
    "select", "row_searchsorted", "dense_counts", "sparse_counts",
    "crossings", "count_leq", "merge_sorted", "bincount_i32",
    "euclidean_distances", "manhattan_distances", "warmup",
]


def row_searchsorted(sorted_rows, targets, side="left"):
    """Insertion positions of ``targets[..., i]`` within ``sorted_rows[i]``.

    Parameters
    ----------
    sorted_rows:
        ``(m, n)`` array, each row sorted ascending.
    targets:
        ``(m,)`` array of per-row search keys, or ``(..., m)`` — most
        usefully ``(Q, m)`` — to search every row with a whole batch of
        keys at once. Row ``i`` always answers ``targets[..., i]``.
    side:
        ``"left"`` (first position with ``row[pos] >= target``) or
        ``"right"`` (first position with ``row[pos] > target``), matching
        ``numpy.searchsorted`` semantics.

    Returns
    -------
    numpy.ndarray of int64, same shape as ``targets``, values in ``[0, n]``.
    """
    sorted_rows = np.asarray(sorted_rows)
    targets = np.asarray(targets)
    if sorted_rows.ndim != 2:
        raise ValueError(f"sorted_rows must be 2-D, got {sorted_rows.shape}")
    m, n = sorted_rows.shape
    if targets.ndim == 0 or targets.shape[-1] != m:
        raise ValueError(
            f"targets must have shape (..., {m}), got {targets.shape}"
        )
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if n == 0:
        return np.zeros(targets.shape, dtype=np.int64)
    flat = targets.reshape(-1, m)
    out = backend.active().row_searchsorted(sorted_rows, flat,
                                            side == "left")
    return out.reshape(targets.shape)


def dense_counts(rank, lo, hi):
    """Absolute collision counts at the covered intervals, ``(A, n)`` int32.

    ``rank`` is the ``(m, n)`` per-table sort position of every object;
    ``lo``/``hi`` are ``(A, m)`` covered position intervals. Object ``o``
    is counted for query ``i`` once per table ``j`` with
    ``lo[i, j] <= rank[j, o] < hi[i, j]``.
    """
    rank = np.asarray(rank)
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    return backend.active().dense_counts(rank, lo, hi)


def sparse_counts(order, seg_q, seg_t, seg_lo, lengths, n_queries):
    """Collision-count deltas from newly covered segments, ``(A, n)`` int32.

    Segment ``s`` adds one count to ``(seg_q[s], order[seg_t[s], p])`` for
    each position ``p`` in ``[seg_lo[s], seg_lo[s] + lengths[s])``; the
    result accumulates every segment over an ``(n_queries, n)`` zero
    matrix. Accumulation is exact integer arithmetic, so both tiers agree
    whatever their internal order.
    """
    order = np.asarray(order, dtype=np.int64)
    seg_q = np.asarray(seg_q, dtype=np.int64)
    seg_t = np.asarray(seg_t, dtype=np.int64)
    seg_lo = np.asarray(seg_lo, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    return backend.active().sparse_counts(order, seg_q, seg_t, seg_lo,
                                          lengths, int(n_queries))


def crossings(counts, prev, threshold):
    """``(qs, ids)`` where ``counts >= threshold`` but ``prev < threshold``.

    Row-major (query then ascending object), both int64 — the order the
    sequential path verifies fresh candidates in.
    """
    counts = np.asarray(counts)
    prev = np.asarray(prev)
    return backend.active().crossings(counts, prev, int(threshold))


def count_leq(sorted_values, threshold):
    """Number of elements ``<= threshold`` in an ascending float64 array."""
    sorted_values = np.asarray(sorted_values, dtype=np.float64)
    return backend.active().count_leq(sorted_values, float(threshold))


def merge_sorted(sorted_values, new_values):
    """Merge ``new_values`` (any order) into ascending ``sorted_values``."""
    sorted_values = np.asarray(sorted_values, dtype=np.float64)
    new_values = np.sort(np.asarray(new_values, dtype=np.float64))
    return backend.active().merge_sorted(sorted_values, new_values)


def bincount_i32(ids, n):
    """Occurrences of each id in ``[0, n)``, as int32 (collision deltas)."""
    ids = np.asarray(ids, dtype=np.int64)
    return backend.active().bincount_i32(ids, int(n))


def euclidean_distances(points, query):
    """Euclidean distances from each row of ``(n, d)`` points to ``query``.

    Reduced with a fixed balanced fold tree (see
    :func:`repro.kernels._numpy._fold_sum`) so both tiers produce
    bit-identical float64 results.
    """
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return backend.active().euclidean_distances(points, query)


def manhattan_distances(points, query):
    """Manhattan (l1) distances from each row of ``(n, d)`` to ``query``."""
    points = np.asarray(points, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    return backend.active().manhattan_distances(points, query)


def warmup():
    """Exercise every kernel on tiny inputs; returns :func:`active_backend`.

    On the numba tier this triggers (or loads from cache) every JIT
    compilation, so benchmarks calling it before their timed region
    exclude compile cost. Covers both the int64 and float64
    specializations of the search kernel.
    """
    ids = np.array([[0, 2, 4, 6]], dtype=np.int64)
    row_searchsorted(ids, np.array([[3]], dtype=np.int64))
    row_searchsorted(ids.astype(np.float64),
                     np.array([[3.0]]), side="right")
    rank = np.array([[0, 1, 2, 3]], dtype=np.int32)
    dense_counts(rank, np.zeros((1, 1), np.int64),
                 np.full((1, 1), 2, np.int64))
    order = np.array([[2, 0, 3, 1]], dtype=np.int64)
    sparse_counts(order, np.zeros(1, np.int64), np.zeros(1, np.int64),
                  np.zeros(1, np.int64), np.full(1, 2, np.int64), 1)
    crossings(np.array([[2, 0]], np.int32), np.array([[0, 0]], np.int32), 1)
    count_leq(np.array([0.0, 1.0]), 0.5)
    merge_sorted(np.array([0.0, 2.0]), np.array([1.0]))
    bincount_i32(np.array([0, 1, 1], np.int64), 3)
    pts = np.array([[1.0, 2.0, 3.0]])
    euclidean_distances(pts, np.zeros(3))
    manhattan_distances(pts, np.zeros(3))
    return active_backend()
