"""Numba-jitted kernel tier: compiled hot loops, bit-identical to numpy.

Importing this module requires numba (the ``fast`` extra); the backend
selector only imports it after a successful ``import numba`` probe. Every
function mirrors its counterpart in :mod:`repro.kernels._numpy` operation
for operation — integer kernels are exact by nature, and the distance
kernels perform the identical balanced-fold addition tree
(:func:`repro.kernels._numpy._fold_sum`) so float64 results match bit for
bit.

Compilation is lazy (first call per dtype specialization) and cached on
disk where possible; :func:`repro.kernels.warmup` exercises every kernel
on tiny inputs so benchmarks can exclude JIT cost from timed regions.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange


@njit(cache=True, parallel=True)
def _row_searchsorted(sorted_rows, targets, side_left):
    B, m = targets.shape
    n = sorted_rows.shape[1]
    out = np.empty((B, m), dtype=np.int64)
    for b in prange(B):
        for j in range(m):
            t = targets[b, j]
            lo = 0
            hi = n
            while lo < hi:
                mid = (lo + hi) >> 1
                v = sorted_rows[j, mid]
                if side_left:
                    go_right = v < t
                else:
                    go_right = v <= t
                if go_right:
                    lo = mid + 1
                else:
                    hi = mid
            out[b, j] = lo
    return out


def row_searchsorted(sorted_rows, targets, side_left):
    """Core lockstep binary search; see the numpy tier for the contract."""
    return _row_searchsorted(sorted_rows, targets, side_left)


@njit(cache=True, parallel=True)
def _dense_counts(rank, lo, hi):
    A, m = lo.shape
    n = rank.shape[1]
    out = np.zeros((A, n), dtype=np.int32)
    for i in prange(A):
        for j in range(m):
            lo_ij = lo[i, j]
            hi_ij = hi[i, j]
            for o in range(n):
                r = rank[j, o]
                if r >= lo_ij and r < hi_ij:
                    out[i, o] += 1
    return out


def dense_counts(rank, lo, hi):
    """Rank-comparison counting; see the numpy tier for the contract."""
    return _dense_counts(rank, lo, hi)


@njit(cache=True, parallel=True)
def _sparse_counts(order, seg_q, seg_t, seg_lo, lengths, qstarts, delta):
    A = delta.shape[0]
    # Segments are grouped by query, so each prange iteration owns its
    # delta row exclusively — no accumulation races.
    for i in prange(A):
        for s in range(qstarts[i], qstarts[i + 1]):
            t = seg_t[s]
            lo = seg_lo[s]
            for p in range(lo, lo + lengths[s]):
                delta[i, order[t, p]] += 1
    return delta


def sparse_counts(order, seg_q, seg_t, seg_lo, lengths, A):
    """Segment count-deltas accumulated into a preallocated ``(A, n)`` buffer.

    Integer additions commute exactly, so grouping segments by query (for
    race-free ``prange`` parallelism) yields the same matrix as any other
    order — including the numpy tier's chunked bincount.
    """
    n = order.shape[1]
    delta = np.zeros((A, n), dtype=np.int32)
    if lengths.size == 0:
        return delta
    by_q = np.argsort(seg_q, kind="stable")
    seg_q = seg_q[by_q]
    qstarts = np.searchsorted(seg_q, np.arange(A + 1, dtype=np.int64))
    return _sparse_counts(order, seg_q, seg_t[by_q], seg_lo[by_q],
                          lengths[by_q], qstarts, delta)


@njit(cache=True, parallel=True)
def _crossings(counts, prev, threshold, row_ends):
    A, n = counts.shape
    for i in prange(A):
        c = 0
        for o in range(n):
            if counts[i, o] >= threshold and prev[i, o] < threshold:
                c += 1
        row_ends[i] = c
    return row_ends


@njit(cache=True, parallel=True)
def _fill_crossings(counts, prev, threshold, offsets, qs, ids):
    A, n = counts.shape
    for i in prange(A):
        k = offsets[i]
        for o in range(n):
            if counts[i, o] >= threshold and prev[i, o] < threshold:
                qs[k] = i
                ids[k] = o
                k += 1
    return qs


def crossings(counts, prev, threshold):
    """Row-major threshold crossings; see the numpy tier for the contract."""
    A = counts.shape[0]
    row_counts = np.zeros(A, dtype=np.int64)
    _crossings(counts, prev, threshold, row_counts)
    offsets = np.zeros(A + 1, dtype=np.int64)
    np.cumsum(row_counts, out=offsets[1:])
    total = int(offsets[-1])
    qs = np.empty(total, dtype=np.int64)
    ids = np.empty(total, dtype=np.int64)
    if total:
        _fill_crossings(counts, prev, threshold, offsets, qs, ids)
    return qs, ids


@njit(cache=True)
def _count_leq(sorted_values, threshold):
    lo = 0
    hi = sorted_values.size
    while lo < hi:
        mid = (lo + hi) >> 1
        if sorted_values[mid] <= threshold:
            lo = mid + 1
        else:
            hi = mid
    return lo


def count_leq(sorted_values, threshold):
    """Count of ascending values ``<= threshold`` (binary search)."""
    return int(_count_leq(sorted_values, threshold))


@njit(cache=True)
def _merge_sorted(a, b, out):
    i = 0
    j = 0
    k = 0
    na = a.size
    nb = b.size
    while i < na and j < nb:
        if a[i] <= b[j]:
            out[k] = a[i]
            i += 1
        else:
            out[k] = b[j]
            j += 1
        k += 1
    while i < na:
        out[k] = a[i]
        i += 1
        k += 1
    while j < nb:
        out[k] = b[j]
        j += 1
        k += 1
    return out


def merge_sorted(sorted_a, sorted_b):
    """Merge two ascending float64 arrays into one ascending array."""
    out = np.empty(sorted_a.size + sorted_b.size, dtype=np.float64)
    return _merge_sorted(sorted_a, sorted_b, out)


@njit(cache=True)
def _bincount_i32(ids, out):
    for i in range(ids.size):
        out[ids[i]] += 1
    return out


def bincount_i32(ids, n):
    """Occurrences of each id in ``[0, n)`` as an int32 vector."""
    return _bincount_i32(ids, np.zeros(n, dtype=np.int32))


@njit(cache=True, parallel=True)
def _pair_distances(points, query, squared):
    n, d = points.shape
    out = np.empty(n, dtype=np.float64)
    for i in prange(n):
        buf = np.empty(d, dtype=np.float64)
        for j in range(d):
            diff = points[i, j] - query[j]
            if squared:
                buf[j] = diff * diff
            else:
                buf[j] = abs(diff)
        # The same balanced fold tree as _numpy._fold_sum: pair t with
        # t + h, h = (d + 1) // 2; an odd middle element carries through.
        dd = d
        while dd > 1:
            h = (dd + 1) // 2
            for t in range(dd - h):
                buf[t] += buf[t + h]
            dd = h
        acc = buf[0] if d > 0 else 0.0
        out[i] = np.sqrt(acc) if squared else acc
    return out


def euclidean_distances(points, query):
    """Euclidean distances via the deterministic fold; bit-equal to numpy."""
    return _pair_distances(points, query, True)


def manhattan_distances(points, query):
    """Manhattan distances via the deterministic fold; bit-equal to numpy."""
    return _pair_distances(points, query, False)
