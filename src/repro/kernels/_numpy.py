"""Pure-numpy kernel tier: the reference implementation of every primitive.

This module is the *specification*. Each kernel's result is defined as an
exact sequence of integer comparisons, integer additions, and
one-rounding-per-operation float64 arithmetic; the jitted tier
(:mod:`repro.kernels._numba`) performs the same operations in the same
order, so the two tiers are bit-identical — integer kernels trivially
(integer arithmetic is exact), the distance kernels because both reduce
with the identical balanced fold tree (:func:`_fold_sum`).

Inputs arrive pre-validated and dtype-normalized by the dispatch wrappers
in :mod:`repro.kernels`; implementations here may assume shapes and dtypes
are as documented there.
"""

from __future__ import annotations

import numpy as np

#: Entries per chunk of the sparse gather: keeps temporaries small enough
#: for the allocator to recycle instead of faulting fresh pages.
_GATHER_CHUNK = 1 << 21


def row_searchsorted(sorted_rows, targets, side_left):
    """Core lockstep binary search: ``targets`` is ``(B, m)``, rows sorted.

    Runs all ``B * m`` binary searches with ``O(log n)`` vectorized
    passes. Comparison semantics match :func:`numpy.searchsorted`
    (``side='left'`` when ``side_left`` else ``side='right'``).
    """
    m, n = sorted_rows.shape
    lo = np.zeros(targets.shape, dtype=np.int64)
    hi = np.full(targets.shape, n, dtype=np.int64)
    rows = np.arange(m)  # broadcasts over the leading batch axis
    # Invariant: per key the answer lies in [lo, hi]; each pass halves the
    # active ranges. Converged keys (lo == hi) may hold lo == n, so probe a
    # clamped index and mask their updates out.
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        vals = sorted_rows[rows, np.minimum(mid, n - 1)]
        if side_left:
            go_right = vals < targets
        else:
            go_right = vals <= targets
        lo = np.where(active & go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    return lo


def dense_counts(rank, lo, hi):
    """Absolute collision counts by rank comparison: ``(A, n)`` int32.

    Object ``o`` collides with query ``i`` in table ``j`` iff its sort
    position ``rank[j, o]`` lies in ``[lo[i, j], hi[i, j])`` — two integer
    comparisons per cell, ``O(A * m * n)`` independent of interval width.
    """
    A = lo.shape[0]
    n = rank.shape[1]
    out = np.empty((A, n), dtype=np.int32)
    for i in range(A):
        out[i] = ((rank >= lo[i][:, None])
                  & (rank < hi[i][:, None])).sum(axis=0, dtype=np.int32)
    return out


def sparse_counts(order, seg_q, seg_t, seg_lo, lengths, A):
    """Count-deltas from newly covered segments: ``(A, n)`` int32.

    Segment ``s`` contributes one count to ``(seg_q[s], order[seg_t[s], p])``
    for every position ``p`` in ``[seg_lo[s], seg_lo[s] + lengths[s])``.
    Integer additions commute exactly, so any accumulation order yields the
    same matrix; this tier sorts segments by query (stable) so each chunk's
    flat codes stay inside a narrow query band, then bincounts chunks into
    a band-rebased scratch that is added onto one preallocated ``A * n``
    buffer — the per-chunk temporary is ``O(band * n)``, not ``O(A * n)``.
    """
    n = order.shape[1]
    delta_flat = np.zeros(A * n, dtype=np.int32)
    if lengths.size == 0:
        return delta_flat.reshape(A, n)
    by_q = np.argsort(seg_q, kind="stable")
    seg_q, seg_t = seg_q[by_q], seg_t[by_q]
    seg_lo, lengths = seg_lo[by_q], lengths[by_q]
    ends = np.cumsum(lengths)
    n_segments = lengths.size
    start = 0
    while start < n_segments:
        base = int(ends[start - 1]) if start else 0
        # Largest run of whole segments fitting the chunk budget; an
        # oversized single segment still goes through alone.
        stop = int(np.searchsorted(ends, base + _GATHER_CHUNK,
                                   side="right"))
        stop = min(max(stop, start + 1), n_segments)
        lens = lengths[start:stop]
        local_starts = np.cumsum(lens) - lens
        pos = (np.repeat(seg_lo[start:stop] - local_starts, lens)
               + np.arange(int(lens.sum())))
        flat = (np.repeat(seg_q[start:stop] * np.int64(n), lens)
                + order[np.repeat(seg_t[start:stop], lens), pos])
        # Chunk codes live in [q_first * n, (q_last + 1) * n): rebase so
        # the bincount scratch covers only the chunk's query band.
        q_first = int(seg_q[start])
        band = (int(seg_q[stop - 1]) - q_first + 1) * n
        rebase = q_first * n
        delta_flat[rebase:rebase + band] += np.bincount(
            flat - rebase, minlength=band)
        start = stop
    return delta_flat.reshape(A, n)


def crossings(counts, prev, threshold):
    """Row-major ``(query, object)`` pairs that crossed ``threshold``.

    A pair crosses when ``counts >= threshold`` and ``prev < threshold``.
    Returned as two int64 arrays sorted by query then object — exactly
    ``numpy.nonzero`` order.
    """
    qs, ids = np.nonzero((counts >= threshold) & (prev < threshold))
    return qs.astype(np.int64, copy=False), ids.astype(np.int64, copy=False)


def count_leq(sorted_values, threshold):
    """How many of the ascending ``sorted_values`` are ``<= threshold``."""
    return int(np.searchsorted(sorted_values, threshold, side="right"))


def merge_sorted(sorted_a, sorted_b):
    """Merge two ascending float64 arrays into one ascending array."""
    merged = np.concatenate((sorted_a, sorted_b))
    merged.sort(kind="stable")  # timsort merges the two runs in O(n)
    return merged


def bincount_i32(ids, n):
    """Occurrences of each id in ``[0, n)`` as an int32 vector."""
    return np.bincount(ids, minlength=n).astype(np.int32)


def _fold_sum(terms):
    """Deterministic balanced-tree row reduction of ``(n, d)`` float64.

    The fold pairs index ``t`` with ``t + h`` where ``h = (d + 1) // 2``,
    halving until one column remains; an odd middle element is carried
    unchanged. Every float64 addition in the tree is a single rounding at
    a fixed position, so any implementation performing the same pairing —
    vectorized here, an explicit loop in the numba tier — produces
    bit-identical sums. Consumes ``terms`` as scratch.
    """
    n, d = terms.shape
    if d == 0:
        return np.zeros(n, dtype=np.float64)
    while d > 1:
        h = (d + 1) // 2
        terms[:, : d - h] += terms[:, h:d]
        d = h
    return terms[:, 0].copy()


def euclidean_distances(points, query):
    """Euclidean distances from each row of ``(n, d)`` to ``query``."""
    diff = points - query
    return np.sqrt(_fold_sum(diff * diff))


def manhattan_distances(points, query):
    """Manhattan (l1) distances from each row of ``(n, d)`` to ``query``."""
    return _fold_sum(np.abs(points - query))
