"""Kernel-tier selection: numba when available, pure numpy otherwise.

The repository's hot loops — row-wise binary search, dense rank-comparison
counting, sparse gather/accumulate, threshold scans, candidate distance
verification — exist in two interchangeable implementations
(:mod:`repro.kernels._numpy` and :mod:`repro.kernels._numba`). This module
picks one **once at import time** and the dispatch wrappers in
:mod:`repro.kernels` route every call through the active tier.

Selection rules, in order:

1. ``REPRO_KERNELS=numpy`` forces the pure-numpy tier. Numba is never
   imported, even when installed.
2. ``REPRO_KERNELS=numba`` forces the jitted tier; if numba cannot be
   imported this **raises** :class:`KernelBackendError` instead of
   silently degrading (CI uses this to prove the compiled tier ran).
3. Unset (or ``auto``): use numba if ``import numba`` succeeds, else fall
   back to numpy.

Both tiers are bit-identical by contract: every kernel is specified as an
exact sequence of integer comparisons / integer additions / one-rounding
floating-point operations that both implementations follow (see the
distance fold in :mod:`repro.kernels._numpy`), so ids, distances and
QueryStats do not depend on which tier answered.

Worker processes (:mod:`repro.sharding.worker`) call :func:`reselect` on
startup so each process derives its tier from its own environment rather
than inheriting a pickled decision.
"""

from __future__ import annotations

import os

__all__ = ["KernelBackendError", "active", "active_backend", "backend_name",
           "reselect", "select"]

#: Environment variable that forces the tier: ``numpy`` | ``numba`` | ``auto``.
ENV_VAR = "REPRO_KERNELS"

_active = None  # the active tier module
_info = {"backend": "numpy", "numba_version": None}


class KernelBackendError(RuntimeError):
    """A kernel tier was requested but cannot be provided."""


def _load_numba_tier():
    """Import numba and the jitted tier; returns ``(module, version)``."""
    import numba  # noqa: F401 — availability probe

    from . import _numba

    return _numba, getattr(numba, "__version__", "unknown")


def select(name=None):
    """Activate a kernel tier; returns the implementation module.

    ``name`` is ``"numpy"``, ``"numba"``, ``"auto"`` or ``None`` (meaning:
    read :data:`ENV_VAR`, defaulting to ``auto``). Forcing ``numba``
    without an importable numba raises :class:`KernelBackendError`.
    """
    global _active, _info
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip().lower() or "auto"
    if name not in ("auto", "numpy", "numba"):
        raise KernelBackendError(
            f"unknown kernel backend {name!r}: expected 'numpy', 'numba' "
            f"or 'auto' (via the {ENV_VAR} environment variable)"
        )
    if name == "numpy":
        from . import _numpy

        _active = _numpy
        _info = {"backend": "numpy", "numba_version": None}
    elif name == "numba":
        try:
            _active, version = _load_numba_tier()
        except Exception as exc:
            raise KernelBackendError(
                f"the numba kernel tier was requested (via {ENV_VAR} or "
                f"select('numba')) but is unavailable "
                f"({type(exc).__name__}: {exc}); install the 'fast' extra "
                f"(pip install repro[fast]) or use the numpy tier"
            ) from exc
        _info = {"backend": "numba", "numba_version": version}
    else:  # auto
        try:
            _active, version = _load_numba_tier()
            _info = {"backend": "numba", "numba_version": version}
        except Exception:
            from . import _numpy

            _active = _numpy
            _info = {"backend": "numpy", "numba_version": None}
    return _active


def reselect():
    """Re-run environment-driven selection (per-process worker startup)."""
    return select(None)


def active():
    """The active tier implementation module."""
    return _active


def active_backend():
    """Telemetry/bench stamp: ``{"backend": ..., "numba_version": ...}``."""
    return dict(_info)


def backend_name():
    """The active tier's name, ``"numpy"`` or ``"numba"``."""
    return _info["backend"]


# One selection at import; REPRO_KERNELS=numba with no numba raises here.
select(None)
