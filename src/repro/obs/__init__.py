"""Telemetry: phase-level tracing, a metrics registry, exportable sinks.

C2LSH's value proposition is measured in work performed — page reads,
candidate counts, radius-expansion rounds — so this package gives every
query path a built-in profiler instead of one-off timing code:

* :mod:`repro.obs.trace` — lightweight span tracing
  (``trace.span("count_round", radius=R)``) with a context-var current
  trace. Disabled by default: instrumented hot paths pay one
  context-variable read and nothing else.
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` of counters,
  gauges and bucketed histograms (p50/p95/p99).
* :mod:`repro.obs.sinks` — an in-process :class:`SnapshotSink`, a
  :class:`JsonlSink` event log (reloadable with :func:`load_jsonl` /
  :func:`replay`), and Prometheus text exposition
  (:func:`render_prometheus`).

Typical session::

    from repro.obs import JsonlSink, SnapshotSink, tracing

    snap = SnapshotSink()
    with tracing(snap, JsonlSink("events.jsonl")):
        index.query(q, k=10)
    snap.phase_totals()     # {"query": ..., "count_round": ..., ...}

``python -m repro.obs events.jsonl`` summarizes a written event log into
a phase-breakdown table.
"""

from . import trace
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .sinks import (
    JsonlSink,
    SnapshotSink,
    load_jsonl,
    render_prometheus,
    replay,
)
from .trace import IOEvent, Span, SpanEvent, Trace, tracing

__all__ = [
    "trace",
    "tracing",
    "Trace",
    "Span",
    "SpanEvent",
    "IOEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "SnapshotSink",
    "JsonlSink",
    "load_jsonl",
    "replay",
    "render_prometheus",
]
