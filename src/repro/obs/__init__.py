"""Telemetry: phase-level tracing, a metrics registry, exportable sinks.

C2LSH's value proposition is measured in work performed — page reads,
candidate counts, radius-expansion rounds — so this package gives every
query path a built-in profiler instead of one-off timing code:

* :mod:`repro.obs.trace` — lightweight span tracing
  (``trace.span("count_round", radius=R)``) with a context-var current
  trace. Disabled by default: instrumented hot paths pay one
  context-variable read and nothing else.
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` of counters,
  gauges and bucketed histograms (p50/p95/p99).
* :mod:`repro.obs.sinks` — an in-process :class:`SnapshotSink`, a
  :class:`JsonlSink` event log (reloadable with :func:`load_jsonl` /
  :func:`replay`), and Prometheus text exposition
  (:func:`render_prometheus`).

Typical session::

    from repro.obs import JsonlSink, SnapshotSink, tracing

    snap = SnapshotSink()
    with tracing(snap, JsonlSink("events.jsonl")):
        index.query(q, k=10)
    snap.phase_totals()     # {"query": ..., "count_round": ..., ...}

Cross-process observability (PR 7):

* :mod:`repro.obs.remote` — worker-side span export and coordinator-side
  grafting, so sharded queries carry true per-shard spans;
* :mod:`repro.obs.flight` — an always-on bounded flight recorder with
  postmortem dumps on degradation (budget exhaustion, retry giveup,
  experiment failure);
* :mod:`repro.obs.server` — :class:`ObsServer`, a stdlib HTTP scrape
  surface (``/metrics``, ``/healthz``, ``/debug/flightrecorder``);
* :mod:`repro.obs.diff` — the ``python -m repro.obs diff`` tolerance
  gate over two metrics/benchmark JSON files;
* :mod:`repro.obs.provenance` — the environment stamp written into every
  benchmark and metrics artifact.

``python -m repro.obs events.jsonl`` summarizes a written event log (or a
flight-recorder dump) into a phase-breakdown table; ``python -m repro.obs
diff base.json current.json`` compares two metrics artifacts.
"""

from . import flight, trace
from .flight import FlightRecorder
from .provenance import provenance
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .server import ObsServer
from .sinks import (
    JsonlSink,
    SnapshotSink,
    load_jsonl,
    render_info,
    render_prometheus,
    replay,
)
from .trace import IOEvent, Span, SpanEvent, Trace, tracing

__all__ = [
    "trace",
    "tracing",
    "Trace",
    "Span",
    "SpanEvent",
    "IOEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "SnapshotSink",
    "JsonlSink",
    "load_jsonl",
    "replay",
    "render_prometheus",
    "render_info",
    "flight",
    "FlightRecorder",
    "ObsServer",
    "provenance",
]
