"""CLI: summarize a JSONL trace event log into a phase breakdown.

::

    python -m repro.obs events.jsonl            # phase + I/O tables
    python -m repro.obs events.jsonl --json     # aggregates as JSON

The input is the file a :class:`repro.obs.JsonlSink` wrote during a
traced run. Span durations are grouped by span name into count / total /
mean / p50 / p95 / p99 columns; I/O events are grouped by kind and
charging site.
"""

from __future__ import annotations

import argparse
import json
import sys

from .sinks import SnapshotSink, load_jsonl, replay
from .trace import IOEvent, SpanEvent


def summarize(events):
    """Aggregate events; returns ``(snapshot_sink, wall_s)``.

    ``wall_s`` is the total duration of root spans (spans with no
    parent) — the traced run's accounted wall time.
    """
    sink, = replay(events, SnapshotSink())
    wall = sum(e.duration_s for e in events
               if isinstance(e, SpanEvent) and e.parent_id is None)
    return sink, wall


def _phase_rows(sink, wall):
    registry = sink.registry
    rows = []
    for name, total in sorted(sink.phase_totals().items(),
                              key=lambda kv: -kv[1]):
        hist = registry.histogram(f"span.{name}.seconds")
        share = f"{100.0 * total / wall:.1f}%" if wall > 0 else "-"
        rows.append([
            name, hist.count, f"{total:.6f}", share,
            f"{hist.mean * 1e3:.3f}",
            f"{hist.percentile(0.50) * 1e3:.3f}",
            f"{hist.percentile(0.95) * 1e3:.3f}",
            f"{hist.percentile(0.99) * 1e3:.3f}",
        ])
    return rows


def _io_rows(events):
    totals = {}
    for e in events:
        if isinstance(e, IOEvent):
            key = (e.kind, e.site)
            totals[key] = totals.get(key, 0) + e.pages
    return [[kind, site, pages]
            for (kind, site), pages in sorted(totals.items())]


def main(argv=None):
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize a traced query's JSONL event log.",
    )
    parser.add_argument("events", help="path to a JsonlSink event log")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate snapshot as JSON")
    args = parser.parse_args(argv)

    events = load_jsonl(args.events)
    sink, wall = summarize(events)

    if args.json:
        snapshot = sink.snapshot()
        snapshot["accounted_wall_s"] = wall
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0

    from ..eval.reporting import Table

    table = Table(
        ["phase", "spans", "total_s", "share", "mean_ms", "p50_ms",
         "p95_ms", "p99_ms"],
        title=f"Phase breakdown ({len(events)} events, "
              f"root wall {wall:.6f}s)",
    )
    for row in _phase_rows(sink, wall):
        table.add(*row)
    table.print()

    io_rows = _io_rows(events)
    if io_rows:
        io_table = Table(["kind", "site", "pages"], title="Page I/O")
        for row in io_rows:
            io_table.add(*row)
        print()
        io_table.print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
