"""CLI: summarize trace logs / flight dumps, or diff two metrics files.

::

    python -m repro.obs events.jsonl            # phase + I/O tables
    python -m repro.obs events.jsonl --json     # aggregates as JSON
    python -m repro.obs flight_*.json           # flight-recorder postmortem
    python -m repro.obs diff base.json cur.json # tolerance-gated metric diff

The summarize form accepts either the JSONL file a
:class:`repro.obs.JsonlSink` wrote during a traced run (span durations
grouped by name into count / total / mean / p50 / p95 / p99 columns, I/O
grouped by kind and site) or a flight-recorder postmortem dump (reason,
provenance, and the buffered event tail). ``diff`` is documented in
:mod:`repro.obs.diff`; its exit code is the CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from .sinks import SnapshotSink, load_jsonl, replay
from .trace import IOEvent, SpanEvent


def summarize(events):
    """Aggregate events; returns ``(snapshot_sink, wall_s)``.

    ``wall_s`` is the total duration of root spans (spans with no
    parent) — the traced run's accounted wall time.
    """
    sink, = replay(events, SnapshotSink())
    wall = sum(e.duration_s for e in events
               if isinstance(e, SpanEvent) and e.parent_id is None)
    return sink, wall


def _phase_rows(sink, wall):
    registry = sink.registry
    rows = []
    for name, total in sorted(sink.phase_totals().items(),
                              key=lambda kv: -kv[1]):
        hist = registry.histogram(f"span.{name}.seconds")
        share = f"{100.0 * total / wall:.1f}%" if wall > 0 else "-"
        rows.append([
            name, hist.count, f"{total:.6f}", share,
            f"{hist.mean * 1e3:.3f}",
            f"{hist.percentile(0.50) * 1e3:.3f}",
            f"{hist.percentile(0.95) * 1e3:.3f}",
            f"{hist.percentile(0.99) * 1e3:.3f}",
        ])
    return rows


def _io_rows(events):
    totals = {}
    for e in events:
        if isinstance(e, IOEvent):
            key = (e.kind, e.site)
            totals[key] = totals.get(key, 0) + e.pages
    return [[kind, site, pages]
            for (kind, site), pages in sorted(totals.items())]


def _load_flight_dump(path):
    """The parsed flight-recorder dump at ``path``, or ``None``.

    A dump is a single JSON object (as opposed to a JSONL stream) whose
    ``format`` tag or ``events`` list identifies it.
    """
    with open(path) as fh:
        text = fh.read()
    if not text.lstrip().startswith("{"):
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    if str(payload.get("format", "")).startswith("repro-flight") \
            or isinstance(payload.get("events"), list):
        return payload
    return None


def _summarize_flight(payload, as_json):
    """Render a flight-recorder postmortem; returns an exit code."""
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    from ..eval.reporting import Table

    prov = payload.get("provenance") or {}
    events = payload.get("events") or []
    header = (f"Flight recorder postmortem — reason: "
              f"{payload.get('reason', '?')}, pid {payload.get('pid', '?')}"
              f", git {str(prov.get('git_sha'))[:12]}, "
              f"kernels {prov.get('kernels', '?')}")
    print(header)
    extra = payload.get("extra") or {}
    if extra:
        print("trigger: " + json.dumps(extra, sort_keys=True))
    table = Table(["seq", "age_s", "kind", "fields"],
                  title=f"Last {len(events)} events (oldest first)")
    dumped_at = payload.get("unix_time")
    for ev in events:
        ev = dict(ev)
        seq = ev.pop("seq", "-")
        t = ev.pop("t", None)
        kind = ev.pop("kind", "?")
        age = (f"{dumped_at - t:.3f}"
               if dumped_at is not None and t is not None else "-")
        fields = " ".join(f"{k}={v}" for k, v in sorted(ev.items()))
        table.add(seq, age, kind, fields)
    table.print()
    return 0


def main(argv=None):
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        from .diff import main as diff_main

        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize a traced query's JSONL event log or a "
                    "flight-recorder dump (see also the 'diff' "
                    "subcommand).",
    )
    parser.add_argument("events", help="path to a JsonlSink event log "
                                       "or a flight-recorder dump")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate snapshot as JSON")
    args = parser.parse_args(argv)

    dump = _load_flight_dump(args.events)
    if dump is not None:
        return _summarize_flight(dump, args.json)

    events = load_jsonl(args.events)
    sink, wall = summarize(events)

    if args.json:
        snapshot = sink.snapshot()
        snapshot["accounted_wall_s"] = wall
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0

    from ..eval.reporting import Table

    table = Table(
        ["phase", "spans", "total_s", "share", "mean_ms", "p50_ms",
         "p95_ms", "p99_ms"],
        title=f"Phase breakdown ({len(events)} events, "
              f"root wall {wall:.6f}s)",
    )
    for row in _phase_rows(sink, wall):
        table.add(*row)
    table.print()

    io_rows = _io_rows(events)
    if io_rows:
        io_table = Table(["kind", "site", "pages"], title="Page I/O")
        for row in io_rows:
            io_table.add(*row)
        print()
        io_table.print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
