"""``python -m repro.obs diff``: a tolerance-gated metrics comparator.

Compares two metrics artifacts — harness ``{stem}_metrics.json`` files,
``BENCH_*.json`` benchmark records, flight-recorder dumps, anything made
of nested dicts/lists with numeric leaves — and exits nonzero when a
watched metric regressed beyond tolerance. That exit code is the CI perf
gate: check a baseline in, diff fresh runs against it, and a hot path
that quietly got slower fails the build instead of the next release.

::

    python -m repro.obs diff BENCH_batch.json fresh.json \\
        --tolerance 0.25 --watch "*seconds*" --watch "*io*pages*"

Regression direction is configurable: ``--direction up`` (default) flags
increases — right for costs like seconds, pages, candidates; ``down``
flags decreases — right for throughputs and speedups; ``any`` flags both.
Provenance/config stamps are ignored by default (they describe the run,
they aren't performance), and ``--min-base`` suppresses relative-change
noise on near-zero baselines.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import sys

__all__ = ["flatten", "compare", "main", "DEFAULT_IGNORE"]

#: Key patterns never gated (and not listed): run descriptors, not costs.
DEFAULT_IGNORE = (
    "provenance.*", "*.provenance.*",
    "config.*", "*.config.*",
    "*unix_time*", "*git_sha*", "*pid*", "*cpu_count*",
    "smoke", "*.smoke",
)


def flatten(obj, prefix=""):
    """Numeric leaves of nested dicts/lists as ``{dotted.path: float}``.

    Booleans are skipped (``identical_results`` is a check, not a
    metric); list elements are addressed by index (``sweep.0.build_s``).
    """
    out = {}
    if isinstance(obj, dict):
        items = obj.items()
    elif isinstance(obj, (list, tuple)):
        items = ((str(i), v) for i, v in enumerate(obj))
    elif isinstance(obj, bool) or obj is None:
        return out
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
        return out
    else:
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        out.update(flatten(value, path))
    return out


def _matches(key, patterns):
    return any(fnmatch.fnmatchcase(key, p) for p in patterns)


def compare(base, current, tolerance=0.25, watch=(), ignore=DEFAULT_IGNORE,
            direction="up", min_base=0.0):
    """Diff two loaded artifacts; returns ``(rows, regressions)``.

    ``rows`` is one record per shared numeric key (plus ``missing`` /
    ``added`` markers for keys present on only one side);
    ``regressions`` is the subset of rows that fail the gate. A key is
    gated when it matches a ``watch`` pattern (all keys when ``watch`` is
    empty), does not match ``ignore``, and ``|base| >= min_base``.
    """
    if direction not in ("up", "down", "any"):
        raise ValueError(f"direction must be up/down/any, got {direction!r}")
    flat_base = flatten(base)
    flat_cur = flatten(current)
    rows = []
    for key in sorted(set(flat_base) | set(flat_cur)):
        if _matches(key, ignore):
            continue
        if key not in flat_cur:
            rows.append({"key": key, "base": flat_base[key],
                         "current": None, "change": None,
                         "status": "missing", "regressed": False})
            continue
        if key not in flat_base:
            rows.append({"key": key, "base": None,
                         "current": flat_cur[key], "change": None,
                         "status": "added", "regressed": False})
            continue
        b, c = flat_base[key], flat_cur[key]
        if b == 0.0:
            change = 0.0 if c == 0.0 else math.inf * (1 if c > 0 else -1)
        else:
            change = (c - b) / abs(b)
        gated = (not watch or _matches(key, watch)) and abs(b) >= min_base
        if not gated:
            regressed = False
        elif direction == "up":
            regressed = change > tolerance
        elif direction == "down":
            regressed = change < -tolerance
        else:
            regressed = abs(change) > tolerance
        rows.append({"key": key, "base": b, "current": c, "change": change,
                     "status": "regressed" if regressed
                     else "ok" if gated else "unwatched",
                     "regressed": regressed})
    return rows, [r for r in rows if r["regressed"]]


def _fmt_change(change):
    if change is None:
        return "-"
    if math.isinf(change):
        return "+inf" if change > 0 else "-inf"
    return f"{change:+.1%}"


def main(argv=None):
    """CLI entry point; returns 1 when any watched metric regressed."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Compare two metrics/benchmark JSON files with a "
                    "tolerance gate.",
    )
    parser.add_argument("base", help="baseline JSON file")
    parser.add_argument("current", help="candidate JSON file")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative change (0.25 = 25%%)")
    parser.add_argument("--watch", action="append", default=[],
                        metavar="GLOB",
                        help="gate only keys matching this pattern "
                             "(repeatable; default: every numeric key)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="GLOB",
                        help="additional key patterns to skip entirely")
    parser.add_argument("--direction", choices=("up", "down", "any"),
                        default="up",
                        help="which way a change counts as a regression "
                             "(up = increases are bad)")
    parser.add_argument("--min-base", type=float, default=0.0,
                        help="skip gating keys whose |baseline| is below "
                             "this (relative noise on tiny values)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full diff as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="print regressions only")
    args = parser.parse_args(argv)

    with open(args.base) as fh:
        base = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    ignore = tuple(DEFAULT_IGNORE) + tuple(args.ignore)
    rows, regressions = compare(
        base, current, tolerance=args.tolerance, watch=tuple(args.watch),
        ignore=ignore, direction=args.direction, min_base=args.min_base)

    if args.json:
        print(json.dumps({
            "base": args.base, "current": args.current,
            "tolerance": args.tolerance, "direction": args.direction,
            "rows": rows,
            "regressions": [r["key"] for r in regressions],
        }, indent=2, sort_keys=True))
        return 1 if regressions else 0

    from ..eval.reporting import Table

    shown = regressions if args.quiet else \
        [r for r in rows if r["status"] != "unwatched"]
    if shown:
        table = Table(
            ["key", "base", "current", "change", "status"],
            title=f"obs diff: {args.base} -> {args.current} "
                  f"(tolerance {args.tolerance:.0%}, "
                  f"direction {args.direction})",
        )
        for r in shown:
            table.add(
                r["key"],
                "-" if r["base"] is None else f"{r['base']:g}",
                "-" if r["current"] is None else f"{r['current']:g}",
                _fmt_change(r["change"]), r["status"],
            )
        table.print()
    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print(f"no regressions ({sum(r['status'] == 'ok' for r in rows)} "
          f"watched keys within {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
