"""Flight recorder: an always-on bounded ring of recent events.

Benchmarks reproduce the behaviors someone thought to benchmark; the
failures that matter in serving — a query that blows its budget, a retry
loop that gives up, an experiment that dies mid-sweep — happen once, under
conditions nobody scripted. The flight recorder is the black box for those
moments: engines :func:`note` cheap structured events into a bounded ring
buffer regardless of whether tracing is active (one dict build and one
deque append per note), and when something degrades the recorder
:func:`dump`\\ s the ring — plus provenance and the trigger's details — to
a postmortem JSON file that ``python -m repro.obs`` can summarize.

Dump triggers wired through the engines:

* ``budget_exhausted`` — a query tripped its :class:`~repro.reliability.
  QueryBudget` cap (sequential, batch, and sharded paths);
* ``retry_giveup`` — a :class:`~repro.reliability.FaultInjector` retry
  budget ran out;
* ``worker_failure`` — the sharded engine's supervisor lost a worker
  (broken pool, missed deadline, injected exit); the postmortem carries
  the per-worker causes, the failover policy in force, and the dead
  worker/shard sets at decision time;
* ``experiment_failure`` — the eval harness contained an experiment crash.

Dumps are rate-limited per reason (default one per 60 s) so a degradation
storm produces one postmortem, not thousands. The default dump directory
is ``$REPRO_FLIGHT_DIR`` when set, else ``<tempdir>/repro-flight``.

The recorder also speaks the trace-sink protocol (``on_span`` / ``on_io``),
so it can ride along a :class:`~repro.obs.trace.tracing` block and keep
the most recent spans of a traced run in the ring::

    with tracing(SnapshotSink(), flight.recorder()):
        index.query_batch(queries, k=10)
"""

from __future__ import annotations

import collections
import json
import os
import tempfile
import threading
import time

__all__ = ["FlightRecorder", "recorder", "install", "note", "dump"]

#: Environment variable overriding the default dump directory.
ENV_DIR = "REPRO_FLIGHT_DIR"

#: On-disk format tag checked by the ``python -m repro.obs`` summarizer.
FORMAT = "repro-flight-v1"


def _jsonable(value):
    """Best-effort conversion of event field values to JSON-safe types."""
    item = getattr(value, "item", None)
    if item is not None:  # numpy scalars
        return item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class FlightRecorder:
    """A bounded, thread-safe ring buffer of recent events.

    Parameters
    ----------
    capacity:
        Events retained; older ones fall off the far end.
    directory:
        Where :meth:`dump` writes postmortems. ``None`` resolves at dump
        time: ``$REPRO_FLIGHT_DIR`` when set, else
        ``<tempdir>/repro-flight``.
    min_dump_interval_s:
        Rate limit between dumps *of the same reason*; suppressed dumps
        return ``None``. ``force=True`` bypasses the limit.
    """

    def __init__(self, capacity=512, directory=None,
                 min_dump_interval_s=60.0):
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.directory = directory
        self.min_dump_interval_s = float(min_dump_interval_s)
        self._ring = collections.deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._last_dump = {}   # reason -> monotonic time of last dump
        self.dumps = 0         # postmortems written by this recorder

    # -- recording -----------------------------------------------------------

    def note(self, kind, **fields):
        """Append one event; returns its sequence number.

        ``kind`` names the event (``"budget_exhausted"``,
        ``"shard.round"``, ...); ``fields`` are free-form and converted
        to JSON-safe scalars on the way in, so dumping never fails on a
        numpy int trapped in the ring.
        """
        event = {k: _jsonable(v) for k, v in fields.items()}
        event["kind"] = str(kind)
        event["t"] = time.time()
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._ring.append(event)
        return event["seq"]

    # -- trace-sink protocol -------------------------------------------------

    def on_span(self, event):
        """Record a closed span (trace-sink hook)."""
        self.note("span", name=event.name,
                  duration_s=float(event.duration_s),
                  **{k: _jsonable(v) for k, v in event.attrs.items()})

    def on_io(self, event):
        """Record a page-I/O charge (trace-sink hook)."""
        self.note("io", io_kind=event.kind, pages=int(event.pages),
                  site=event.site)

    # -- introspection -------------------------------------------------------

    def events(self):
        """The ring's events, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def __len__(self):
        return len(self._ring)

    def clear(self):
        """Drop every buffered event (sequence numbers keep counting)."""
        with self._lock:
            self._ring.clear()

    # -- postmortems ---------------------------------------------------------

    def _resolve_dir(self):
        if self.directory is not None:
            return self.directory
        return os.environ.get(ENV_DIR) or os.path.join(
            tempfile.gettempdir(), "repro-flight")

    def dump(self, reason, extra=None, path=None, force=False):
        """Write the ring to a postmortem JSON file; returns its path.

        Returns ``None`` when the per-reason rate limit suppressed the
        dump. ``extra`` (a JSON-safe dict) records the trigger's details
        next to the events; ``path`` overrides the default
        ``<dir>/flight_<reason>_<pid>_<n>.json`` naming.
        """
        now = time.monotonic()
        with self._lock:
            last = self._last_dump.get(reason)
            if not force and last is not None \
                    and now - last < self.min_dump_interval_s:
                return None
            self._last_dump[reason] = now
            events = list(self._ring)
            self.dumps += 1
            n = self.dumps
        from .provenance import provenance

        payload = {
            "format": FORMAT,
            "reason": str(reason),
            "unix_time": time.time(),
            "pid": os.getpid(),
            "provenance": provenance(),
            "extra": extra or {},
            "events": events,
        }
        if path is None:
            directory = self._resolve_dir()
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"flight_{reason}_{os.getpid()}_{n}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        return path

    def __repr__(self):
        return (f"FlightRecorder(events={len(self._ring)}/{self.capacity}, "
                f"dumps={self.dumps})")


#: The process-wide recorder the module-level helpers write to.
_DEFAULT = FlightRecorder()


def recorder():
    """The process-wide :class:`FlightRecorder`."""
    return _DEFAULT


def install(new_recorder):
    """Replace the process-wide recorder; returns the previous one.

    Tests use this to isolate dump directories and rate limits::

        old = flight.install(FlightRecorder(directory=tmp, ...))
        try: ...
        finally: flight.install(old)
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = new_recorder
    return previous


def note(kind, **fields):
    """Record one event on the process-wide recorder."""
    return _DEFAULT.note(kind, **fields)


def dump(reason, extra=None, path=None, force=False):
    """Dump the process-wide recorder; returns the path or ``None``."""
    return _DEFAULT.dump(reason, extra=extra, path=path, force=force)
