"""Run provenance: who/where/what produced a metrics or benchmark file.

Every artifact this repository writes for later comparison —
``BENCH_*.json``, the harness's ``{stem}_metrics.json``, flight-recorder
dumps — carries the same stamp so ``python -m repro.obs diff`` can tell
whether two files are comparable at all (same host? same kernel tier?
same commit?) before arguing about their numbers.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import time

__all__ = ["provenance", "git_sha"]

_GIT_SHA = "unresolved"  # module-level cache; ``None`` = genuinely unknown


def git_sha():
    """The current commit's SHA, or ``None`` when it cannot be resolved.

    Resolution order: the ``GITHUB_SHA`` environment variable (set by CI
    checkouts, works without a ``.git`` directory), then ``git rev-parse
    HEAD`` run from this file's directory. The answer is cached for the
    process lifetime — a commit cannot change under a running benchmark.
    """
    global _GIT_SHA
    if _GIT_SHA != "unresolved":
        return _GIT_SHA
    sha = os.environ.get("GITHUB_SHA") or None
    if sha is None:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
    _GIT_SHA = sha
    return sha


def provenance():
    """A JSON-serializable stamp of the producing environment.

    Includes the git SHA, hostname, CPU count, python/numpy versions,
    the active kernel tier, the pid, and a wall-clock timestamp. Cheap
    enough to call per artifact; the git lookup is cached.
    """
    import numpy as np

    from ..kernels import active_backend

    return {
        "git_sha": git_sha(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "kernels": active_backend(),
        "pid": os.getpid(),
        "unix_time": time.time(),
    }
