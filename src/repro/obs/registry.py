"""Metrics primitives: counters, gauges, bucketed histograms, a registry.

The registry is deliberately small — the three metric types that cover
this repository's needs (work counters, level gauges, latency/size
distributions with percentile estimates) behind get-or-create accessors::

    reg = MetricsRegistry()
    reg.counter("io.read.pages").inc(12)
    reg.histogram("query.seconds").observe(0.0042)
    reg.snapshot()["query.seconds"]["p99"]

Histograms are fixed-bucket (Prometheus-style): observations are counted
into geometric buckets and percentiles are interpolated from the bucket
counts, so memory stays O(buckets) however many values are observed.
"""

from __future__ import annotations

import bisect
import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]


def _geometric_buckets(lo, hi, per_decade=3):
    """Upper bucket bounds from ``lo`` to ``hi``, log-spaced."""
    decades = math.log10(hi / lo)
    steps = int(round(decades * per_decade))
    return tuple(lo * 10 ** (i / per_decade) for i in range(steps + 1))


#: Default histogram bounds: 1 microsecond to 1000 seconds, 3 per decade.
DEFAULT_LATENCY_BUCKETS = _geometric_buckets(1e-6, 1e3)


class Counter:
    """A monotonically increasing value (counts, totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative); returns the new value."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount
        return self.value

    def reset(self):
        """Return the counter to zero (a fresh-experiment boundary)."""
        self.value = 0


class Gauge:
    """A value that can move both ways (sizes, temperatures, depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        """Replace the current value; returns it."""
        self.value = value
        return self.value

    def inc(self, amount=1):
        """Add ``amount`` (may be negative); returns the new value."""
        self.value += amount
        return self.value

    def reset(self):
        """Return the gauge to zero (a fresh-experiment boundary)."""
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``buckets`` is an ascending tuple of upper bounds; an implicit
    overflow bucket catches everything beyond the last bound. Suited to
    latencies and sizes where a few percent of relative error is fine and
    constant memory matters.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "_min",
                 "_max")

    def __init__(self, name, buckets=None):
        self.name = name
        self.buckets = tuple(
            float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS)
        )
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError("bucket bounds must be non-empty and ascending")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value):
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self):
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q):
        """Estimated ``q``-quantile (``q`` in [0, 1]) by interpolation.

        Linear within the containing bucket; clamped to the observed
        min/max so estimates never leave the data's range. Tiny samples
        get exact answers instead of bucket interpolation: an empty
        histogram returns 0.0, one observation returns that observation
        for every ``q``, and two observations return the lower for
        ``q <= 0.5`` and the upper above it (nearest rank) — so a p99
        over two samples reports a value that was actually observed, not
        a synthetic point partway through a log-spaced bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1:
            return self._min
        if self.count == 2:
            return self._min if q <= 0.5 else self._max
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= rank:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i] if i < len(self.buckets) else self._max
                frac = (rank - cumulative) / bucket_count if bucket_count \
                    else 0.0
                value = lo + frac * (hi - lo)
                return min(max(value, self._min), self._max)
            cumulative += bucket_count
        return self._max

    def reset(self):
        """Forget every observation (bucket bounds are kept)."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def snapshot(self):
        """Summary dict: count, sum, mean, min/max, p50/p95/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a snapshot API."""

    def __init__(self):
        self._metrics = {}

    def _get(self, name, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name):
        """The :class:`Counter` called ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name):
        """The :class:`Gauge` called ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name, buckets=None):
        """The :class:`Histogram` called ``name``, created on first use."""
        return self._get(name, Histogram, buckets)

    def __iter__(self):
        """Iterate ``(name, metric)`` pairs in creation order."""
        return iter(self._metrics.items())

    def __len__(self):
        """Number of registered metrics."""
        return len(self._metrics)

    def snapshot(self):
        """All metrics as one JSON-serializable dict."""
        out = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def reset(self):
        """Zero every metric in place, keeping registrations.

        Call sites hold direct references to their counters and
        histograms, so the registry resets values rather than dropping
        the metric objects — a sweep harness can reset between
        experiments without re-wiring anything.
        """
        for metric in self._metrics.values():
            metric.reset()
