"""Cross-process span propagation: export on the worker, graft at home.

A :class:`~repro.sharding.worker.ShardHost` runs in another process, so
its spans and I/O events cannot reach the coordinator's context-var trace
directly. Instead the worker captures its own local trace, exports it to
compact JSON-safe records (:func:`export_events` — the same schema
:class:`~repro.obs.sinks.JsonlSink` writes), ships them home with its
round observations, and the coordinator :func:`graft`\\ s them into the
live trace as a subtree of the currently open span.

Grafting allocates fresh span ids on the receiving trace (worker ids are
only unique per worker) and remaps the records' parent links, so the
stitched tree is indistinguishable from locally emitted spans: it reaches
every sink, lands in ``Trace.events`` for :func:`~repro.core.explain.
explain_sharded`, and survives a JSONL round trip
(:func:`~repro.obs.sinks.load_jsonl` + :func:`~repro.obs.sinks.replay`
reproduce the live aggregates exactly).

``start_s`` timestamps are worker-process ``perf_counter`` values and are
meaningless against coordinator timestamps; durations, attributes, and
page counts are the portable truth.
"""

from __future__ import annotations

from .sinks import _jsonable
from .trace import IOEvent, SpanEvent
from . import trace as _trace

__all__ = ["export_events", "graft"]


def export_events(events):
    """Trace events → JSON-safe records (JsonlSink's line schema).

    Attribute values are passed through the same best-effort conversion
    the JSONL sink applies, so records pickle/JSON-serialize regardless
    of what the instrumented code attached.
    """
    records = []
    for event in events:
        if isinstance(event, IOEvent):
            records.append({
                "type": "io",
                "kind": event.kind,
                "pages": int(event.pages),
                "site": event.site,
                "span_id": event.span_id,
            })
        else:
            records.append({
                "type": "span",
                "name": event.name,
                "start_s": float(event.start_s),
                "duration_s": float(event.duration_s),
                "span_id": event.span_id,
                "parent_id": event.parent_id,
                "attrs": {k: _jsonable(v) for k, v in event.attrs.items()},
            })
    return records


def graft(records, target=None, **root_attrs):
    """Re-emit exported records into a live trace; returns events added.

    ``target`` defaults to the context's current trace (no-op when
    tracing is disabled). Each record gets a fresh span id; parent links
    internal to ``records`` are remapped, and records whose parent is not
    in the batch — the worker's root spans — are parented under the
    span currently open on the receiving trace. ``root_attrs`` are merged
    into those root spans' attributes (e.g. ``worker=3``), on top of
    whatever the worker already stamped.
    """
    tr = target if target is not None else _trace.current()
    if tr is None or not records:
        return 0
    anchor = tr._stack[-1].span_id if tr._stack else None
    id_map = {}
    for record in records:
        if record.get("type") == "span":
            id_map[record["span_id"]] = tr._next_id()
    grafted = 0
    for record in records:
        kind = record.get("type")
        if kind == "span":
            parent = record.get("parent_id")
            is_root = parent not in id_map
            attrs = dict(record.get("attrs") or {})
            if is_root and root_attrs:
                attrs.update(root_attrs)
            event = SpanEvent(
                name=record["name"],
                start_s=record.get("start_s", 0.0),
                duration_s=record.get("duration_s", 0.0),
                span_id=id_map[record["span_id"]],
                parent_id=anchor if is_root else id_map[parent],
                attrs=attrs,
            )
            if tr._keep:
                tr.events.append(event)
            for sink in tr.sinks:
                sink.on_span(event)
        elif kind == "io":
            span_id = record.get("span_id")
            event = IOEvent(
                kind=record["kind"], pages=int(record["pages"]),
                site=record["site"],
                span_id=id_map.get(span_id, anchor),
            )
            if tr._keep:
                tr.events.append(event)
            for sink in tr.sinks:
                sink.on_io(event)
        else:
            raise ValueError(f"unknown record type {kind!r}")
        grafted += 1
    return grafted
