"""ObsServer: a stdlib-only HTTP scrape surface for live telemetry.

Serving infrastructure needs three endpoints long before it needs a
framework: a Prometheus scrape target, a liveness probe, and a way to pull
the flight recorder without attaching a debugger. :class:`ObsServer`
provides exactly those over :mod:`http.server`:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of the
  configured registries, plus a ``<prefix>_build_info`` gauge carrying
  the provenance stamp as escaped labels;
* ``GET /healthz`` — ``{"status": "ok", "ready": ..., "uptime_s": ...}``;
* ``GET /debug/flightrecorder`` — the flight recorder's ring as JSON.

::

    engine = ShardedC2LSH(...).fit(data)
    with ObsServer({"repro_shard": engine.metrics}, port=9100) as srv:
        print("scrape", srv.url + "/metrics")
        serve_forever()

``port=0`` (the default) binds an ephemeral port — read it back from
``server.port`` — which is what tests and side-by-side smoke runs want.
Requests are served from a daemon thread; ``close()`` (or the context
manager) shuts it down.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import MetricsRegistry
from .sinks import SnapshotSink, render_info, render_prometheus

__all__ = ["ObsServer"]

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _as_registry_map(metrics):
    """Normalize the ``metrics`` argument to ``{prefix: registry}``."""
    if metrics is None:
        return {}
    if callable(metrics) and not isinstance(
            metrics, (MetricsRegistry, SnapshotSink)):
        return _as_registry_map(metrics())
    if isinstance(metrics, SnapshotSink):
        return {"repro": metrics.registry}
    if isinstance(metrics, MetricsRegistry):
        return {"repro": metrics}
    out = {}
    for prefix, registry in dict(metrics).items():
        if isinstance(registry, SnapshotSink):
            registry = registry.registry
        out[str(prefix)] = registry
    return out


class ObsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/debug/flightrecorder``.

    Parameters
    ----------
    metrics:
        What ``/metrics`` renders: a :class:`MetricsRegistry`, a
        :class:`SnapshotSink`, a ``{prefix: registry}`` dict (each
        rendered under its own metric-name prefix), or a zero-argument
        callable returning any of those (re-evaluated per scrape, for
        registries that are created after the server starts).
    recorder:
        The :class:`~repro.obs.flight.FlightRecorder` behind
        ``/debug/flightrecorder``; defaults to the process-wide one.
    readiness:
        Optional zero-argument callable consulted per ``/healthz``
        request: return ``True``/``False``, or a JSON-safe dict with a
        ``"ready"`` key (extra keys land in the body under
        ``"readiness"``). Not-ready answers keep ``"status": "ok"`` —
        the process is alive — but carry ``"ready": false`` and HTTP
        503, which is what a load balancer's readiness probe keys on
        while a serving front-end drains or sheds load. Without a
        callback the body always reports ``"ready": true`` over HTTP
        200, and a callback that raises reports not-ready with the
        exception's name rather than a 500.
    host, port:
        Bind address. ``port=0`` picks an ephemeral port.
    """

    def __init__(self, metrics=None, recorder=None, readiness=None,
                 host="127.0.0.1", port=0):
        self._metrics = metrics
        self._readiness = readiness
        if recorder is None:
            from . import flight

            recorder = flight.recorder()
        self.recorder = recorder
        self._host = host
        self._requested_port = int(port)
        self._httpd = None
        self._thread = None
        self._started_at = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the socket and start serving from a daemon thread."""
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), self._handler_class())
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-server",
            daemon=True)
        self._thread.start()
        return self

    def close(self):
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self):
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @property
    def port(self):
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self):
        """Base URL of the running server (no trailing slash)."""
        return f"http://{self._host}:{self.port}"

    # -- request handling ----------------------------------------------------

    def render_metrics(self):
        """The ``/metrics`` body: every registry plus build_info."""
        parts = []
        for prefix, registry in _as_registry_map(self._metrics).items():
            parts.append(render_prometheus(registry, prefix=prefix))
        from .provenance import provenance

        stamp = provenance()
        labels = {
            "git_sha": str(stamp.get("git_sha") or "unknown"),
            "hostname": str(stamp.get("hostname")),
            "python": str(stamp.get("python")),
            "numpy": str(stamp.get("numpy")),
            "kernels": str(stamp.get("kernels")),
        }
        parts.append(render_info("build_info", labels, prefix="repro"))
        return "".join(parts)

    def render_health(self):
        """The ``/healthz`` body and status code: ``(json_str, code)``.

        Liveness and readiness share the endpoint: ``"status"`` is
        always ``"ok"`` while the server answers at all (the process is
        alive), ``"ready"`` reflects the readiness callback (503 when
        false, so probes that only read status codes work unmodified).
        """
        import os

        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        body = {"status": "ok", "uptime_s": round(uptime, 3),
                "pid": os.getpid()}
        ready, detail = self._check_readiness()
        body["ready"] = ready
        if detail:
            body["readiness"] = detail
        return json.dumps(body, sort_keys=True), (200 if ready else 503)

    def _check_readiness(self):
        """Evaluate the readiness callback: ``(ready, detail_dict)``."""
        if self._readiness is None:
            return True, {}
        try:
            verdict = self._readiness()
        except Exception as exc:  # a broken probe is "not ready", not 500
            return False, {"error": type(exc).__name__}
        if isinstance(verdict, dict):
            detail = dict(verdict)
            ready = bool(detail.pop("ready", False))
            return ready, detail
        return bool(verdict), {}

    def render_flightrecorder(self):
        """The ``/debug/flightrecorder`` body (a JSON string)."""
        return json.dumps({
            "capacity": self.recorder.capacity,
            "dumps": self.recorder.dumps,
            "events": self.recorder.events(),
        }, sort_keys=True)

    def _handler_class(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                path = self.path.split("?", 1)[0]
                status = 200
                try:
                    if path == "/metrics":
                        body = server.render_metrics()
                        ctype = PROM_CONTENT_TYPE
                    elif path == "/healthz":
                        body, status = server.render_health()
                        ctype = "application/json"
                    elif path == "/debug/flightrecorder":
                        body = server.render_flightrecorder()
                        ctype = "application/json"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as exc:  # surface, don't kill the thread
                    self.send_error(500, type(exc).__name__)
                    return
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, fmt, *args):
                """Scrapes are high-frequency; stay silent."""

        return Handler

    def __repr__(self):
        state = f"port={self.port}" if self._httpd is not None else "stopped"
        return f"ObsServer({state})"
