"""Pluggable destinations for trace events, plus reload/exposition helpers.

Three ways out of a :class:`~repro.obs.trace.Trace`:

* :class:`SnapshotSink` — in-process aggregation into a
  :class:`~repro.obs.registry.MetricsRegistry` (per-phase counts, total
  seconds, latency histograms, I/O totals by site);
* :class:`JsonlSink` — one JSON object per event, append-only, reloadable
  with :func:`load_jsonl` and re-aggregatable with :func:`replay` (the
  round trip is exact: replayed aggregates equal the live snapshot);
* :func:`render_prometheus` — Prometheus text exposition of any registry,
  for scraping or diffing.
"""

from __future__ import annotations

import json
import re

from .registry import MetricsRegistry
from .trace import IOEvent, SpanEvent

__all__ = ["SnapshotSink", "JsonlSink", "load_jsonl", "replay",
           "render_prometheus", "render_info"]


def _jsonable(value):
    """Best-effort conversion of attribute values to JSON-safe types."""
    item = getattr(value, "item", None)
    if item is not None:  # numpy scalars
        return item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class SnapshotSink:
    """Aggregates events into a metrics registry as they arrive.

    Per span name ``X`` it maintains ``span.X.count``, ``span.X.total_s``
    and the latency histogram ``span.X.seconds``; per I/O kind and site it
    maintains ``io.<kind>.pages`` and ``io.<kind>.<site>.pages``. The
    :meth:`snapshot` dict is what the eval harness writes next to each
    results CSV.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else \
            MetricsRegistry()
        # Stamp which kernel tier produced these metrics, so traces from
        # mixed environments (numba on some hosts, numpy on others) stay
        # comparable. 1.0 = numba, 0.0 = pure-numpy fallback.
        from ..kernels import backend_name

        self.registry.gauge("kernels.numba").set(
            1.0 if backend_name() == "numba" else 0.0)

    def on_span(self, event):
        """Fold one closed span into the per-phase aggregates."""
        name = event.name
        self.registry.counter(f"span.{name}.count").inc()
        self.registry.gauge(f"span.{name}.total_s").inc(event.duration_s)
        self.registry.histogram(f"span.{name}.seconds").observe(
            event.duration_s)

    def on_io(self, event):
        """Fold one I/O charge into the per-kind / per-site totals."""
        self.registry.counter(f"io.{event.kind}.pages").inc(event.pages)
        self.registry.counter(
            f"io.{event.kind}.{event.site}.pages").inc(event.pages)

    def snapshot(self):
        """The registry's JSON-serializable snapshot."""
        return self.registry.snapshot()

    def reset(self):
        """Zero every aggregate and re-stamp the kernel-tier gauge.

        The sweep harness calls this between experiments so counters and
        histograms never bleed across ``{stem}_metrics.json`` files.
        """
        from ..kernels import backend_name

        self.registry.reset()
        self.registry.gauge("kernels.numba").set(
            1.0 if backend_name() == "numba" else 0.0)

    def phase_totals(self):
        """``{span name: total seconds}`` across everything observed."""
        return {
            name[len("span."):-len(".total_s")]: metric.value
            for name, metric in self.registry
            if name.startswith("span.") and name.endswith(".total_s")
        }


class JsonlSink:
    """Writes every event as one JSON line to a path or file object.

    Span lines carry ``type/name/start_s/duration_s/span_id/parent_id/
    attrs``; I/O lines carry ``type/kind/pages/site/span_id``. The file is
    closed by ``finish()`` (called automatically when the enclosing
    :class:`~repro.obs.trace.tracing` block exits) only if this sink
    opened it.
    """

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w")
            self._owns = True

    def _write(self, record):
        self._fh.write(json.dumps(record) + "\n")

    def on_span(self, event):
        """Append one span line."""
        self._write({
            "type": "span",
            "name": event.name,
            "start_s": event.start_s,
            "duration_s": event.duration_s,
            "span_id": event.span_id,
            "parent_id": event.parent_id,
            "attrs": {k: _jsonable(v) for k, v in event.attrs.items()},
        })

    def on_io(self, event):
        """Append one I/O line."""
        self._write({
            "type": "io",
            "kind": event.kind,
            "pages": event.pages,
            "site": event.site,
            "span_id": event.span_id,
        })

    def finish(self):
        """Flush, and close the file if this sink opened it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()


def load_jsonl(path_or_file):
    """Reload a :class:`JsonlSink` log into event objects, in file order."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as fh:
            lines = fh.read().splitlines()
    events = []
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type")
        if kind == "span":
            events.append(SpanEvent(**record))
        elif kind == "io":
            events.append(IOEvent(**record))
        else:
            raise ValueError(f"unknown event type {kind!r}")
    return events


def replay(events, *sinks):
    """Feed reloaded events through sinks; returns the sinks.

    ``replay(load_jsonl(path), SnapshotSink())`` reproduces exactly the
    aggregates a live :class:`SnapshotSink` built during the traced run.
    """
    for event in events:
        for sink in sinks:
            if isinstance(event, IOEvent):
                sink.on_io(event)
            else:
                sink.on_span(event)
    return sinks


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name, prefix):
    """A metric name sanitized to the Prometheus grammar."""
    return _PROM_NAME.sub("_", f"{prefix}_{name}")


def _prom_label_value(value):
    """A string escaped for use inside a Prometheus label value.

    The exposition format requires backslash, double-quote, and newline
    escapes; everything else passes through verbatim.
    """
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def render_info(name, labels, prefix="repro"):
    """An info-style metric: constant 1 with identity carried in labels.

    ``render_info("build_info", {"git_sha": sha})`` produces the
    conventional ``repro_build_info{git_sha="..."} 1`` sample used to
    join provenance onto every scraped series. Label *names* are
    sanitized to the metric grammar; label *values* are escaped, so
    hostnames or versions containing quotes, backslashes, or newlines
    stay parseable.
    """
    pname = _prom_name(name, prefix)

    def label_name(key):
        key = _PROM_NAME.sub("_", str(key))
        return key if key[:1].isalpha() or key[:1] == "_" else f"_{key}"

    body = ",".join(
        f'{label_name(key)}="{_prom_label_value(value)}"'
        for key, value in labels.items()
    )
    return (f"# TYPE {pname} gauge\n"
            f"{pname}{{{body}}} 1\n")


def render_prometheus(registry, prefix="repro"):
    """Prometheus text exposition (version 0.0.4) of a registry.

    Counters and gauges become single samples; histograms become the
    conventional ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
    Accepts a :class:`MetricsRegistry` or a :class:`SnapshotSink`.
    """
    if isinstance(registry, SnapshotSink):
        registry = registry.registry
    from .registry import Counter, Gauge, Histogram

    lines = []
    for name, metric in registry:
        pname = _prom_name(name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {metric.value}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(
                f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {metric.sum}")
            lines.append(f"{pname}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
