"""Lightweight span tracing with a context-var current trace.

A *trace* is an account of where one unit of work — typically a query —
spent its time and I/O. Engine code marks its phases with spans::

    from repro.obs import trace

    with trace.span("count_round", radius=R) as sp:
        ...                       # timed region
        sp.set(scanned=touched)   # attach attributes any time before close

and the storage layer reports page charges as point events
(:func:`io_event`). When no trace is active — the default — every call
degrades to a shared no-op object, so instrumented hot paths cost one
context-variable read and nothing else. Activating collection is the
caller's choice::

    from repro.obs import JsonlSink, SnapshotSink, tracing

    with tracing(SnapshotSink(), JsonlSink("events.jsonl")) as tr:
        index.query(q, k=10)
    tr.events     # every closed span / I/O event, in completion order

The current trace lives in a :class:`contextvars.ContextVar`, so traces
nest correctly (the innermost wins and is restored on exit) and never leak
across threads or async tasks.
"""

from __future__ import annotations

import contextvars
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanEvent",
    "IOEvent",
    "Span",
    "Trace",
    "tracing",
    "current",
    "active",
    "span",
    "event",
    "io_event",
    "NULL_SPAN",
]

#: The active :class:`Trace` of the current context (``None`` = disabled).
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


@dataclass
class SpanEvent:
    """A closed span: one named, timed phase with free-form attributes.

    ``start_s`` is a :func:`time.perf_counter` timestamp — meaningful only
    relative to other events of the same process. ``parent_id`` links the
    span tree (``None`` for roots); ``duration_s`` is 0.0 for point events
    emitted via :meth:`Trace.event`.
    """

    name: str
    start_s: float
    duration_s: float
    span_id: int
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)


@dataclass
class IOEvent:
    """A page-I/O charge, attributed to the span open when it occurred.

    ``kind`` is ``"read"`` or ``"write"``; ``site`` names the charging
    call site (``"bucket_scan"``, ``"data_read"``, ``"build"``, ...).
    """

    kind: str
    pages: int
    site: str
    span_id: int | None = None


class Span:
    """An open span; a context manager that times its ``with`` block.

    Attributes attached via :meth:`set` before the block closes are
    shipped to the trace's sinks with the closing :class:`SpanEvent`.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_trace",
                 "_start")

    def __init__(self, trace, name, attrs):
        self.name = name
        self.attrs = attrs
        self._trace = trace
        self.span_id = trace._next_id()
        self.parent_id = None
        self._start = 0.0

    def set(self, **attrs):
        """Merge ``attrs`` into the span's attributes; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        """Start the clock and push the span onto the trace's stack."""
        self.parent_id = self._trace._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        """Stop the clock, pop the span, and emit its event."""
        duration = time.perf_counter() - self._start
        self._trace._pop(self, duration)
        return False


class _NullSpan:
    """Shared do-nothing span returned when no trace is active."""

    __slots__ = ()

    def set(self, **attrs):
        """Ignore the attributes; returns self."""
        return self

    def __enter__(self):
        """No-op; returns self."""
        return self

    def __exit__(self, exc_type, exc, tb):
        """No-op; never suppresses exceptions."""
        return False


#: The singleton no-op span (also handy as an explicit "untraced" default).
NULL_SPAN = _NullSpan()


class Trace:
    """Collects span and I/O events and forwards them to sinks.

    Sinks are objects with ``on_span(SpanEvent)`` and ``on_io(IOEvent)``
    methods (plus an optional ``finish()``); see :mod:`repro.obs.sinks`.
    With ``keep_events=True`` (default) every event is also appended to
    :attr:`events` for in-process consumers like
    :func:`repro.core.explain.explain`; long-running jobs that only need
    aggregates should pass ``keep_events=False``.
    """

    def __init__(self, *sinks, keep_events=True):
        self.sinks = list(sinks)
        self.events = []
        self._keep = bool(keep_events)
        self._stack = []
        self._count = 0

    def _next_id(self):
        self._count += 1
        return self._count

    def _push(self, span):
        parent = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        return parent

    def _pop(self, span, duration):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        event = SpanEvent(
            name=span.name, start_s=span._start, duration_s=duration,
            span_id=span.span_id, parent_id=span.parent_id,
            attrs=span.attrs,
        )
        if self._keep:
            self.events.append(event)
        for sink in self.sinks:
            sink.on_span(event)

    def span(self, name, **attrs):
        """An open :class:`Span` ready to be used as a context manager."""
        return Span(self, name, attrs)

    def event(self, name, **attrs):
        """Emit a zero-duration point event (e.g. per-query summaries)."""
        ev = SpanEvent(
            name=name, start_s=time.perf_counter(), duration_s=0.0,
            span_id=self._next_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attrs=attrs,
        )
        if self._keep:
            self.events.append(ev)
        for sink in self.sinks:
            sink.on_span(ev)
        return ev

    def record_io(self, kind, pages, site):
        """Record one page-I/O charge against the currently open span."""
        ev = IOEvent(
            kind=kind, pages=int(pages), site=site,
            span_id=self._stack[-1].span_id if self._stack else None,
        )
        if self._keep:
            self.events.append(ev)
        for sink in self.sinks:
            sink.on_io(ev)
        return ev

    def finish(self):
        """Flush and close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "finish", None)
            if close is not None:
                close()


class tracing:
    """Context manager that activates a :class:`Trace` for its block.

    ::

        with tracing(SnapshotSink()) as tr:
            index.query(q, k=10)

    Nested uses shadow the outer trace and restore it on exit. Sinks are
    finished (flushed/closed) when the block exits.
    """

    def __init__(self, *sinks, keep_events=True):
        self.trace = Trace(*sinks, keep_events=keep_events)
        self._token = None

    def __enter__(self):
        """Install the trace as the context's current trace."""
        self._token = _CURRENT.set(self.trace)
        return self.trace

    def __exit__(self, exc_type, exc, tb):
        """Restore the previous trace and finish the sinks."""
        _CURRENT.reset(self._token)
        self.trace.finish()
        return False


def current():
    """The active :class:`Trace` of this context, or ``None``."""
    return _CURRENT.get()


def active():
    """Whether a trace is currently collecting in this context."""
    return _CURRENT.get() is not None


def span(name, **attrs):
    """A span on the current trace, or the shared no-op when disabled."""
    trace = _CURRENT.get()
    if trace is None:
        return NULL_SPAN
    return trace.span(name, **attrs)


def event(name, **attrs):
    """Emit a point event on the current trace (no-op when disabled)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.event(name, **attrs)


def io_event(kind, pages, site):
    """Report a page-I/O charge to the current trace (no-op when disabled)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.record_io(kind, pages, site)
