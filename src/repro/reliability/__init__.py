"""Reliability layer: fault injection, query budgets, integrity errors.

Production indexes fail in three ways this package makes first-class:

* **Storage faults** — :class:`FaultInjector` + :class:`FaultPlan` inject
  deterministic transient errors, latency, and page corruption at the
  storage charge sites (``bucket_scan``, ``data_read``,
  ``btree_descend``, ...), with a bounded retry-with-backoff wrapper
  (:class:`RetryPolicy`) whose retries land in a
  :class:`repro.obs.MetricsRegistry`. Attach one via
  ``PageManager(fault_injector=...)``.
* **Runaway queries** — :class:`QueryBudget` caps a query's wall clock,
  charged I/O pages, or candidate count; on overrun the engines return
  verified best-effort results flagged ``QueryStats.degraded`` instead of
  raising or running unbounded (see :mod:`repro.reliability.budget`).
* **Torn or damaged index files** — :mod:`repro.core.persist` writes
  atomically (temp file + fsync + rename) and verifies per-array CRC32
  checksums on load, raising :class:`CorruptIndexError` naming the
  damaged section.
* **Dead or stuck worker processes** — ``"exit"`` fault rules at the
  ``worker_exit.*`` sites make worker death chaos-injectable at every
  step of the sharded engine's protocol; the engine's supervision layer
  (:mod:`repro.sharding.supervisor`) detects the loss (broken pool,
  missed deadline, failed heartbeat) and applies a configurable failover
  policy — respawn-and-replay, degrade to surviving shards, or raise
  :class:`WorkerFailureError`.

See ``docs/RELIABILITY.md`` for the fault-plan schema, budget semantics,
and the degraded-result contract.
"""

from .budget import BudgetTracker, QueryBudget, as_budget_list
from .errors import (
    CorruptIndexError,
    InjectedWorkerExit,
    TransientIOError,
    WorkerFailureError,
)
from .faults import (
    CORRUPT_MODES,
    KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "QueryBudget",
    "BudgetTracker",
    "as_budget_list",
    "TransientIOError",
    "CorruptIndexError",
    "WorkerFailureError",
    "InjectedWorkerExit",
    "KINDS",
    "CORRUPT_MODES",
]
