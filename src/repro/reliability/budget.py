"""Query budgets and graceful degradation.

C2LSH's query algorithm is naturally interruptible: every virtual-
rehashing round (``R = c^i``) only *widens* the candidate set, so the
verified candidates at any smaller radius are a principled best-effort
answer. A :class:`QueryBudget` caps the work a query may perform —
wall-clock deadline, charged I/O pages, verified candidates — and when a
cap is hit mid-search the engine finishes verifying the candidates it has
already collected and returns them with
``QueryStats.degraded = True``, ``QueryStats.budget_exhausted`` naming
the tripped cap, and ``QueryStats.final_radius`` recording the achieved
radius. A budgeted query never raises because of its budget.

Budgets are checked at round boundaries (after the round's counting and
verification), so a round in flight always completes: results are always
*verified* true distances, never raw collision-count guesses. The I/O cap
requires a :class:`repro.storage.PageManager` on the index — without one
there is no page accounting to compare against and the cap is inert. The
``deadline_s`` cap reads the wall clock and is therefore the one
non-deterministic cap; ``max_io_pages`` and ``max_candidates`` degrade
deterministically (same seed, same budget ⇒ same degraded result).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

__all__ = ["QueryBudget", "BudgetTracker", "as_budget_list"]


@dataclass(frozen=True)
class QueryBudget:
    """Work limits for one query, with graceful degradation on overrun.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds the query may run (measured from query entry,
        including hashing).
    max_io_pages:
        Page reads+writes the query may charge to its page manager.
    max_candidates:
        Verified candidates after which the search stops growing.
    started_at:
        Optional explicit ``time.perf_counter()`` stamp anchoring the
        deadline clock. When set, ``deadline_s`` is measured from this
        moment rather than from query entry — so work done *before* the
        engine saw the query (admission-queue wait in a serving
        front-end, batched hashing, retry backoff) counts against the
        deadline instead of silently restarting the clock. ``None``
        (default) keeps the historical entry-anchored behavior.

    All caps default to ``None`` (unlimited); at least one must be set
    (``started_at`` is an anchor, not a cap, and does not count).
    The same object works on the sequential and batch paths of
    :class:`repro.core.c2lsh.C2LSH` and on :class:`repro.core.qalsh.QALSH`.
    """

    deadline_s: float | None = None
    max_io_pages: int | None = None
    max_candidates: int | None = None
    started_at: float | None = None

    def __post_init__(self):
        if (self.deadline_s is None and self.max_io_pages is None
                and self.max_candidates is None):
            raise ValueError("a QueryBudget must set at least one limit")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.max_io_pages is not None and self.max_io_pages < 1:
            raise ValueError(
                f"max_io_pages must be >= 1, got {self.max_io_pages}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )

    def effective_start(self, default=None):
        """The deadline anchor: ``started_at`` when set, else ``default``.

        ``default`` is the engine's query-entry stamp (a
        ``time.perf_counter()`` value; ``None`` falls through to "now").
        Every deadline comparison routes through this so an explicit
        anchor wins everywhere — tracker, batch engines, supervision.
        """
        if self.started_at is not None:
            return self.started_at
        return default if default is not None else time.perf_counter()

    def with_start(self, started_at):
        """A copy of this budget anchored at ``started_at``.

        Serving front-ends stamp each request at admission with
        ``budget.with_start(time.perf_counter())`` so queue wait counts
        against the deadline.
        """
        return replace(self, started_at=float(started_at))

    def remaining_s(self, started, now=None):
        """Wall-clock seconds left before ``deadline_s``, or ``None``.

        ``started`` is the query's ``time.perf_counter()`` entry stamp
        (``started_at``, when set, overrides it). Returns ``None`` when
        the budget has no deadline; never negative. The sharded engine's
        supervision layer uses this to derive per-call deadlines on the
        worker protocol (remaining budget plus the engine's round
        timeout).
        """
        if self.deadline_s is None:
            return None
        now = now if now is not None else time.perf_counter()
        return max(0.0, self.deadline_s - (now - self.effective_start(started)))

    def start(self, page_manager=None, started=None):
        """Begin tracking one query; returns a :class:`BudgetTracker`.

        ``started`` anchors the deadline (a ``time.perf_counter()``
        value; defaults to now, and is overridden by an explicit
        ``started_at`` on the budget). ``page_manager`` supplies the I/O
        snapshot the ``max_io_pages`` cap diffs against.
        """
        return BudgetTracker(self, page_manager, started)


class BudgetTracker:
    """Per-query budget state: a snapshot plus an ``exceeded`` probe."""

    __slots__ = ("budget", "_pm", "_snapshot", "_started")

    def __init__(self, budget, page_manager=None, started=None):
        self.budget = budget
        self._pm = page_manager
        self._snapshot = (page_manager.snapshot()
                          if page_manager is not None else None)
        self._started = budget.effective_start(started)

    def io_spent(self):
        """Pages charged since tracking started (0 without a manager)."""
        if self._snapshot is None:
            return 0
        delta = self._pm.since(self._snapshot)
        return delta.reads + delta.writes

    def exceeded(self, n_candidates=0):
        """Which cap is exhausted, or ``""`` while within budget.

        Deterministic caps are checked first so degraded results are
        reproducible whenever the deadline is not the binding limit:
        the order is ``"candidates"``, then ``"io_pages"``, then
        ``"deadline"``.
        """
        b = self.budget
        if (b.max_candidates is not None
                and n_candidates >= b.max_candidates):
            return "candidates"
        if (b.max_io_pages is not None and self._snapshot is not None
                and self.io_spent() >= b.max_io_pages):
            return "io_pages"
        if (b.deadline_s is not None
                and time.perf_counter() - self._started >= b.deadline_s):
            return "deadline"
        return ""


def tripped_cap(budget, n_candidates, io_pages, io_enabled, started, now):
    """Which cap of ``budget`` a batched query has exhausted (or ``""``).

    The batch engines attribute candidates and I/O pages per query
    themselves, so their round-boundary check compares those running
    totals instead of a :class:`BudgetTracker` snapshot — this helper
    keeps the cap *order* (candidates, io_pages, deadline) and the
    deadline anchoring identical to :meth:`BudgetTracker.exceeded`.
    ``io_enabled`` tells whether page accounting is live (without it the
    I/O cap is inert, matching the tracker's missing-snapshot rule).
    """
    if (budget.max_candidates is not None
            and n_candidates >= budget.max_candidates):
        return "candidates"
    if (budget.max_io_pages is not None and io_enabled
            and io_pages >= budget.max_io_pages):
        return "io_pages"
    if (budget.deadline_s is not None
            and now - budget.effective_start(started) >= budget.deadline_s):
        return "deadline"
    return ""


def as_budget_list(budget, n_queries):
    """Normalize a batch ``budget`` argument to a per-query list or ``None``.

    The batch entry points accept either one :class:`QueryBudget` applied
    to every query, or a sequence of ``n_queries`` entries (``None``
    entries mean "that query is unbudgeted") — which is how a serving
    front-end coalesces requests carrying *different* per-client budgets
    into one lockstep batch. Returns ``None`` when nothing is budgeted,
    else a list of length ``n_queries``.
    """
    if budget is None:
        return None
    if isinstance(budget, QueryBudget):
        return [budget] * n_queries
    budgets = list(budget)
    if len(budgets) != n_queries:
        raise ValueError(
            f"got {len(budgets)} budgets for {n_queries} queries"
        )
    for b in budgets:
        if b is not None and not isinstance(b, QueryBudget):
            raise TypeError(
                f"budget entries must be QueryBudget or None, got "
                f"{type(b).__name__}"
            )
    if all(b is None for b in budgets):
        return None
    return budgets
