"""Query budgets and graceful degradation.

C2LSH's query algorithm is naturally interruptible: every virtual-
rehashing round (``R = c^i``) only *widens* the candidate set, so the
verified candidates at any smaller radius are a principled best-effort
answer. A :class:`QueryBudget` caps the work a query may perform —
wall-clock deadline, charged I/O pages, verified candidates — and when a
cap is hit mid-search the engine finishes verifying the candidates it has
already collected and returns them with
``QueryStats.degraded = True``, ``QueryStats.budget_exhausted`` naming
the tripped cap, and ``QueryStats.final_radius`` recording the achieved
radius. A budgeted query never raises because of its budget.

Budgets are checked at round boundaries (after the round's counting and
verification), so a round in flight always completes: results are always
*verified* true distances, never raw collision-count guesses. The I/O cap
requires a :class:`repro.storage.PageManager` on the index — without one
there is no page accounting to compare against and the cap is inert. The
``deadline_s`` cap reads the wall clock and is therefore the one
non-deterministic cap; ``max_io_pages`` and ``max_candidates`` degrade
deterministically (same seed, same budget ⇒ same degraded result).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["QueryBudget", "BudgetTracker"]


@dataclass(frozen=True)
class QueryBudget:
    """Work limits for one query, with graceful degradation on overrun.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds the query may run (measured from query entry,
        including hashing).
    max_io_pages:
        Page reads+writes the query may charge to its page manager.
    max_candidates:
        Verified candidates after which the search stops growing.

    All caps default to ``None`` (unlimited); at least one must be set.
    The same object works on the sequential and batch paths of
    :class:`repro.core.c2lsh.C2LSH` and on :class:`repro.core.qalsh.QALSH`.
    """

    deadline_s: float | None = None
    max_io_pages: int | None = None
    max_candidates: int | None = None

    def __post_init__(self):
        if (self.deadline_s is None and self.max_io_pages is None
                and self.max_candidates is None):
            raise ValueError("a QueryBudget must set at least one limit")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.max_io_pages is not None and self.max_io_pages < 1:
            raise ValueError(
                f"max_io_pages must be >= 1, got {self.max_io_pages}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )

    def remaining_s(self, started, now=None):
        """Wall-clock seconds left before ``deadline_s``, or ``None``.

        ``started`` is the query's ``time.perf_counter()`` entry stamp.
        Returns ``None`` when the budget has no deadline; never negative.
        The sharded engine's supervision layer uses this to derive
        per-call deadlines on the worker protocol (remaining budget plus
        the engine's round timeout).
        """
        if self.deadline_s is None:
            return None
        now = now if now is not None else time.perf_counter()
        return max(0.0, self.deadline_s - (now - started))

    def start(self, page_manager=None, started=None):
        """Begin tracking one query; returns a :class:`BudgetTracker`.

        ``started`` anchors the deadline (a ``time.perf_counter()``
        value; defaults to now). ``page_manager`` supplies the I/O
        snapshot the ``max_io_pages`` cap diffs against.
        """
        return BudgetTracker(self, page_manager, started)


class BudgetTracker:
    """Per-query budget state: a snapshot plus an ``exceeded`` probe."""

    __slots__ = ("budget", "_pm", "_snapshot", "_started")

    def __init__(self, budget, page_manager=None, started=None):
        self.budget = budget
        self._pm = page_manager
        self._snapshot = (page_manager.snapshot()
                          if page_manager is not None else None)
        self._started = started if started is not None \
            else time.perf_counter()

    def io_spent(self):
        """Pages charged since tracking started (0 without a manager)."""
        if self._snapshot is None:
            return 0
        delta = self._pm.since(self._snapshot)
        return delta.reads + delta.writes

    def exceeded(self, n_candidates=0):
        """Which cap is exhausted, or ``""`` while within budget.

        Deterministic caps are checked first so degraded results are
        reproducible whenever the deadline is not the binding limit:
        the order is ``"candidates"``, then ``"io_pages"``, then
        ``"deadline"``.
        """
        b = self.budget
        if (b.max_candidates is not None
                and n_candidates >= b.max_candidates):
            return "candidates"
        if (b.max_io_pages is not None and self._snapshot is not None
                and self.io_spent() >= b.max_io_pages):
            return "io_pages"
        if (b.deadline_s is not None
                and time.perf_counter() - self._started >= b.deadline_s):
            return "deadline"
        return ""
