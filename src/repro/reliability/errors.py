"""Typed failures of the reliability layer.

Three failure families exist in this repository:

* **Transient** — an I/O operation failed but retrying may succeed
  (:class:`TransientIOError`). These are raised by the fault injector at
  the storage charge sites and absorbed by the bounded retry wrapper in
  :class:`repro.reliability.FaultInjector`; one only escapes to the caller
  when the retry budget is exhausted.
* **Permanent** — a persisted index file is damaged
  (:class:`CorruptIndexError`). Retrying cannot help; the error names the
  damaged section so operators know whether the container, the manifest,
  or a specific array is at fault.
* **Process loss** — a shard worker died or stopped responding
  (:class:`WorkerFailureError`). The sharded engine's supervision layer
  (:mod:`repro.sharding.supervisor`) normally absorbs these by respawning
  the worker or degrading the answer; the error only reaches callers
  under the ``"raise"`` failure policy, and it carries the per-worker
  causes plus whatever partial results were gathered before raising.

:class:`InjectedWorkerExit` is the chaos-side companion of process loss:
an ``"exit"`` fault rule firing at a ``worker_exit.*`` site raises it,
and :class:`repro.sharding.worker.ShardHost` translates it into a real
``os._exit`` when running inside a worker process (in-process hosts let
it propagate so the serial runner can simulate the death).

``CorruptIndexError`` subclasses :class:`ValueError` so existing callers
that guard index loading with ``except ValueError`` keep working.
"""

from __future__ import annotations

__all__ = ["TransientIOError", "CorruptIndexError", "WorkerFailureError",
           "InjectedWorkerExit"]


class TransientIOError(OSError):
    """A retryable I/O failure injected (or modeled) at a storage site.

    Attributes
    ----------
    site:
        The storage charge site that failed (``"bucket_scan"``,
        ``"data_read"``, ``"btree_descend"``, ...).
    op:
        1-based operation sequence number at that site when the failure
        fired, useful for reproducing a fault deterministically.
    """

    def __init__(self, site, op=0, detail=""):
        self.site = str(site)
        self.op = int(op)
        self.detail = str(detail)
        message = f"transient I/O failure at site {self.site!r} (op {self.op})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class CorruptIndexError(ValueError):
    """A persisted index file failed integrity verification.

    Attributes
    ----------
    path:
        The file that failed to load.
    section:
        Which part of the file is damaged: ``"container"`` (the file is
        not a readable archive), ``"manifest"`` (the integrity manifest is
        missing or unparseable), ``"format_version"`` / ``"kind"``
        (header fields disagree with what the loader expects), or the
        name of the specific array whose checksum, dtype, or shape did
        not match.
    detail:
        Free-form diagnostic text.
    """

    def __init__(self, path, section, detail=""):
        self.path = str(path)
        self.section = str(section)
        self.detail = str(detail)
        message = (f"corrupt index file {self.path!r}: "
                   f"section {self.section!r} failed verification")
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class WorkerFailureError(RuntimeError):
    """One or more shard workers died, hung, or could not be reached.

    Attributes
    ----------
    method:
        The worker-protocol call that failed (``"build"``,
        ``"batch_round"``, ``"fallback_verify"``, ...).
    failures:
        ``{worker index: cause}`` where cause is ``"broken_pool"`` (the
        process died), ``"timeout"`` (the call missed its deadline),
        ``"worker_exit"`` (a simulated in-process death), or ``"dead"``
        (the worker was already out of service).
    results:
        Whatever the *surviving* workers returned for the same call,
        keyed by worker index — the raw material for degraded answers.
    """

    def __init__(self, method, failures, results=None):
        self.method = str(method)
        self.failures = dict(failures)
        self.results = dict(results or {})
        workers = ", ".join(f"{w}: {c}" for w, c
                            in sorted(self.failures.items()))
        super().__init__(
            f"worker failure during {self.method!r} ({workers})")


class InjectedWorkerExit(Exception):
    """An ``"exit"`` fault rule fired: this worker should die now.

    Raised by :meth:`repro.reliability.FaultInjector.check` at
    ``worker_exit.*`` sites. Inside a real worker process the host
    converts it into ``os._exit``; in-process hosts let it escape so the
    serial runner can treat the host as dead without killing the test
    process.
    """

    def __init__(self, site, op=0):
        self.site = str(site)
        self.op = int(op)
        super().__init__(
            f"injected worker exit at site {self.site!r} (op {self.op})")
