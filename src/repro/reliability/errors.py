"""Typed failures of the reliability layer.

Two failure families exist in this repository:

* **Transient** — an I/O operation failed but retrying may succeed
  (:class:`TransientIOError`). These are raised by the fault injector at
  the storage charge sites and absorbed by the bounded retry wrapper in
  :class:`repro.reliability.FaultInjector`; one only escapes to the caller
  when the retry budget is exhausted.
* **Permanent** — a persisted index file is damaged
  (:class:`CorruptIndexError`). Retrying cannot help; the error names the
  damaged section so operators know whether the container, the manifest,
  or a specific array is at fault.

``CorruptIndexError`` subclasses :class:`ValueError` so existing callers
that guard index loading with ``except ValueError`` keep working.
"""

from __future__ import annotations

__all__ = ["TransientIOError", "CorruptIndexError"]


class TransientIOError(OSError):
    """A retryable I/O failure injected (or modeled) at a storage site.

    Attributes
    ----------
    site:
        The storage charge site that failed (``"bucket_scan"``,
        ``"data_read"``, ``"btree_descend"``, ...).
    op:
        1-based operation sequence number at that site when the failure
        fired, useful for reproducing a fault deterministically.
    """

    def __init__(self, site, op=0, detail=""):
        self.site = str(site)
        self.op = int(op)
        self.detail = str(detail)
        message = f"transient I/O failure at site {self.site!r} (op {self.op})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class CorruptIndexError(ValueError):
    """A persisted index file failed integrity verification.

    Attributes
    ----------
    path:
        The file that failed to load.
    section:
        Which part of the file is damaged: ``"container"`` (the file is
        not a readable archive), ``"manifest"`` (the integrity manifest is
        missing or unparseable), ``"format_version"`` / ``"kind"``
        (header fields disagree with what the loader expects), or the
        name of the specific array whose checksum, dtype, or shape did
        not match.
    detail:
        Free-form diagnostic text.
    """

    def __init__(self, path, section, detail=""):
        self.path = str(path)
        self.section = str(section)
        self.detail = str(detail)
        message = (f"corrupt index file {self.path!r}: "
                   f"section {self.section!r} failed verification")
        if detail:
            message += f" ({detail})"
        super().__init__(message)
