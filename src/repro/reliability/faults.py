"""Deterministic fault injection for the storage charge sites.

Every page access in this repository funnels through a
:class:`repro.storage.PageManager` charge call that names its *site*
(``"bucket_scan"``, ``"data_read"``, ``"btree_descend"``, ``"build"``,
...). A :class:`FaultInjector` attached to the page manager intercepts
those calls and, according to a declarative :class:`FaultPlan`, can

* raise a :class:`~repro.reliability.errors.TransientIOError`,
* inject latency (``time.sleep``), or
* corrupt the data a site returns (via :meth:`FaultInjector.corrupt`,
  which the data-file read path consults).

Transient errors are absorbed by the injector's own bounded
retry-with-backoff wrapper (:meth:`FaultInjector.guard`): the site is
retried up to :attr:`RetryPolicy.max_retries` times, each retry recorded
in the injector's :class:`repro.obs.MetricsRegistry`, and the error only
escapes when the retry budget is exhausted.

Determinism: the injector is seedable and all of its decisions are pure
functions of ``(seed, per-site operation counts)``. Rules using ``every``
fire on fixed operation indices; rules using ``probability < 1`` draw
from the injector's private RNG, so runs with the same seed *and* the
same operation order repeat exactly. Corruption modes ``"zero"`` and
``"bias"`` depend only on the array being corrupted, which is what makes
the batch and sequential query paths equivalent under the same plan (the
two paths interleave site operations differently, but transform identical
reads identically).
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..obs.registry import MetricsRegistry
from .errors import InjectedWorkerExit, TransientIOError

__all__ = ["FaultRule", "FaultPlan", "RetryPolicy", "FaultInjector",
           "KINDS", "CORRUPT_MODES"]

#: Fault kinds a rule may inject.
KINDS = ("error", "latency", "corrupt", "exit")

#: Supported corruption transforms (see :meth:`FaultInjector.corrupt`).
CORRUPT_MODES = ("zero", "bias", "noise")


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where, what, and when it fires.

    Parameters
    ----------
    site:
        Charge site the rule applies to, or ``"*"`` for every site.
        The sharded engine's hosts additionally consult the injector at
        ``worker_exit.<step>`` sites (one per worker-protocol step:
        ``worker_exit.build``, ``worker_exit.batch_round``, ...), which
        is where ``"exit"`` and stuck-worker ``"latency"`` rules belong.
    kind:
        ``"error"`` (raise :class:`TransientIOError`), ``"latency"``
        (sleep ``latency_s``), ``"corrupt"`` (transform returned data),
        or ``"exit"`` (raise :class:`InjectedWorkerExit` — a
        :class:`repro.sharding.worker.ShardHost` running in a real worker
        process converts it into ``os._exit``, i.e. sudden process
        death).
    probability:
        Chance of firing per matching operation (ignored when ``every``
        is set). ``1.0`` fires on every operation.
    every:
        Deterministic cadence: fire on every ``every``-th matching
        operation (1-based, counted after ``start_after``). Preferred
        over ``probability`` when exact reproducibility across differing
        operation interleavings matters.
    start_after:
        Skip this many operations at the site before the rule arms.
    max_triggers:
        Stop firing after this many triggers (``None`` = unlimited).
    latency_s:
        Sleep duration for ``"latency"`` rules.
    mode:
        Corruption transform for ``"corrupt"`` rules: ``"zero"`` (wipe
        the block), ``"bias"`` (add ``amount`` to every element), or
        ``"noise"`` (add seeded Gaussian noise of scale ``amount``).
    amount:
        Magnitude parameter of ``"bias"`` / ``"noise"``.
    worker:
        Scope the rule to one worker of a multi-worker deployment (the
        :class:`~repro.sharding.ShardedC2LSH` worker index). ``None``
        applies everywhere. Hosts other than the named worker drop the
        rule entirely, which is how a chaos plan kills exactly one
        process out of a fleet deterministically.
    """

    site: str
    kind: str
    probability: float = 1.0
    every: int | None = None
    start_after: int = 0
    max_triggers: int | None = None
    latency_s: float = 0.0
    mode: str = "zero"
    amount: float = 1.0
    worker: int | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.start_after < 0:
            raise ValueError(
                f"start_after must be >= 0, got {self.start_after}"
            )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError(
                f"max_triggers must be >= 1, got {self.max_triggers}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corruption mode {self.mode!r}; "
                f"available: {CORRUPT_MODES}"
            )
        if self.worker is not None and self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")

    def matches(self, site):
        """Whether this rule applies to operations at ``site``."""
        return self.site == "*" or self.site == site


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultRule` entries.

    Plans are declarative and serializable: :meth:`from_dict` /
    :meth:`to_dict` round-trip through plain JSON-compatible structures,
    so chaos configurations can live in files or CI matrices.
    """

    rules: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(
                    f"plan entries must be FaultRule, got {type(rule).__name__}"
                )

    @classmethod
    def none(cls):
        """The empty plan: injector attached, no faults fire."""
        return cls(())

    @classmethod
    def from_dict(cls, spec):
        """Build a plan from ``{"rules": [{...}, ...]}`` (or a bare list)."""
        if isinstance(spec, dict):
            spec = spec.get("rules", [])
        return cls(tuple(
            rule if isinstance(rule, FaultRule) else FaultRule(**rule)
            for rule in spec
        ))

    def to_dict(self):
        """The plan as a JSON-serializable dict (inverse of from_dict)."""
        return {"rules": [asdict(rule) for rule in self.rules]}

    def for_site(self, site, kinds):
        """Rules matching ``site`` whose kind is in ``kinds``."""
        return [r for r in self.rules if r.kind in kinds and r.matches(site)]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient storage failures.

    ``max_retries`` extra attempts follow a failed operation, sleeping
    ``backoff_s`` before the first retry and multiplying the delay by
    ``multiplier`` after each. The defaults retry promptly (no sleep) so
    simulated chaos tests stay fast; services wanting real pacing set
    ``backoff_s``.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )


class FaultInjector:
    """Seedable fault source consulted by the storage charge sites.

    Attach one to a :class:`repro.storage.PageManager`
    (``PageManager(fault_injector=...)``) and every charge call consults
    :meth:`guard`; the data-file read path additionally passes returned
    vectors through :meth:`corrupt`. With the empty plan the injector is
    a no-op apart from per-site operation counting.

    Parameters
    ----------
    plan:
        A :class:`FaultPlan`, a dict/list accepted by
        :meth:`FaultPlan.from_dict`, or ``None`` for the empty plan.
    seed:
        Seeds the private RNG behind probabilistic rules and
        ``"noise"`` corruption.
    retry:
        The :class:`RetryPolicy` bounding :meth:`guard`'s retries.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to record injected faults
        and retries into; a private registry is created when omitted.
        Counters used: ``reliability.fault.<site>.<kind>``,
        ``reliability.retry.<site>``, ``reliability.giveup.<site>``, and
        ``reliability.ops.<site>``.
    """

    def __init__(self, plan=None, seed=0, retry=None, metrics=None):
        if plan is None:
            plan = FaultPlan.none()
        elif not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan
        self.seed = int(seed)
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = True
        self._rng = random.Random(self.seed)
        self._ops = {}        # (channel, site) -> operations seen
        self._fired = {}      # id(rule) is unstable; key by rule index
        self._rule_index = {rule: i for i, rule in enumerate(plan.rules)}

    # -- rule evaluation -----------------------------------------------------

    def _next_op(self, channel, site):
        key = (channel, site)
        op = self._ops.get(key, 0) + 1
        self._ops[key] = op
        return op

    def _fires(self, rule, op):
        if op <= rule.start_after:
            return False
        idx = self._rule_index[rule]
        fired = self._fired.get(idx, 0)
        if rule.max_triggers is not None and fired >= rule.max_triggers:
            return False
        if rule.every is not None:
            hit = (op - rule.start_after) % rule.every == 0
        elif rule.probability >= 1.0:
            hit = True
        else:
            hit = self._rng.random() < rule.probability
        if hit:
            self._fired[idx] = fired + 1
        return hit

    # -- the three injection channels ----------------------------------------

    def check(self, site):
        """One raw operation at ``site``: may sleep, may raise.

        Raises :class:`TransientIOError` when an ``"error"`` rule fires
        and :class:`InjectedWorkerExit` when an ``"exit"`` rule fires
        (the shard hosts translate the latter into real process death).
        Callers that want the bounded retry semantics use :meth:`guard`
        instead; :meth:`check` is the single-attempt primitive.
        """
        if not self.enabled:
            return
        op = self._next_op("io", site)
        self.metrics.counter(f"reliability.ops.{site}").inc()
        for rule in self.plan.for_site(site, ("latency", "error", "exit")):
            if not self._fires(rule, op):
                continue
            self.metrics.counter(
                f"reliability.fault.{site}.{rule.kind}").inc()
            if rule.kind == "latency":
                if rule.latency_s:
                    time.sleep(rule.latency_s)
            elif rule.kind == "exit":
                raise InjectedWorkerExit(site, op)
            else:
                raise TransientIOError(site, op)

    def guard(self, site):
        """Run one operation at ``site`` under the retry policy.

        Returns the number of retries it took (0 when the first attempt
        succeeded). Each retry is recorded as ``reliability.retry.<site>``;
        when the policy's budget is exhausted the final
        :class:`TransientIOError` is recorded as
        ``reliability.giveup.<site>`` and re-raised.
        """
        if not self.enabled or not self.plan.rules:
            return 0
        delay = self.retry.backoff_s
        for attempt in range(self.retry.max_retries + 1):
            try:
                self.check(site)
                return attempt
            except TransientIOError:
                if attempt >= self.retry.max_retries:
                    self.metrics.counter(f"reliability.giveup.{site}").inc()
                    from ..obs import flight

                    flight.note("retry_giveup", site=site,
                                attempts=attempt + 1, seed=self.seed)
                    flight.dump("retry_giveup", extra={"site": site})
                    raise
                self.metrics.counter(f"reliability.retry.{site}").inc()
                if delay:
                    time.sleep(delay)
                    delay *= self.retry.multiplier
        raise AssertionError("unreachable")  # pragma: no cover

    def corrupt(self, site, array):
        """Pass data returned by ``site`` through the corruption rules.

        Returns ``array`` untouched when no ``"corrupt"`` rule fires;
        otherwise returns a transformed *copy* (the caller's array is
        never mutated). Transforms:

        * ``"zero"`` — the whole block becomes zeros;
        * ``"bias"`` — ``amount`` is added to every element;
        * ``"noise"`` — seeded Gaussian noise of scale ``amount`` is
          added (deterministic for a fixed seed and operation order).
        """
        if not self.enabled:
            return array
        rules = self.plan.for_site(site, ("corrupt",))
        if not rules:
            return array
        op = self._next_op("data", site)
        out = array
        for rule in rules:
            if not self._fires(rule, op):
                continue
            self.metrics.counter(
                f"reliability.fault.{site}.corrupt").inc()
            if out is array:
                out = np.array(array, dtype=np.float64, copy=True)
            if rule.mode == "zero":
                out[...] = 0.0
            elif rule.mode == "bias":
                out += rule.amount
            else:  # noise
                noise = np.array(
                    [self._rng.gauss(0.0, 1.0) for _ in range(out.size)]
                ).reshape(out.shape)
                out += rule.amount * noise
        return out

    # -- introspection -------------------------------------------------------

    def ops(self, site, channel="io"):
        """Operations observed at ``site`` on ``channel`` (io / data)."""
        return self._ops.get((channel, site), 0)

    def snapshot(self):
        """The injector's metrics as one JSON-serializable dict."""
        return self.metrics.snapshot()

    def reset(self):
        """Clear operation counts, trigger counts, and reseed the RNG."""
        self._ops.clear()
        self._fired.clear()
        self._rng = random.Random(self.seed)

    def __repr__(self):
        return (f"FaultInjector(rules={len(self.plan.rules)}, "
                f"seed={self.seed}, enabled={self.enabled})")
