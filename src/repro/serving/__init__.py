"""Overload-resilient network serving for C2LSH engines.

The serving layer answers the question every prior layer leaves open:
what happens when *clients* arrive faster than the engine can answer?
Its three modules split the problem cleanly:

* :mod:`~repro.serving.protocol` — the length-prefixed JSON wire format,
  request validation, response shapes, and the blocking
  :class:`QueryClient`;
* :mod:`~repro.serving.admission` — bounded admission, deadline-aware
  shedding, fairness, and the adaptive coalescing window;
* :mod:`~repro.serving.server` — the asyncio :class:`QueryServer` tying
  them to an index: coalesced micro-batches (bit-identical to sequential
  queries), per-request deadline budgets anchored at admission, graceful
  drain, and ``serving.*`` observability.

::

    from repro.serving import QueryServer, QueryClient, ServerConfig

    with QueryServer(index, ServerConfig()) as server:
        with QueryClient("127.0.0.1", server.port) as client:
            resp = client.query(vector, k=10, deadline_s=0.25)
"""

from .admission import AdmissionController, CoalesceTuner, PendingQuery
from .protocol import (
    MAX_FRAME_BYTES,
    SHED_REASONS,
    ProtocolError,
    QueryClient,
    decode_frames,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    read_frame,
    shed_response,
)
from .server import QueryServer, ServerConfig

__all__ = [
    "AdmissionController",
    "CoalesceTuner",
    "MAX_FRAME_BYTES",
    "PendingQuery",
    "ProtocolError",
    "QueryClient",
    "QueryServer",
    "SHED_REASONS",
    "ServerConfig",
    "decode_frames",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "read_frame",
    "shed_response",
]
