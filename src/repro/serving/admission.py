"""Admission control, load shedding, and coalescing-window tuning.

The serving front-end's core robustness property — *staying up under
overload* — lives here. An unprotected server accepts everything, queues
unboundedly, and collapses: memory grows without limit, every queued
request eventually blows its deadline, and the server does maximal work
for zero successful responses. :class:`AdmissionController` inverts
that: a **bounded** queue (overflow is shed with an explicit
``overloaded`` rejection, never buffered), **deadline-based admission**
(a request whose deadline cannot plausibly be met given the current
queue is refused immediately — wait time counts against the deadline,
so the estimate uses queue depth × the observed per-query service rate
plus the coalescing window), and **drain** (a draining server refuses
new work with ``draining`` while in-flight work completes).

Batch formation adds two more guarantees. *Expiry sweeping*: a request
whose deadline lapsed while it queued is shed at dispatch time instead
of being processed into a worthless answer. *Fairness*: when several
clients are waiting, one client may occupy at most its proportional
share of a micro-batch (never less than one slot), so a flooding client
lengthens its own queue, not everyone's batch.

:class:`CoalesceTuner` sizes the micro-batching window from the observed
arrival rate: the window targets ``target_batch`` arrivals' worth of
time (EWMA inter-arrival gap × target), clamped to
``[min_window_s, max_window_s]`` — and collapses to zero under sparse
traffic, where waiting would add latency with no batching to gain.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = ["AdmissionController", "CoalesceTuner", "PendingQuery"]


class PendingQuery:
    """One admitted request waiting for (or inside) a micro-batch."""

    __slots__ = ("vector", "k", "deadline_s", "budget", "client", "req_id",
                 "admitted_at", "respond")

    def __init__(self, vector, k, deadline_s, budget, client, req_id,
                 admitted_at, respond):
        self.vector = vector
        self.k = k
        self.deadline_s = deadline_s
        self.budget = budget
        self.client = client
        self.req_id = req_id
        self.admitted_at = admitted_at
        self.respond = respond

    def expired(self, now):
        """Whether the request's deadline lapsed (while queued)."""
        return (self.deadline_s is not None
                and now - self.admitted_at >= self.deadline_s)


class CoalesceTuner:
    """Arrival-rate-adaptive micro-batching window.

    ``window()`` answers "how long is it worth waiting for more arrivals
    before dispatching the batch we already have?":

    * no traffic history, or arrivals sparser than ``max_window_s`` —
      zero: dispatch immediately, waiting buys nothing but latency;
    * dense traffic — ``target_batch × EWMA gap``, clamped to
      ``[min_window_s, max_window_s]``: roughly the time for a
      target-size batch to accumulate.

    The EWMA (``alpha`` per observation) adapts within tens of arrivals,
    so a traffic burst shrinks per-batch latency headroom quickly and a
    lull stops the server from idling in windows.
    """

    def __init__(self, target_batch=32, min_window_s=0.0,
                 max_window_s=0.005, alpha=0.1):
        if target_batch < 1:
            raise ValueError(f"target_batch must be >= 1, got {target_batch}")
        if not 0.0 <= min_window_s <= max_window_s:
            raise ValueError(
                f"need 0 <= min_window_s <= max_window_s, got "
                f"{min_window_s} and {max_window_s}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.target_batch = int(target_batch)
        self.min_window_s = float(min_window_s)
        self.max_window_s = float(max_window_s)
        self.alpha = float(alpha)
        self._gap_ewma = None
        self._last_arrival = None

    def on_arrival(self, now=None):
        """Record one request arrival (admitted or not — load is load)."""
        now = now if now is not None else time.perf_counter()
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma += self.alpha * (gap - self._gap_ewma)
        self._last_arrival = now

    @property
    def gap_ewma_s(self):
        """Smoothed inter-arrival gap (``None`` before two arrivals)."""
        return self._gap_ewma

    def window(self):
        """The coalescing wait to apply before dispatching a batch."""
        gap = self._gap_ewma
        if gap is None or gap >= self.max_window_s:
            return 0.0
        return min(self.max_window_s,
                   max(self.min_window_s, self.target_batch * gap))


class AdmissionController:
    """Bounded admission queue with deadline-aware shedding and drain.

    Single-threaded by design: every method runs on the server's event
    loop, so there are no locks. The server calls :meth:`offer` per
    request, :meth:`take_batch` per dispatch, and
    :meth:`record_service` after each batch completes (feeding the
    service-rate estimate the deadline check uses).
    """

    def __init__(self, capacity=256, clock=time.perf_counter,
                 service_alpha=0.2):
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        self.draining = False
        self._queue = deque()
        self._service_alpha = float(service_alpha)
        self._service_ewma_s = None   # per-query service estimate
        self._batch_ewma_s = None     # whole-batch duration estimate

    # -- introspection --

    @property
    def depth(self):
        """Requests currently queued (admitted, not yet dispatched)."""
        return len(self._queue)

    @property
    def service_estimate_s(self):
        """Smoothed per-query service seconds (``None`` until measured)."""
        return self._service_ewma_s

    def estimated_wait_s(self, window_s=0.0):
        """Predicted queue wait + service for a request admitted now.

        Queue depth × per-query rate, plus one *full batch's* observed
        duration (the worst case for the batch already in flight when
        this request arrives — head-of-line latency the depth term
        cannot see) and the coalescing window a fresh request may sit
        through. Deliberately simple and deliberately conservative — it
        exists to refuse *hopeless* deadlines, not to promise
        latencies; the benchmark validates that admitted p99 stays
        within deadline under 2x overload.
        """
        per_query = self._service_ewma_s or 0.0
        inflight_cost = self._batch_ewma_s or 0.0
        return window_s + inflight_cost + (len(self._queue) + 1) * per_query

    # -- admission --

    def offer(self, pending, window_s=0.0):
        """Admit ``pending`` or return a shed reason.

        Returns ``""`` on admission; else one of the protocol's shed
        reasons — ``"draining"``, ``"overloaded"`` (queue at capacity),
        ``"deadline"`` (the request's deadline cannot be met even if
        everything ahead of it behaves as estimated).
        """
        if self.draining:
            return "draining"
        if len(self._queue) >= self.capacity:
            return "overloaded"
        if pending.deadline_s is not None \
                and self.estimated_wait_s(window_s) > pending.deadline_s:
            return "deadline"
        self._queue.append(pending)
        return ""

    def begin_drain(self):
        """Refuse all future admissions; queued work still completes."""
        self.draining = True

    # -- dispatch --

    def take_batch(self, max_batch, now=None):
        """Form one micro-batch: ``(batch, expired)``.

        Scans the queue in FIFO order. The head request pins the batch's
        ``k`` (one ``query_batch`` call answers one ``k``); requests
        with a different ``k`` keep their place for a later batch.
        Requests whose deadline already lapsed are swept into
        ``expired`` — the caller sheds them with reason ``"deadline"``
        instead of spending engine work on an answer nobody is waiting
        for. When several clients are queued, each may take at most
        ``ceil(max_batch / clients)`` slots (at least 1) so a single
        flooding client cannot fill every batch.
        """
        now = now if now is not None else self.clock()
        expired = []
        survivors = deque()
        while self._queue:
            p = self._queue.popleft()
            if p.expired(now):
                expired.append(p)
            else:
                survivors.append(p)
        self._queue = survivors
        if not self._queue:
            return [], expired

        clients = {p.client for p in self._queue}
        per_client_cap = max(1, -(-int(max_batch) // max(1, len(clients))))
        batch_k = self._queue[0].k
        batch, taken, leftover = [], {}, deque()
        while self._queue and len(batch) < int(max_batch):
            p = self._queue.popleft()
            if p.k != batch_k \
                    or taken.get(p.client, 0) >= per_client_cap:
                leftover.append(p)
                continue
            taken[p.client] = taken.get(p.client, 0) + 1
            batch.append(p)
        # Skipped requests keep their arrival order ahead of nothing —
        # they simply wait for the next batch.
        leftover.extend(self._queue)
        self._queue = leftover
        return batch, expired

    def record_service(self, n_queries, seconds):
        """Fold one completed batch into the service-rate estimate."""
        if n_queries < 1:
            return
        per_query = float(seconds) / n_queries
        a = self._service_alpha
        if self._service_ewma_s is None:
            self._service_ewma_s = per_query
            self._batch_ewma_s = float(seconds)
        else:
            self._service_ewma_s += a * (per_query - self._service_ewma_s)
            self._batch_ewma_s += a * (float(seconds) - self._batch_ewma_s)

    def drain_pending(self):
        """Pop every queued request (server shutdown path)."""
        pending = list(self._queue)
        self._queue.clear()
        return pending
