"""Length-prefixed JSON wire protocol for the serving front-end.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON. The format is deliberately boring: every language
can speak it, ``nc``-level debugging works, and the length prefix gives
the server an O(1) handle on how much memory a peer can make it buffer
(frames above ``max_bytes`` are rejected *before* the body is read).

Requests ask for one k-NN answer each::

    {"op": "query", "id": 7, "query": [..dim floats..], "k": 10,
     "deadline_s": 0.25}

``op`` defaults to ``"query"`` (``"ping"`` echoes, for liveness checks).
``id`` is an opaque client token echoed back verbatim — responses may
arrive out of request order on a pipelined connection, because the
server coalesces admissions into micro-batches. ``deadline_s`` is the
client's end-to-end latency bound, measured from *admission*: queue wait
counts against it (see :mod:`repro.serving.admission`).

Responses carry a ``status`` discriminator:

* ``"ok"`` — ``ids``/``distances`` (exact float64 round-trip: values are
  bit-identical to a sequential :meth:`~repro.core.c2lsh.C2LSH.query`)
  plus a ``stats`` summary (rounds, candidates, ``terminated_by``,
  ``degraded``, ``budget_exhausted``, ``failed_shards``, server-side
  ``queue_wait_s``/``elapsed_s``);
* ``"shed"`` — the request was refused, ``reason`` one of
  ``"overloaded"`` (admission queue full), ``"deadline"`` (the deadline
  cannot be met / expired while queued), ``"draining"`` (graceful
  shutdown in progress);
* ``"error"`` — a malformed request (``"bad_request"``) or a server-side
  failure (e.g. ``"worker_failure"`` when the sharded engine's failover
  policy is ``"raise"``).

:class:`QueryClient` is the blocking convenience client used by the
tests, the benchmark harness, and the examples; anything async can speak
the protocol directly via :func:`read_frame`/:func:`encode_frame`.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueryClient",
    "encode_frame",
    "decode_frames",
    "read_frame",
    "parse_request",
    "ok_response",
    "shed_response",
    "error_response",
]

#: Default ceiling on one frame's payload; a dim=1024 float query is
#: ~20 KiB of JSON, so 8 MiB is orders of magnitude of headroom while
#: still bounding what a misbehaving peer can make the server buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")

#: Shed reasons the protocol defines (documented for clients).
SHED_REASONS = ("overloaded", "deadline", "draining")


class ProtocolError(ValueError):
    """A frame or request that violates the wire protocol."""


def encode_frame(obj):
    """Serialize ``obj`` to one length-prefixed JSON frame (bytes)."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_frames(buffer):
    """Split ``buffer`` (bytes) into ``(objects, remainder)``.

    Decodes every complete frame at the front of ``buffer``; the
    remainder is a partial trailing frame (possibly empty). Used by the
    blocking client and by tests; the async server reads frames
    incrementally with :func:`read_frame` instead.
    """
    objects = []
    view = memoryview(buffer)
    while len(view) >= _HEADER.size:
        (length,) = _HEADER.unpack_from(view)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte limit")
        if len(view) < _HEADER.size + length:
            break
        body = bytes(view[_HEADER.size:_HEADER.size + length])
        try:
            objects.append(json.loads(body))
        except ValueError as exc:
            raise ProtocolError(f"invalid JSON frame: {exc}") from exc
        view = view[_HEADER.size + length:]
    return objects, bytes(view)


async def read_frame(reader, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns the decoded object, or ``None`` on clean EOF (connection
    closed between frames). Raises :class:`ProtocolError` on an
    oversized frame or invalid JSON, and ``IncompleteReadError`` on a
    torn frame (EOF mid-frame).
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{max_bytes}-byte limit")
    body = await reader.readexactly(length)
    try:
        return json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc


# -- request parsing ----------------------------------------------------------


def parse_request(obj, dim, max_k=None):
    """Validate one decoded request; returns ``(id, op, query, k, deadline)``.

    ``query`` comes back as a float64 vector of length ``dim``; ``op``
    is ``"query"`` or ``"ping"`` (for pings the other fields are
    ``None``). Raises :class:`ProtocolError` with a client-presentable
    message on any violation — the server turns that into a
    ``bad_request`` error response rather than dropping the connection.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    req_id = obj.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise ProtocolError("id must be a string or integer")
    op = obj.get("op", "query")
    if op == "ping":
        return req_id, op, None, None, None
    if op != "query":
        raise ProtocolError(f"unknown op {op!r}")
    raw = obj.get("query")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("query must be a non-empty array of numbers")
    try:
        vector = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"query is not numeric: {exc}") from exc
    if vector.ndim != 1 or vector.shape[0] != dim:
        raise ProtocolError(
            f"query must have {dim} dimensions, got shape {vector.shape}"
        )
    if not np.isfinite(vector).all():
        # Rejected here, per request: one NaN vector must not poison the
        # whole coalesced batch (the engines validate the full matrix).
        raise ProtocolError("query contains non-finite values")
    k = obj.get("k", 1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError(f"k must be a positive integer, got {k!r}")
    if max_k is not None and k > max_k:
        raise ProtocolError(f"k={k} exceeds the server's max_k={max_k}")
    deadline = obj.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or not deadline > 0:
            raise ProtocolError(
                f"deadline_s must be a positive number, got {deadline!r}"
            )
        deadline = float(deadline)
    return req_id, op, vector, k, deadline


# -- response builders --------------------------------------------------------


def _stats_payload(stats, queue_wait_s):
    """The JSON-safe slice of :class:`~repro.core.results.QueryStats`."""
    return {
        "rounds": int(stats.rounds),
        "candidates": int(stats.candidates),
        "io_reads": int(stats.io_reads),
        "terminated_by": stats.terminated_by,
        "degraded": bool(stats.degraded),
        "budget_exhausted": stats.budget_exhausted,
        "failed_shards": [int(s) for s in stats.failed_shards],
        "elapsed_s": float(stats.elapsed_s),
        "queue_wait_s": float(queue_wait_s),
    }


def ok_response(req_id, result, queue_wait_s=0.0):
    """A ``status: ok`` response for one :class:`QueryResult`.

    Floats survive the JSON round trip exactly (Python serializes the
    shortest repr that parses back to the same IEEE-754 double), so
    ``np.asarray(resp["distances"])`` equals the engine's distances
    bit for bit — the property the exactness tests pin down.
    """
    return {
        "id": req_id,
        "status": "ok",
        "ids": [int(i) for i in result.ids],
        "distances": [float(d) for d in result.distances],
        "stats": _stats_payload(result.stats, queue_wait_s),
    }


def shed_response(req_id, reason):
    """A ``status: shed`` rejection (explicit, never a dropped frame)."""
    return {"id": req_id, "status": "shed", "reason": str(reason)}


def error_response(req_id, error, message=""):
    """A ``status: error`` response (bad request or server failure)."""
    return {"id": req_id, "status": "error", "error": str(error),
            "message": str(message)}


# -- blocking client ----------------------------------------------------------


class QueryClient:
    """A blocking protocol client: one socket, pipelining-aware.

    ::

        with QueryClient("127.0.0.1", server.port) as client:
            resp = client.query(vector, k=10, deadline_s=0.25)
            assert resp["status"] == "ok"

    :meth:`query` sends one request and waits for *its* response
    (matching by ``id``; out-of-order responses for other in-flight ids
    are buffered). :meth:`send`/:meth:`recv` expose the pipelined layer
    for load generators that decouple the two.
    """

    def __init__(self, host, port, timeout=30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""
        self._pending = {}
        self._next_id = 0

    # -- lifecycle --

    def close(self):
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- pipelined layer --

    def send(self, vector, k=1, deadline_s=None, req_id=None):
        """Send one query request without waiting; returns its id."""
        if req_id is None:
            req_id = self._next_id
            self._next_id += 1
        request = {"op": "query", "id": req_id,
                   "query": [float(x) for x in np.asarray(vector).ravel()],
                   "k": int(k)}
        if deadline_s is not None:
            request["deadline_s"] = float(deadline_s)
        self.send_raw(request)
        return req_id

    def send_raw(self, obj):
        """Send an arbitrary frame (protocol tests use malformed ones)."""
        self._sock.sendall(encode_frame(obj))

    def recv(self):
        """The next response frame, whatever request it answers."""
        if self._pending:
            # Oldest buffered response first, for callers that mix
            # query() and recv().
            key = next(iter(self._pending))
            return self._pending.pop(key)
        return self._read_frame()

    def recv_for(self, req_id):
        """The response for ``req_id``, buffering others encountered."""
        while True:
            # Re-check the buffer every round: _read_frame may stash the
            # response we want as one of several frames read together
            # (a coalesced batch's answers often share a TCP segment).
            if req_id in self._pending:
                return self._pending.pop(req_id)
            resp = self._read_frame()
            if resp.get("id") == req_id:
                return resp
            self._pending[resp.get("id")] = resp

    # -- convenience --

    def query(self, vector, k=1, deadline_s=None):
        """Send one query and block for its response dict."""
        return self.recv_for(self.send(vector, k=k, deadline_s=deadline_s))

    def ping(self):
        """Round-trip a ping frame; returns the response dict."""
        self.send_raw({"op": "ping", "id": "ping"})
        return self.recv_for("ping")

    def _read_frame(self):
        while True:
            objects, self._buffer = decode_frames(self._buffer)
            if objects:
                # At most one object is consumed per call; push extras
                # into the pending map so nothing is lost.
                for extra in objects[1:]:
                    self._pending[extra.get("id")] = extra
                return objects[0]
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
