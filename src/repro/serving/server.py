"""Overload-resilient asyncio serving front-end for C2LSH engines.

:class:`QueryServer` turns an in-process index (:class:`~repro.core.c2lsh.C2LSH`
or :class:`~repro.sharding.engine.ShardedC2LSH`) into a network service that
stays correct and responsive under load it cannot absorb:

* **Coalescing** — single-query requests arriving close together are merged
  into one lockstep micro-batch (:class:`~repro.serving.admission.CoalesceTuner`
  sizes the wait window from the observed arrival rate), amortizing the
  per-round hash/count work across the batch. Results are bit-identical to
  answering each query alone: the batch engine is exact by construction, and
  per-request deadlines are carried as *per-query* budgets so one client's
  deadline never changes another client's answer.
* **Admission control and load shedding** — a bounded queue
  (:class:`~repro.serving.admission.AdmissionController`); overflow and
  hopeless deadlines are refused with an explicit ``shed`` response instead of
  queuing unboundedly. Queue wait counts against the deadline: each admitted
  request's :class:`~repro.reliability.QueryBudget` is anchored at admission
  time via ``with_start``, so a query that waited 80 ms of its 100 ms deadline
  gets 20 ms of engine time, not 100.
* **Hot-query caching** — an opt-in exact-match LRU (``cache_size``) answers
  repeated identical queries (same vector bytes, same ``k``, same probe mode)
  without touching the engine or the admission queue. Only non-degraded
  results are cached, so a hit always returns the full-fidelity answer, and
  the cache empties itself if the served index object is swapped.
* **Graceful drain** — :meth:`drain` refuses new admissions (``draining``)
  while in-flight and queued work completes; the readiness callback flips the
  paired :class:`~repro.obs.ObsServer`'s ``/healthz`` to 503 so load balancers
  stop routing here, while liveness stays ok.
* **Failure isolation** — the engine runs in a single-thread executor, so a
  worker death mid-batch (sharded engine) resolves per the index's
  :class:`~repro.reliability.FailoverPolicy` without wedging the event loop:
  ``degrade``/``rebuild`` surface as degraded-but-ok responses, ``raise``
  becomes a ``worker_failure`` error response for that batch only.

Everything observable flows through :mod:`repro.obs`: ``serving.*`` counters
and histograms, a span per dispatched batch, and flight-recorder postmortems
on shed storms.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from functools import partial
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..obs import flight, trace
from ..obs.registry import MetricsRegistry
from ..reliability.errors import WorkerFailureError
from .admission import AdmissionController, CoalesceTuner, PendingQuery
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    read_frame,
    shed_response,
)

__all__ = ["QueryServer", "ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for :class:`QueryServer`.

    The defaults are sized for the test/benchmark scale of this repo
    (thousands of points, sub-millisecond queries); a real deployment
    would raise ``max_batch``/``queue_capacity`` together with the
    engine's capacity.
    """

    #: Bind address; ``port=0`` picks an ephemeral port.
    host: str = "127.0.0.1"
    port: int = 0
    #: Hard cap on queries dispatched in one engine batch.
    max_batch: int = 64
    #: Bound on the admission queue; overflow sheds ``overloaded``.
    queue_capacity: int = 256
    #: Batch size the coalescing window aims for under dense traffic.
    target_batch: int = 32
    #: Clamp on the adaptive coalescing window.
    min_window_s: float = 0.0
    max_window_s: float = 0.005
    #: Largest ``k`` a request may ask for (protocol-level guard).
    max_k: int = 1024
    #: Frame size ceiling for this server's connections.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Server-wide deterministic budget caps (``max_candidates`` /
    #: ``max_io_pages``) merged into every request's budget. A
    #: ``deadline_s`` here acts as the default when the request carries
    #: none.
    budget: object = None
    #: Deadline applied to requests that do not send ``deadline_s``
    #: (``None`` = no deadline for such requests).
    default_deadline_s: float = None
    #: How long after the last overload shed the readiness probe keeps
    #: reporting not-ready (hysteresis, so probes see sustained
    #: pressure rather than a single blip).
    overload_grace_s: float = 1.0
    #: Shed-storm postmortem trigger: this many sheds inside
    #: ``shed_storm_window_s`` dumps the flight recorder once.
    shed_storm_threshold: int = 50
    shed_storm_window_s: float = 1.0
    #: Probing mode forwarded to the engine (``"classic"`` or
    #: ``"adaptive"``). ``"classic"`` keeps the engine call identical to
    #: a probe-unaware server, so it also works with indexes predating
    #: the ``probe`` parameter.
    probe: str = "classic"
    #: Hot-query LRU result cache capacity in entries; 0 disables the
    #: cache entirely (no lookups, no counters).
    cache_size: int = 0


def _index_dim(index):
    """The query dimensionality of ``index`` (engine-agnostic)."""
    dim = getattr(index, "dim", None)
    if dim is not None:
        return int(dim)
    data = getattr(index, "_data", None)
    if data is not None:
        return int(data.shape[1])
    raise TypeError(f"cannot determine query dim of {type(index).__name__}")


class QueryServer:
    """Asyncio front-end coalescing single queries into exact micro-batches.

    ::

        server = QueryServer(index, ServerConfig(port=0))
        server.start_in_thread()
        try:
            with QueryClient("127.0.0.1", server.port) as client:
                resp = client.query(vector, k=10, deadline_s=0.25)
        finally:
            server.stop_in_thread()          # graceful drain

    Inside an existing event loop, use ``await server.start()`` /
    ``await server.drain()`` directly. ``server.readiness`` plugs into
    :class:`~repro.obs.ObsServer` so ``/healthz`` reflects drain and
    overload state.
    """

    def __init__(self, index, config=None, metrics=None):
        self.index = index
        self.config = config or ServerConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dim = _index_dim(index)
        self.admission = AdmissionController(
            capacity=self.config.queue_capacity)
        self.tuner = CoalesceTuner(
            target_batch=self.config.target_batch,
            min_window_s=self.config.min_window_s,
            max_window_s=self.config.max_window_s)
        self._asyncio_server = None
        self._loop = None
        self._batch_task = None
        self._executor = None
        self._arrival = None
        self._stopping = False
        self._draining = False
        self._inflight = 0
        self._connections = set()
        self._shed_times = deque()
        self._cache = OrderedDict()
        self._cache_index_id = id(index)
        self._last_overload_shed = None
        self._storm_dumped = False
        self._response_tasks = set()
        # start_in_thread machinery
        self._thread = None
        self._thread_ready = None
        self._thread_error = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the listening socket and start the dispatch loop."""
        if self._asyncio_server is not None:
            raise RuntimeError("server is already running")
        self._loop = asyncio.get_running_loop()
        self._arrival = asyncio.Event()
        # One engine thread: batches run strictly one at a time, so the
        # engine never sees concurrent calls (C2LSH is not thread-safe)
        # and batch timing feeds a meaningful service-rate estimate.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving")
        self._asyncio_server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port)
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        return self

    @property
    def port(self):
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._asyncio_server is None:
            raise RuntimeError("server is not running")
        return self._asyncio_server.sockets[0].getsockname()[1]

    async def drain(self):
        """Graceful shutdown: finish queued + in-flight work, then stop.

        New admissions are refused with ``draining`` the moment this is
        called; the method returns once the last admitted query has been
        answered and the listener is closed.
        """
        await self._shutdown(drain=True)

    async def stop(self):
        """Hard stop: shed everything still queued, then shut down."""
        await self._shutdown(drain=False)

    async def _shutdown(self, drain):
        if self._asyncio_server is None:
            return
        self._draining = True
        self.admission.begin_drain()
        if not drain:
            for p in self.admission.drain_pending():
                self._respond(p, shed_response(p.req_id, "draining"))
                self._count_shed("draining")
        self._stopping = True
        self._arrival.set()
        if self._batch_task is not None:
            await self._batch_task
            self._batch_task = None
        # Responses are sent from fire-and-forget tasks; flush them
        # before tearing connections down so drained clients get their
        # answers.
        if self._response_tasks:
            await asyncio.gather(*self._response_tasks,
                                 return_exceptions=True)
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        self._asyncio_server = None
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=True)
        self._executor = None

    # -- threaded convenience --------------------------------------------------

    def start_in_thread(self, timeout=10.0):
        """Run the server on a private event-loop thread; returns ``self``.

        For synchronous callers (tests, benchmarks, examples). Blocks
        until the socket is bound, so ``server.port`` is valid on
        return.
        """
        if self._thread is not None:
            raise RuntimeError("server thread is already running")
        self._thread_ready = threading.Event()
        self._thread_error = None

        def runner():
            async def main():
                try:
                    await self.start()
                except BaseException as exc:
                    self._thread_error = exc
                    self._thread_ready.set()
                    return
                self._thread_ready.set()
                # Serve until a shutdown coroutine cancels this wait.
                try:
                    await asyncio.get_running_loop().create_future()
                except asyncio.CancelledError:
                    pass

            asyncio.run(main())

        self._thread = threading.Thread(
            target=runner, name="repro-serving-loop", daemon=True)
        self._thread.start()
        if not self._thread_ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        if self._thread_error is not None:
            self._thread = None
            raise self._thread_error
        return self

    def stop_in_thread(self, drain=True, timeout=30.0):
        """Shut down a :meth:`start_in_thread` server and join its thread."""
        if self._thread is None:
            return

        async def shutdown():
            await (self.drain() if drain else self.stop())
            # Cancel every other task (the create_future() keep-alive) so
            # asyncio.run() unwinds.
            for task in asyncio.all_tasks():
                if task is not asyncio.current_task():
                    task.cancel()

        future = asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self):
        return self.start_in_thread()

    def __exit__(self, *exc):
        self.stop_in_thread()
        return False

    # -- readiness -------------------------------------------------------------

    def readiness(self):
        """Readiness verdict for :class:`~repro.obs.ObsServer` ``/healthz``.

        Not-ready while draining/stopped, and for ``overload_grace_s``
        after the most recent ``overloaded`` shed — a load balancer
        should stop routing to a server that is actively refusing work,
        even though the process itself is healthy (liveness stays ok).
        """
        overloaded = (
            self._last_overload_shed is not None
            and time.perf_counter() - self._last_overload_shed
            < self.config.overload_grace_s)
        ready = not self._draining and not overloaded \
            and self._asyncio_server is not None
        return {
            "ready": ready,
            "draining": self._draining,
            "overloaded": overloaded,
            "queue_depth": self.admission.depth,
            "inflight": self._inflight,
        }

    # -- connection handling ---------------------------------------------------

    async def _handle_client(self, reader, writer):
        self._connections.add(writer)
        peer = writer.get_extra_info("peername")
        client_key = f"{peer[0]}:{peer[1]}" if peer else repr(writer)
        send_lock = asyncio.Lock()

        async def send(obj):
            async with send_lock:
                if writer.is_closing():
                    return
                writer.write(encode_frame(obj))
                try:
                    await writer.drain()
                except ConnectionError:
                    writer.close()

        try:
            while True:
                try:
                    obj = await read_frame(
                        reader, max_bytes=self.config.max_frame_bytes)
                except ProtocolError as exc:
                    # Unframeable garbage: answer once, then hang up —
                    # the stream offset is no longer trustworthy.
                    self.metrics.counter("serving.protocol_errors").inc()
                    await send(error_response(None, "bad_request", str(exc)))
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if obj is None:
                    break
                await self._handle_request(obj, client_key, send)
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _handle_request(self, obj, client_key, send):
        self.metrics.counter("serving.requests").inc()
        try:
            req_id, op, vector, k, deadline_s = parse_request(
                obj, self.dim, max_k=self.config.max_k)
        except ProtocolError as exc:
            # A well-framed but invalid request (bad k, NaN vector, …)
            # is answered without dropping the connection.
            self.metrics.counter("serving.protocol_errors").inc()
            await send(error_response(obj.get("id") if isinstance(obj, dict)
                                      else None, "bad_request", str(exc)))
            return
        if op == "ping":
            await send({"id": req_id, "status": "ok", "op": "ping",
                        "ready": bool(self.readiness()["ready"])})
            return

        cached = self._cache_lookup(vector, k)
        if cached is not None:
            # A hit bypasses admission entirely: no queue slot, no
            # coalescing wait, no engine work — the stored result is the
            # full-fidelity answer for this exact (vector, k, probe).
            self.metrics.counter("serving.completed").inc()
            await send(ok_response(req_id, cached))
            return

        now = time.perf_counter()
        self.tuner.on_arrival(now)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        pending = PendingQuery(
            vector=vector, k=k, deadline_s=deadline_s,
            budget=self._budget_for(deadline_s, now),
            client=client_key, req_id=req_id, admitted_at=now, respond=send)
        reason = self.admission.offer(pending, window_s=self.tuner.window())
        if reason:
            self._count_shed(reason)
            await send(shed_response(req_id, reason))
            return
        self.metrics.counter("serving.admitted").inc()
        self.metrics.gauge("serving.queue.depth").set(self.admission.depth)
        self._arrival.set()

    def _budget_for(self, deadline_s, admitted_at):
        """The per-query budget: server caps + request deadline, anchored.

        Anchoring at admission time is what makes queue wait count
        against the deadline — the engine's deadline check measures from
        ``started_at``, not from when the batch happened to dispatch.
        """
        base = self.config.budget
        if deadline_s is None:
            return base
        from ..reliability.budget import QueryBudget

        if base is not None:
            budget = QueryBudget(
                deadline_s=float(deadline_s),
                max_io_pages=base.max_io_pages,
                max_candidates=base.max_candidates)
        else:
            budget = QueryBudget(deadline_s=float(deadline_s))
        return budget.with_start(admitted_at)

    def _count_shed(self, reason):
        self.metrics.counter("serving.shed").inc()
        self.metrics.counter(f"serving.shed.{reason}").inc()
        now = time.perf_counter()
        if reason == "overloaded":
            self._last_overload_shed = now
        flight.note("serving_shed", reason=reason,
                    queue_depth=self.admission.depth)
        # Shed-storm postmortem: sustained shedding is exactly the
        # moment a postmortem of the recent past is worth the disk.
        window = self.config.shed_storm_window_s
        times = self._shed_times
        times.append(now)
        while times and now - times[0] > window:
            times.popleft()
        if (len(times) >= self.config.shed_storm_threshold
                and not self._storm_dumped):
            self._storm_dumped = True
            flight.dump("shed_storm", extra={
                "sheds_in_window": len(times),
                "window_s": window,
                "queue_depth": self.admission.depth,
            })

    # -- hot-query result cache ------------------------------------------------

    def _cache_fresh(self):
        """Empty the cache if the served index object was swapped.

        Identity, not content: a hot-swapped (even retrained-identical)
        index invalidates everything, because the cache cannot know
        which entries the new index would answer differently.
        """
        if id(self.index) != self._cache_index_id:
            self._cache.clear()
            self._cache_index_id = id(self.index)
            self.metrics.counter("serving.cache.invalidated").inc()

    def _cache_lookup(self, vector, k):
        """The cached result for this exact request, or ``None``."""
        if self.config.cache_size <= 0:
            return None
        self._cache_fresh()
        key = (vector.tobytes(), int(k), str(self.config.probe))
        result = self._cache.get(key)
        if result is None:
            self.metrics.counter("serving.cache.miss").inc()
            return None
        self._cache.move_to_end(key)
        self.metrics.counter("serving.cache.hit").inc()
        return result

    def _cache_store(self, vector, k, result):
        """Remember a full-fidelity result, evicting least-recently-used.

        Degraded results (budget cut the search short) are never cached:
        they depend on the request's deadline, not just on the query.
        """
        if self.config.cache_size <= 0 or result.stats.degraded:
            return
        self._cache_fresh()
        key = (vector.tobytes(), int(k), str(self.config.probe))
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.cache_size:
            self._cache.popitem(last=False)

    # -- dispatch loop ---------------------------------------------------------

    async def _batch_loop(self):
        """Coalesce admitted queries into micro-batches and run them."""
        while True:
            if self.admission.depth == 0:
                if self._stopping:
                    return
                self._arrival.clear()
                # Re-check: an admission may have raced the clear.
                if self.admission.depth == 0 and not self._stopping:
                    await self._arrival.wait()
                continue
            await self._coalesce_wait()
            batch, expired = self.admission.take_batch(self.config.max_batch)
            self.metrics.gauge("serving.queue.depth").set(self.admission.depth)
            for p in expired:
                self._count_shed("deadline")
                self._respond(p, shed_response(p.req_id, "deadline"))
            if batch:
                await self._run_batch(batch)

    async def _coalesce_wait(self):
        """Hold dispatch for the tuner's window (or until the batch fills)."""
        window = self.tuner.window()
        self.metrics.histogram("serving.coalesce.window_s").observe(window)
        if window <= 0.0 or self._stopping:
            return
        deadline = time.perf_counter() + window
        while (self.admission.depth < self.config.max_batch
               and not self._stopping):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            self._arrival.clear()
            if self.admission.depth >= self.config.max_batch:
                return
            try:
                await asyncio.wait_for(self._arrival.wait(), remaining)
            except asyncio.TimeoutError:
                return

    async def _run_batch(self, batch):
        """Dispatch one coalesced batch to the engine and fan responses out."""
        n = len(batch)
        k = batch[0].k
        self._inflight = n
        self.metrics.gauge("serving.inflight").set(n)
        self.metrics.counter("serving.batches").inc()
        self.metrics.histogram("serving.coalesce.size").observe(n)
        queries = np.stack([p.vector for p in batch])
        budgets = [p.budget for p in batch]
        budget_arg = None if all(b is None for b in budgets) else budgets
        started = time.perf_counter()
        try:
            with trace.span("serving.batch", size=n, k=k):
                # copy_context() carries the active span into the
                # executor thread so engine-side spans nest under it.
                ctx = contextvars.copy_context()
                kwargs = {"k": k, "budget": budget_arg}
                if self.config.probe != "classic":
                    # Only name the kwarg when it differs from the
                    # default, so a classic server keeps working with
                    # probe-unaware index objects.
                    kwargs["probe"] = self.config.probe
                call = partial(self.index.query_batch, queries, **kwargs)
                results = await self._loop.run_in_executor(
                    self._executor, partial(ctx.run, call))
        except WorkerFailureError as exc:
            # FailoverPolicy(on_failure="raise"): this batch failed, but
            # the server (and other batches) must keep going.
            self.metrics.counter("serving.errors").inc()
            flight.dump("serving_worker_failure",
                        extra={"batch_size": n, "error": str(exc)})
            for p in batch:
                self._respond(p, error_response(
                    p.req_id, "worker_failure", str(exc)))
            return
        except Exception as exc:
            self.metrics.counter("serving.errors").inc()
            flight.note("serving_batch_error", error=type(exc).__name__,
                        message=str(exc), batch_size=n)
            for p in batch:
                self._respond(p, error_response(
                    p.req_id, "internal", type(exc).__name__))
            return
        finally:
            self._inflight = 0
            self.metrics.gauge("serving.inflight").set(0)
        elapsed = time.perf_counter() - started
        self.admission.record_service(n, elapsed)
        self.metrics.histogram("serving.batch.seconds").observe(elapsed)
        done = time.perf_counter()
        for p, result in zip(batch, results):
            wait = started - p.admitted_at
            self.metrics.histogram("serving.queue.wait_s").observe(wait)
            self.metrics.histogram("serving.latency.seconds").observe(
                done - p.admitted_at)
            self.metrics.counter("serving.completed").inc()
            if result.stats.degraded:
                self.metrics.counter("serving.degraded").inc()
            self._cache_store(p.vector, p.k, result)
            self._respond(p, ok_response(p.req_id, result, queue_wait_s=wait))

    def _respond(self, pending, obj):
        """Schedule one response send without blocking the dispatch loop."""
        task = asyncio.ensure_future(pending.respond(obj))
        self._response_tasks.add(task)
        task.add_done_callback(self._response_tasks.discard)
