"""Sharded multi-core C2LSH: parallel build, exact fan-out queries.

:class:`ShardedC2LSH` row-partitions the dataset into shards, builds each
shard's counting structure in a persistent worker process (the dataset is
shared zero-copy via :mod:`multiprocessing.shared_memory`), fans every
query out to all shards in lockstep radius rounds, and merges the
per-shard verified candidates into an exact global top-k — bit-identical,
ties included, to an unsharded :class:`repro.core.c2lsh.C2LSH` over the
same data and seed. ``n_workers=0`` selects an in-process serial executor
with identical semantics.

The engine is self-healing: a :class:`WorkerSupervisor` puts deadlines on
every protocol call, detects dead or stuck workers, and applies a
:class:`FailoverPolicy` — respawn-and-replay for bit-identical answers
(``"rebuild"``), partial results from surviving shards (``"degrade"``),
or fail-fast (``"raise"``) — with a circuit breaker quarantining workers
that keep dying. See ``docs/RELIABILITY.md``.

:func:`default_parallelism` is the repository's one source of truth for
"how wide should a parallel fan-out be"; both this engine and
``C2LSH.query_batch(n_jobs=None)`` resolve their defaults through it.
"""

from .engine import ShardedC2LSH
from .persist import load_sharded, save_sharded
from .plan import assign_shards, default_parallelism, shard_offsets
from .supervisor import CircuitBreaker, FailoverPolicy, WorkerSupervisor
from .worker import ShardSpec

__all__ = [
    "ShardedC2LSH",
    "save_sharded",
    "load_sharded",
    "default_parallelism",
    "shard_offsets",
    "assign_shards",
    "ShardSpec",
    "FailoverPolicy",
    "CircuitBreaker",
    "WorkerSupervisor",
]
