"""ShardedC2LSH: a multi-core C2LSH engine with exact fan-out queries.

The dataset is row-partitioned into ``S`` shards. Each shard holds a full
C2LSH counting structure (its own sorted hash tables and data file) built
over its rows — but all shards share *one* set of hash functions, one
distance scale and one global ``(m, l)`` design, all derived from the full
dataset exactly as :meth:`repro.core.c2lsh.C2LSH.fit` derives them. An
object's collision count with a query depends only on its own hashes, so
per-shard counts equal the unsharded counts restricted to the shard's
rows.

Queries run in **lockstep across shards**: every radius round fans out to
all workers, and the coordinator applies the T1/T2/exhaustion/budget
termination rules to the *union* of per-shard observations — the same
decisions, in the same order, that the lockstep batch engine
(:mod:`repro.core.batchengine`) applies to its global state. Merged
candidates keep ascending-global-id order within each round (shards own
contiguous row ranges, merged in shard order), so the final top-``k``
selection sees the identical candidate array the unsharded index builds —
results are **bit-identical**, ties included.

Parallelism is process-based: ``n_workers`` persistent single-process
pools, each owning a round-robin group of shards. The dataset is placed in
:mod:`multiprocessing.shared_memory` once at ``fit`` time and every worker
builds its shards over zero-copy slice views — no per-task pickling of the
data matrix. ``n_workers=0`` runs the identical protocol in-process (no
pools, no shared memory) so tests and small indexes pay no process
overhead.

Worker death is survivable. Every protocol call runs under a deadline
derived from the active query budget plus the failover policy's round
timeout, and a :class:`repro.sharding.supervisor.WorkerSupervisor`
dispatches failures (broken pool, missed deadline, injected exit) to a
configurable policy: ``"rebuild"`` respawns the worker from its retained
config — the shared-memory segment is still alive at the coordinator —
replays the current lockstep session onto it and retries the failed call,
keeping answers bit-identical; ``"degrade"`` answers from surviving
shards, marking ``QueryStats.degraded`` and naming the lost shards in
``QueryStats.failed_shards``; ``"raise"`` fails fast with
:class:`repro.reliability.WorkerFailureError`. A circuit breaker
quarantines a worker that keeps dying (served around, degraded, while a
background respawn heals it), and every failover leaves a flight-recorder
postmortem plus ``shard.failover.*`` metrics.
"""

from __future__ import annotations

import itertools
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..core.adaptive import (
    as_probe_config,
    check_adaptive_supported,
    merge_start_levels,
)
from ..core.batchengine import MAX_ROUNDS, WithinRadiusTally
from ..core.params import design_params
from ..core.results import QueryResult, QueryStats
from ..core.scaling import resolve_base_radius
from ..hashing.pstable import PStableFamily
from ..obs import flight, trace
from ..obs.registry import MetricsRegistry
from ..obs.remote import graft
from ..reliability.budget import as_budget_list, tripped_cap
from ..reliability.errors import InjectedWorkerExit, WorkerFailureError
from ..reliability.faults import FaultPlan
from ..storage.pages import DEFAULT_PAGE_SIZE
from ..validation import as_data_matrix, as_query_matrix, as_query_vector
from .plan import assign_shards, default_parallelism, shard_offsets
from .supervisor import FailoverPolicy, WorkerSupervisor, protocol_timeout
from .worker import HostConfig, ShardHost, ShardSpec, _call_host, _init_host

__all__ = ["ShardedC2LSH"]

#: Query blocks are capped like the unsharded batch path, bounding every
#: worker's ``(block, n_shard)`` working matrices.
_BATCH_BLOCK = 1024


class _SerialRunner:
    """In-process execution of the worker protocol (``n_workers=0``).

    ``order`` is a test hook: a permutation of host indices controlling
    *execution* order. Results are always returned keyed by host index,
    which is how the engine's merges stay independent of scheduling.

    Failure semantics mirror the process backend closely enough for the
    supervision layer to be exercised without processes: an
    :class:`InjectedWorkerExit` escaping a host "kills" it (the slot is
    cleared and reported as ``"worker_exit"``) and the slot answers
    ``"dead"`` until :meth:`respawn` installs a fresh host. Timeouts are
    accepted but inert — an in-process call cannot be preempted.
    """

    def __init__(self, configs, order=None):
        self._hosts = [ShardHost(config) for config in configs]
        self.order = order

    def _sequence(self, workers):
        if self.order is None:
            return list(workers)
        selected = set(workers)
        return [i for i in self.order if i in selected]

    def run(self, method, args_for, workers, timeout=None):
        """Execute ``method`` on each worker; ``(results, failures)``.

        Application exceptions re-raise only after every requested host
        has run, matching the process backend's full-gather contract.
        """
        results, failures = {}, {}
        error = None
        for i in self._sequence(workers):
            host = self._hosts[i]
            if host is None:
                failures[i] = "dead"
                continue
            try:
                results[i] = getattr(host, method)(*args_for(i))
            except InjectedWorkerExit:
                # In-process stand-in for process death: everything the
                # host held (shards, live sessions) is gone.
                self._hosts[i] = None
                failures[i] = "worker_exit"
            except Exception as exc:
                error = error if error is not None else exc
        if error is not None:
            raise error
        return results, failures

    def respawn(self, i, config):
        self._hosts[i] = ShardHost(config)

    def broadcast(self, method, *args):
        workers = list(range(len(self._hosts)))
        results, failures = self.run(method, lambda _w: args, workers)
        if failures:
            raise WorkerFailureError(method, failures, results)
        return [results[i] for i in workers]

    def scatter(self, method, per_worker_args):
        workers = list(range(len(self._hosts)))
        results, failures = self.run(
            method, lambda w: per_worker_args[w], workers)
        if failures:
            raise WorkerFailureError(method, failures, results)
        return [results[i] for i in workers]

    def close(self):
        for host in self._hosts:
            if host is not None:
                host.close()
        self._hosts = []


class _ProcessRunner:
    """One persistent single-process pool per worker (shard affinity).

    A plain multi-worker ``ProcessPoolExecutor`` routes tasks to arbitrary
    idle workers; per-shard state (counting tables, live sessions) needs
    every task for a shard to land on the process that owns it. One
    executor per worker gives that affinity with stock library machinery.

    Gathers are all-or-nothing: :meth:`run` waits — under one shared
    deadline — on *every* submitted future before returning or raising,
    so a crashed worker can neither wedge the coordinator forever nor
    strand sibling results half-collected while the shared-memory segment
    is still mapped. A worker that breaks its pool or misses the deadline
    is killed and its slot cleared; later calls report it ``"dead"``
    until :meth:`respawn` builds a replacement pool from the retained
    host config.
    """

    def __init__(self, configs):
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        self._context = mp.get_context("fork" if "fork" in methods
                                       else None)
        self._pools = [self._spawn(config) for config in configs]

    def _spawn(self, config):
        return ProcessPoolExecutor(max_workers=1, mp_context=self._context,
                                   initializer=_init_host,
                                   initargs=(config,))

    def run(self, method, args_for, workers, timeout=None):
        """Execute ``method`` on each worker; ``(results, failures)``.

        ``timeout`` (seconds, ``None`` = unbounded) is one deadline shared
        by the whole gather — the engine's per-call protocol deadline.
        Worker deaths land in ``failures`` as ``"broken_pool"``,
        ``"timeout"`` or ``"dead"``; an application exception is
        re-raised, but only once every future has been gathered.
        """
        results, failures = {}, {}
        futures = {}
        for i in workers:
            pool = self._pools[i]
            if pool is None:
                failures[i] = "dead"
                continue
            try:
                futures[i] = pool.submit(_call_host, method, *args_for(i))
            except Exception:
                self._kill(i)
                failures[i] = "broken_pool"
        deadline = None if timeout is None \
            else time.monotonic() + float(timeout)
        error = None
        for i, future in futures.items():
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            try:
                results[i] = future.result(timeout=remaining)
            except _FuturesTimeout:
                self._kill(i)
                failures[i] = "timeout"
            except BrokenProcessPool:
                self._kill(i)
                failures[i] = "broken_pool"
            except Exception as exc:
                error = error if error is not None else exc
        if error is not None:
            raise error
        return results, failures

    def _kill(self, i):
        """Tear worker ``i``'s pool down without waiting on it."""
        pool, self._pools[i] = self._pools[i], None
        if pool is None:
            return
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.kill()
        except Exception:
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def respawn(self, i, config):
        self._kill(i)
        self._pools[i] = self._spawn(config)

    def broadcast(self, method, *args):
        workers = list(range(len(self._pools)))
        results, failures = self.run(method, lambda _w: args, workers)
        if failures:
            raise WorkerFailureError(method, failures, results)
        return [results[i] for i in workers]

    def scatter(self, method, per_worker_args):
        workers = list(range(len(self._pools)))
        results, failures = self.run(
            method, lambda w: per_worker_args[w], workers)
        if failures:
            raise WorkerFailureError(method, failures, results)
        return [results[i] for i in workers]

    def close(self):
        for pool in self._pools:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []


def _release_resources(runner, shm):
    """Idempotent teardown shared by close(), GC and interpreter exit."""
    if runner is not None:
        try:
            runner.close()
        except Exception:
            pass
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


class ShardedC2LSH:
    """Row-sharded C2LSH with parallel build and exact fan-out queries.

    Parameters
    ----------
    n_shards:
        Number of row partitions (``S``).
    n_workers:
        Worker processes. ``None`` resolves to
        ``min(available cpus, n_shards)`` via
        :func:`repro.sharding.default_parallelism`; ``0`` runs everything
        in-process (serial fallback — identical results, no process or
        shared-memory overhead).
    c, w, beta, delta, alpha, m, seed, rng, base_radius, data_layout:
        As on :class:`repro.core.c2lsh.C2LSH`; the derived design
        (``scale``, ``params``, hash functions) is computed from the
        *full* dataset with the exact RNG consumption order of
        ``C2LSH.fit``, so ``ShardedC2LSH(seed=s)`` answers queries
        bit-identically to ``C2LSH(seed=s)`` over the same data.
    use_t1:
        Disable the T1 stopping rule (A4 ablation parity).
    page_accounting:
        Give every shard its own :class:`repro.storage.PageManager`;
        per-query ``QueryStats.io_reads`` then reports the *sum* of pages
        charged across shards.
    page_size, page_latency_s:
        Forwarded to the per-shard page managers; ``page_latency_s``
        simulates a paged storage device (see
        :class:`repro.storage.PageManager`).
    fault_plan, fault_seed:
        Optional :class:`repro.reliability.FaultPlan` (or its dict form)
        installed on every shard's page manager, seeded per shard as
        ``fault_seed + shard_id``. ``"exit"`` rules at the
        ``worker_exit.*`` sites additionally arm worker-death chaos in
        each host (see :mod:`repro.sharding.worker`).
    on_worker_failure:
        What a dead or stuck worker does to in-flight queries.
        ``"rebuild"`` (default) respawns it from its retained config and
        replays the current lockstep session so answers stay
        bit-identical to the unsharded index; ``"degrade"`` answers from
        surviving shards, setting ``QueryStats.degraded`` and
        ``QueryStats.failed_shards``; ``"raise"`` fails fast with
        :class:`repro.reliability.WorkerFailureError`. Shorthand for
        ``failover=FailoverPolicy(on_failure=...)``.
    failover:
        A full :class:`repro.sharding.FailoverPolicy` — protocol
        deadlines, circuit-breaker tuning, background-respawn switch.
        Overrides ``on_worker_failure`` when given.
    metrics:
        A :class:`repro.obs.MetricsRegistry` for the engine's ``shard.*``
        counters and histograms; private registry when omitted.

    The engine owns OS resources (worker processes, a shared-memory
    segment); call :meth:`close` — or use it as a context manager — when
    done. Queries after :meth:`close` raise ``RuntimeError``.
    """

    def __init__(self, n_shards=4, n_workers=None, *, c=2, w=None,
                 beta=None, delta=0.01, alpha=None, m=None, seed=None,
                 rng=None, base_radius="auto", data_layout="scattered",
                 use_t1=True, page_accounting=False,
                 page_size=DEFAULT_PAGE_SIZE, page_latency_s=0.0,
                 fault_plan=None, fault_seed=0,
                 on_worker_failure="rebuild", failover=None, metrics=None):
        if int(n_shards) < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        if n_workers is None:
            n_workers = default_parallelism(limit=self.n_shards)
        if int(n_workers) < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.n_workers = min(int(n_workers), self.n_shards)
        self._c = int(c)
        self._w = w
        self._beta = beta
        self._delta = delta
        self._alpha = alpha
        self._m_override = m
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._base_radius = base_radius
        self._data_layout = data_layout
        self._use_t1 = bool(use_t1)
        self._page_accounting = bool(page_accounting)
        self._page_size = int(page_size)
        self._page_latency_s = float(page_latency_s)
        if fault_plan is not None and isinstance(fault_plan, FaultPlan):
            fault_plan = fault_plan.to_dict()
        self._fault_plan = fault_plan
        self._fault_seed = int(fault_seed)
        if failover is None:
            failover = FailoverPolicy(on_failure=on_worker_failure)
        self._failover = failover
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self.params = None
        self.build_info = None
        self._data = None
        self._funcs = None
        self._family = None
        self._scale = 1.0
        self._offsets = None
        self._shard_worker = None
        self._runner = None
        self._supervisor = None
        self._shm = None
        self._finalizer = None
        self._closed = False
        self._session_ids = itertools.count()

    # -- lifecycle -----------------------------------------------------------

    def fit(self, data):
        """Partition ``data``, build all shards in parallel; returns self.

        The design phase (distance scale, ``(m, l)``, hash-function
        sample) runs at the coordinator over the full dataset — the exact
        computation :meth:`repro.core.c2lsh.C2LSH.fit` performs — and the
        per-shard table builds fan out to the workers.
        """
        if self._runner is not None:
            raise RuntimeError(
                "engine is already fitted; create a new ShardedC2LSH"
            )
        data = as_data_matrix(data)
        n, dim = data.shape
        family = PStableFamily(dim, w=self._w, c=self._c)
        scale = resolve_base_radius(self._base_radius, data, self._rng,
                                    metric=family.metric)
        params = design_params(n, family, c=self._c, beta=self._beta,
                               delta=self._delta, alpha=self._alpha,
                               m=self._m_override)
        funcs = family.sample(params.m, self._rng)
        self._assemble(data, family, funcs, params, scale)
        return self

    def _assemble(self, data, family, funcs, params, scale, offsets=None):
        """Wire a prepared design into live shards (fit and load paths)."""
        n = data.shape[0]
        if self.n_shards > n:
            raise ValueError(
                f"cannot split {n} rows into {self.n_shards} shards"
            )
        self._family = family
        self._funcs = funcs
        self.params = params
        self._scale = float(scale)
        if offsets is None:
            offsets = shard_offsets(n, self.n_shards)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        specs = [ShardSpec(s, int(self._offsets[s]),
                           int(self._offsets[s + 1]))
                 for s in range(self.n_shards)]
        groups = assign_shards(self.n_shards, max(self.n_workers, 1))
        self._shard_worker = {}
        for w, group in enumerate(groups):
            for s in group:
                self._shard_worker[s] = w

        serial = self.n_workers == 0
        with trace.span("shard.build", shards=self.n_shards,
                        workers=self.n_workers, n=int(n)):
            common = dict(
                shape=tuple(data.shape), dtype=str(data.dtype),
                projections=funcs._projections, offsets=funcs._offsets,
                funcs_w=funcs.w, family_w=family.w, scale=self._scale,
                l=params.l, data_layout=self._data_layout,
                page_accounting=self._page_accounting,
                page_size=self._page_size,
                page_latency_s=self._page_latency_s,
                fault_plan=self._fault_plan, fault_seed=self._fault_seed,
                c=params.c,
            )
            if serial:
                self._data = data
                configs = [HostConfig(
                    shards=tuple(specs[s] for s in group), data=data,
                    worker_index=w, **common,
                ) for w, group in enumerate(groups)]
                self._runner = _SerialRunner(configs)
            else:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(create=True,
                                                       size=data.nbytes)
                shared = np.ndarray(data.shape, dtype=data.dtype,
                                    buffer=self._shm.buf)
                shared[:] = data
                self._data = shared
                configs = [HostConfig(
                    shards=tuple(specs[s] for s in group),
                    shm_name=self._shm.name, worker_index=w, **common,
                ) for w, group in enumerate(groups)]
                self._runner = _ProcessRunner(configs)
            self._supervisor = WorkerSupervisor(
                self._runner, configs, groups, self._failover,
                self.metrics)
            self._finalizer = weakref.finalize(
                self, _release_resources, self._runner, self._shm)
            started = time.perf_counter()
            try:
                infos = self._build_with_failover()
            except BaseException:
                # A failed build must not leave a half-fitted engine:
                # release the pools and the shared-memory segment and
                # return to the pre-fit state so fit() can be retried.
                self._reset_unfitted()
                raise
            build_seconds = time.perf_counter() - started

        self.build_info = {
            "seconds": build_seconds,
            "shards": {sid: info for worker in infos.values()
                       for sid, info in worker.items()},
        }
        self.metrics.gauge("shard.shards").set(self.n_shards)
        self.metrics.gauge("shard.workers").set(self.n_workers)
        self.metrics.histogram("shard.build.seconds").observe(build_seconds)

    def _build_with_failover(self):
        """Fan the build out; respawn-and-retry dead workers if allowed.

        Returns ``{worker: {shard_id: build info}}``. A worker that dies
        mid-build is respawned and rebuilt under the ``"rebuild"`` policy
        (its chaos generation advances, so a kill-once fault rule does
        not re-kill the replacement); any other policy — or a failed
        respawn, or a tripped breaker — raises
        :class:`WorkerFailureError` (and the caller resets the engine).
        """
        sup = self._supervisor
        results, failures = sup.call(
            "build", timeout=sup.policy.build_timeout_s)
        if failures and sup.policy.on_failure != "rebuild":
            raise WorkerFailureError("build", failures, results)
        for worker, cause in sorted(failures.items()):
            info = None if sup.breaker.tripped(worker) \
                else sup.respawn(worker)
            if info is None:
                raise WorkerFailureError("build", {worker: cause},
                                         results)
            results[worker] = info
        return results

    def _reset_unfitted(self):
        """Tear everything down and return to the pre-fit state."""
        if self._supervisor is not None:
            self._supervisor.close()
        if self._finalizer is not None:
            self._finalizer()
        self._finalizer = None
        self._runner = None
        self._supervisor = None
        self._shm = None
        self._data = None
        self._funcs = None
        self._family = None
        self._offsets = None
        self._shard_worker = None
        self.params = None
        self.build_info = None

    def close(self):
        """Shut worker pools down and release the shared-memory segment."""
        if self._supervisor is not None:
            self._supervisor.close()
        if self._finalizer is not None:
            self._finalizer()
        self._runner = None
        self._supervisor = None
        self._shm = None
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- introspection -------------------------------------------------------

    @property
    def is_fitted(self):
        """True once fit() has run and the engine is not closed."""
        return self.params is not None and not self._closed

    def _require_fitted(self):
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._runner is None:
            raise RuntimeError("index is not fitted; call fit(data) first")

    @property
    def n(self):
        """Number of indexed objects across all shards."""
        self._require_fitted()
        return self._data.shape[0]

    @property
    def dim(self):
        """Dimensionality of the indexed vectors."""
        self._require_fitted()
        return self._data.shape[1]

    @property
    def m(self):
        """Number of hash functions (shared by every shard)."""
        self._require_fitted()
        return self.params.m

    @property
    def l(self):
        """Collision-count threshold (shared by every shard)."""
        self._require_fitted()
        return self.params.l

    @property
    def base_radius(self):
        """Distance unit: the radius the integer grid multiplies."""
        self._require_fitted()
        return self._scale

    @property
    def shard_boundaries(self):
        """Row offsets: shard ``s`` owns ``[off[s], off[s+1])``."""
        self._require_fitted()
        return tuple(int(x) for x in self._offsets)

    def io_totals(self):
        """Cumulative (reads, writes) per shard since build.

        Live workers only: shards owned by a currently dead worker are
        absent from the answer until its respawn completes.
        """
        self._require_fitted()
        results, failures = self._supervisor.call(
            "io_totals", timeout=self._failover.round_timeout_s)
        for worker, cause in sorted(failures.items()):
            self._supervisor.mark_dead(worker, cause=cause)
            self._supervisor.schedule_respawn(worker)
        merged = {}
        for worker in results.values():
            merged.update(worker)
        return dict(sorted(merged.items()))

    @property
    def failover(self):
        """The active :class:`repro.sharding.FailoverPolicy`."""
        return self._failover

    def healthcheck(self, repair=False):
        """Probe every worker; returns ``{worker: {"ok": bool, ...}}``.

        A live worker answers its heartbeat with pid, hosted shards,
        open sessions and kernel tier; dead or unresponsive workers
        report ``ok=False`` with a cause (a worker that misses the
        heartbeat deadline is killed by the probe, exactly as a missed
        protocol deadline would). With ``repair=True`` every unhealthy
        worker is taken out of the fan-out and a background respawn is
        scheduled; it rejoins at the next query-block boundary.
        """
        self._require_fitted()
        report = self._supervisor.probe()
        if repair:
            for worker, info in sorted(report.items()):
                if not info["ok"]:
                    self._supervisor.mark_dead(
                        worker, cause=info.get("cause", ""))
                    self._supervisor.schedule_respawn(worker)
        return report

    def worker_pids(self):
        """Pid per live worker (the coordinator's own pid when serial)."""
        self._require_fitted()
        return {worker: info["pid"]
                for worker, info in self._supervisor.probe().items()
                if info.get("ok")}

    def telemetry_snapshot(self):
        """The engine's ``shard.*`` metrics as one serializable dict."""
        return self.metrics.snapshot()

    def _fold_metrics(self, deltas):
        """Merge worker counter deltas into the coordinator registry.

        Workers key counters by shard id (``shard.worker.<sid>.*``), so
        adding the deltas is commutative across hosts and rounds and the
        coordinator's ``/metrics`` surface shows true per-shard totals.
        """
        for name, delta in deltas.items():
            self.metrics.counter(name).inc(delta)

    def explain(self, query, k=1, probe=None):
        """Trace one query end to end; returns a
        :class:`repro.core.explain.ShardedQueryExplanation` with the
        coordinator's round timeline and the grafted per-shard worker
        spans (shard id, worker pid, kernel tier, pages, candidates —
        plus probes issued/skipped under ``probe="adaptive"``)."""
        from ..core.explain import explain_sharded

        return explain_sharded(self, query, k=k, probe=probe)

    # -- querying ------------------------------------------------------------

    def query(self, query, k=1, budget=None, probe=None):
        """Answer one c-k-ANN query; returns a :class:`QueryResult`.

        Identical ids/distances to the unsharded index — see the module
        docstring for the equivalence argument. ``budget`` caps the
        query's aggregate work and ``probe`` selects classic or adaptive
        probing (see :meth:`query_batch`).
        """
        self._require_fitted()
        query = as_query_vector(query, self.dim)
        return self.query_batch(query[None, :], k=k, budget=budget,
                                probe=probe)[0]

    def query_batch(self, queries, k=1, budget=None, probe=None):
        """Answer many queries with per-round shard fan-out.

        Each worker advances the PR-1 lockstep batch engine over its own
        shards; the coordinator merges every round's observations and
        applies the global termination rules. ``budget`` (a
        :class:`repro.reliability.QueryBudget`) applies to each query's
        *shard-aggregated* totals — candidate counts and page I/O are
        summed across shards and compared against the caps at round
        boundaries, in the same cap order as the unsharded paths, so the
        deterministic caps degrade identically to an unsharded index.
        A *sequence* of per-query budgets (``None`` entries unbudgeted)
        budgets each query separately, honoring each budget's
        ``started_at`` anchor — the serving front-end's coalesced-batch
        contract.

        ``probe`` selects the probing mode: ``None``/``"classic"`` is
        the bit-exact lockstep protocol; ``"adaptive"`` (or an
        :class:`repro.core.adaptive.AdaptiveConfig`) skips
        estimator-certified start rounds globally and lets each shard
        probe its tables margin-ordered with local early exit, while
        every T1/T2/exhaustion/budget decision stays at the coordinator
        (see :meth:`_drive_block_adaptive`). Sharded adaptive mode runs
        certified exits only — the provisional projected-crosser exit
        needs cross-shard counts mid-round and is disabled here.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        config = as_probe_config(probe)
        if config is not None:
            check_adaptive_supported(self._funcs)
        queries = as_query_matrix(queries, self.dim)
        budgets = as_budget_list(budget, queries.shape[0])
        started = time.perf_counter()
        with trace.span("shard.query_batch",
                        queries=int(queries.shape[0]), k=int(k),
                        shards=self.n_shards) as qspan:
            with trace.span("hash", queries=int(queries.shape[0])):
                hashed = queries if self._scale == 1.0 \
                    else queries / self._scale
                if config is None:
                    all_uids = None
                    all_qids = self._funcs.hash(hashed)
                else:
                    all_uids = self._funcs.project(hashed) / self._funcs.w
                    all_qids = np.floor(all_uids).astype(np.int64)
            results = []
            for start in range(0, queries.shape[0], _BATCH_BLOCK):
                stop = start + _BATCH_BLOCK
                block_budgets = (budgets[start:stop]
                                 if budgets is not None else None)
                if config is None:
                    results.extend(self._drive_block(
                        queries[start:stop], all_qids[start:stop], k,
                        block_budgets, started))
                else:
                    results.extend(self._drive_block_adaptive(
                        queries[start:stop], all_qids[start:stop],
                        all_uids[start:stop], k, block_budgets, started,
                        config))
            qspan.set(seconds=time.perf_counter() - started)
        self.metrics.counter("shard.queries").inc(len(results))
        self.metrics.histogram("shard.query_batch.seconds").observe(
            time.perf_counter() - started)
        return results

    def _drive_block(self, queries, qids, k, budgets, started):
        """Drive one query block through the lockstep shard rounds.

        The control flow mirrors :func:`repro.core.batchengine.batch_query`
        decision for decision; only the counting/verification is remote.
        ``budgets`` is already normalized: ``None`` or a per-query list.
        """
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        params = self.params
        n = self._data.shape[0]
        target = min(n, k + params.false_positive_budget)  # T2 threshold
        c = params.c
        scale = self._scale
        accounting = self._page_accounting

        sup = self._supervisor
        # Background-respawned workers rejoin here: a block boundary is
        # the only point where a fresh worker needs no session replay.
        sup.adopt_ready()

        sid = next(self._session_ids)
        # Everything a failover needs to replay this block's session onto
        # a respawned worker: the batch_start arguments plus every
        # completed round's (radius, active) pair.
        replay = {"sid": sid, "queries": queries, "qids": qids,
                  "rounds": [], "budget": budgets, "started": started}
        self._call(replay, "batch_start", (sid, queries, qids))

        cand_ids = [[] for _ in range(n_queries)]
        cand_dists = [[] for _ in range(n_queries)]
        n_cand = np.zeros(n_queries, dtype=np.int64)
        rounds = np.zeros(n_queries, dtype=np.int64)
        final_radius = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        io_reads = np.zeros(n_queries, dtype=np.int64)
        elapsed = np.zeros(n_queries, dtype=np.float64)
        reason = [""] * n_queries
        budget_cap = [""] * n_queries
        fo_shards = [()] * n_queries
        tallies = ([WithinRadiusTally() for _ in range(n_queries)]
                   if self._use_t1 else None)

        try:
            active = np.arange(n_queries)
            radius = 1
            round_no = 0
            while active.size:
                round_no += 1
                with trace.span("shard.round", radius=int(radius),
                                active=int(active.size)) as rspan:
                    t_round = time.perf_counter()
                    collect = trace.active()
                    by_worker = self._call(
                        replay, "batch_round",
                        (sid, int(radius), active, collect))
                    replay["rounds"].append((int(radius), active.copy()))
                    worker_payloads = [by_worker[w]
                                       for w in sorted(by_worker)]
                    self.metrics.counter("shard.fanout.tasks").inc(
                        len(worker_payloads))
                    payloads = sorted(
                        (p for worker in worker_payloads for p in worker),
                        key=lambda p: p.shard_id)

                    rounds[active] += 1
                    final_radius[active] = radius
                    exhausted = np.ones(active.size, dtype=bool)
                    for p in payloads:
                        if p.spans:
                            # Worker-side subtree, stamped shard/pid/
                            # kernels; grafts under this shard.round span.
                            graft(p.spans)
                        if p.metrics:
                            self._fold_metrics(p.metrics)
                        scanned[active] += p.scanned
                        io_reads[active] += p.io_pages
                        exhausted &= p.exhausted
                        self.metrics.histogram(
                            "shard.worker.seconds").observe(p.seconds)
                        if p.qpos.size == 0:
                            continue
                        bounds = np.searchsorted(
                            p.qpos, np.arange(active.size + 1))
                        for i in np.flatnonzero(np.diff(bounds)):
                            q = int(active[i])
                            lo, hi = int(bounds[i]), int(bounds[i + 1])
                            ids = p.ids[lo:hi]
                            dists = p.dists[lo:hi]
                            cand_ids[q].append(ids)
                            cand_dists[q].append(dists)
                            n_cand[q] += ids.size
                            if tallies is not None:
                                tallies[q].add(dists)

                    # Global termination, in the batch engine's priority
                    # order: T2, then T1, then exhaustion, then budget.
                    t2 = n_cand[active] >= target
                    t1 = np.zeros(active.size, dtype=bool)
                    if tallies is not None:
                        threshold = c * radius * scale
                        for i in np.flatnonzero(~t2
                                                & (n_cand[active] >= k)):
                            q = int(active[i])
                            t1[i] = tallies[q].count_within(threshold) >= k
                    if round_no >= MAX_ROUNDS:
                        exhausted[:] = True
                    done = t2 | t1 | exhausted
                    # With every worker lost (degrade mode under total
                    # failure) nothing can ever expand again; the honest
                    # label for the forced termination is "failover".
                    all_lost = not worker_payloads
                    for i in np.flatnonzero(done):
                        reason[active[i]] = ("T2" if t2[i]
                                             else "T1" if t1[i]
                                             else "failover" if all_lost
                                             else "exhausted")
                    if budgets is not None:
                        now = time.perf_counter()
                        for i in np.flatnonzero(~done):
                            q = int(active[i])
                            b = budgets[q]
                            if b is None:
                                continue
                            cap = tripped_cap(b, int(n_cand[q]),
                                              int(io_reads[q]),
                                              accounting, started, now)
                            if not cap:
                                continue
                            done[i] = True
                            reason[q] = "budget"
                            budget_cap[q] = cap
                            flight.note(
                                "budget_exhausted", engine="sharded",
                                query=q, cap=cap,
                                radius=int(radius),
                                candidates=int(n_cand[q]),
                                io_pages=int(io_reads[q]),
                            )
                    finished = active[done]
                    if finished.size:
                        self._fallback(replay, finished, k, n_cand,
                                       cand_ids, cand_dists, reason,
                                       io_reads)
                        failed = sup.failed_shards()
                        if failed:
                            snap = tuple(failed)
                            for q in finished:
                                fo_shards[int(q)] = snap
                        elapsed[finished] = time.perf_counter() - started
                    self.metrics.counter("shard.rounds").inc()
                    self.metrics.histogram("shard.round.seconds").observe(
                        time.perf_counter() - t_round)
                    rspan.set(finished=int(finished.size))
                    active = active[~done]
                    radius *= c
        finally:
            # Best-effort under non-raise policies: a worker that dies
            # here takes only its own session state with it, and that
            # state was being dropped anyway.
            self._call(replay, "batch_end", (sid,), best_effort=True)

        tripped = [q for q in range(n_queries) if budget_cap[q]]
        if tripped:
            flight.dump("budget_exhausted", extra={
                "engine": "sharded",
                "queries": tripped,
                "caps": sorted({budget_cap[q] for q in tripped}),
                "shards": self.n_shards,
                "workers": self.n_workers,
            })

        lost = sum(1 for q in range(n_queries) if fo_shards[q])
        if lost:
            self.metrics.counter(
                "shard.failover.degraded_queries").inc(lost)

        results = []
        for q in range(n_queries):
            stats = QueryStats(
                rounds=int(rounds[q]), final_radius=int(final_radius[q]),
                candidates=int(n_cand[q]), scanned_entries=int(scanned[q]),
                terminated_by=reason[q], elapsed_s=float(elapsed[q]),
                degraded=bool(budget_cap[q]) or bool(fo_shards[q]),
                budget_exhausted=budget_cap[q],
                failed_shards=fo_shards[q],
            )
            if accounting:
                stats.io_reads = int(io_reads[q])
                self.metrics.counter("shard.io.pages").inc(int(io_reads[q]))
            ids = (np.concatenate(cand_ids[q]) if cand_ids[q]
                   else np.empty(0, dtype=np.int64))
            dists = (np.concatenate(cand_dists[q]) if cand_dists[q]
                     else np.empty(0))
            results.append(QueryResult.from_candidates(ids, dists, k,
                                                       stats))
        return results

    def _drive_block_adaptive(self, queries, qids, uids, k, budgets,
                              started, config):
        """Drive one query block through adaptive per-query shard rounds.

        The adaptive analogue of :meth:`_drive_block`, mirroring
        :func:`repro.core.adaptive.adaptive_batch_query`'s control flow
        with remote counting:

        * one ``batch_estimate`` fan-out gathers per-worker collide
          levels and occupancy sums, merged exactly
          (:func:`merge_start_levels`) into global per-query start
          levels — skipped rounds charge nothing on any shard;
        * queries are grouped by their current grid level so every
          fan-out still advances one shared radius per call;
        * each round ships the per-query T2 deficits to the workers,
          which probe margin-ordered table chunks and early-exit queries
          whose local candidates alone cover the global deficit — the
          per-round probe counts come home on the payloads;
        * all T1/T2/exhaustion/budget decisions are applied here, to the
          union of shard observations, exactly as in the classic drive.

        The provisional projected-crosser exit is intentionally absent:
        it ranks objects by *global* partial counts mid-round, which do
        not exist on any single shard. Sharded adaptive therefore runs
        certified exits only (see docs/PERFORMANCE.md).
        """
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        params = self.params
        n = self._data.shape[0]
        target = min(n, k + params.false_positive_budget)  # T2 threshold
        c = params.c
        m = params.m
        scale = self._scale
        accounting = self._page_accounting

        sup = self._supervisor
        sup.adopt_ready()

        sid = next(self._session_ids)
        probe_payload = {
            "uids": uids,
            "chunks": int(config.chunks),
            "ordered": bool(config.ordered_probes),
            "early_exit": bool(config.early_exit),
        }
        replay = {"sid": sid, "queries": queries, "qids": qids,
                  "rounds": [], "budget": budgets, "started": started,
                  "probe": probe_payload}
        self._call(replay, "batch_start",
                   (sid, queries, qids, probe_payload))

        cand_ids = [[] for _ in range(n_queries)]
        cand_dists = [[] for _ in range(n_queries)]
        n_cand = np.zeros(n_queries, dtype=np.int64)
        rounds = np.zeros(n_queries, dtype=np.int64)
        final_radius = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        io_reads = np.zeros(n_queries, dtype=np.int64)
        probes_issued = np.zeros(n_queries, dtype=np.int64)
        probes_skipped = np.zeros(n_queries, dtype=np.int64)
        elapsed = np.zeros(n_queries, dtype=np.float64)
        reason = [""] * n_queries
        budget_cap = [""] * n_queries
        fo_shards = [()] * n_queries
        tallies = ([WithinRadiusTally() for _ in range(n_queries)]
                   if self._use_t1 else None)

        levels = np.zeros(n_queries, dtype=np.int64)
        if config.start_estimate:
            # With T1 disabled only T2 can fire, which needs `target`
            # candidates rather than k — a laxer, still-exact bound.
            k_eff = k if self._use_t1 else target
            with trace.span("shard.estimate_start",
                            queries=int(n_queries)):
                estimates = self._call(replay, "batch_estimate", (sid,))
                payloads = [estimates[w] for w in sorted(estimates)]
                if payloads:
                    levels = merge_start_levels(payloads, params.l,
                                                params.l * k_eff)
            # A probe is one bucket scan in one shard's table: a skipped
            # level avoids m probes on every shard.
            probes_skipped += m * self.n_shards * levels

        try:
            active = np.arange(n_queries)
            while active.size:
                level = int(levels[active].min())
                group = active[levels[active] == level]
                radius = int(c) ** level
                need = {"t2": (target - n_cand[group]).astype(np.int64)}
                with trace.span("shard.round", radius=int(radius),
                                active=int(group.size)) as rspan:
                    t_round = time.perf_counter()
                    collect = trace.active()
                    by_worker = self._call(
                        replay, "batch_round",
                        (sid, int(radius), group, collect, need))
                    replay["rounds"].append((int(radius), group.copy(),
                                             need))
                    worker_payloads = [by_worker[w]
                                       for w in sorted(by_worker)]
                    self.metrics.counter("shard.fanout.tasks").inc(
                        len(worker_payloads))
                    payloads = sorted(
                        (p for worker in worker_payloads for p in worker),
                        key=lambda p: p.shard_id)

                    rounds[group] += 1
                    final_radius[group] = radius
                    exhausted = np.ones(group.size, dtype=bool)
                    for p in payloads:
                        if p.spans:
                            graft(p.spans)
                        if p.metrics:
                            self._fold_metrics(p.metrics)
                        scanned[group] += p.scanned
                        io_reads[group] += p.io_pages
                        if p.probes_issued is not None:
                            probes_issued[group] += p.probes_issued
                            probes_skipped[group] += p.probes_skipped
                        exhausted &= p.exhausted
                        self.metrics.histogram(
                            "shard.worker.seconds").observe(p.seconds)
                        if p.qpos.size == 0:
                            continue
                        bounds = np.searchsorted(
                            p.qpos, np.arange(group.size + 1))
                        for i in np.flatnonzero(np.diff(bounds)):
                            q = int(group[i])
                            lo, hi = int(bounds[i]), int(bounds[i + 1])
                            ids = p.ids[lo:hi]
                            dists = p.dists[lo:hi]
                            cand_ids[q].append(ids)
                            cand_dists[q].append(dists)
                            n_cand[q] += ids.size
                            if tallies is not None:
                                tallies[q].add(dists)

                    # Global termination, classic priority order.
                    t2 = n_cand[group] >= target
                    t1 = np.zeros(group.size, dtype=bool)
                    if tallies is not None:
                        threshold = c * radius * scale
                        for i in np.flatnonzero(~t2
                                                & (n_cand[group] >= k)):
                            q = int(group[i])
                            t1[i] = (tallies[q].count_within(threshold)
                                     >= k)
                    if level + 1 >= MAX_ROUNDS:
                        exhausted[:] = True
                    done = t2 | t1 | exhausted
                    all_lost = not worker_payloads
                    for i in np.flatnonzero(done):
                        reason[group[i]] = ("T2" if t2[i]
                                            else "T1" if t1[i]
                                            else "failover" if all_lost
                                            else "exhausted")
                    if budgets is not None:
                        now = time.perf_counter()
                        for i in np.flatnonzero(~done):
                            q = int(group[i])
                            b = budgets[q]
                            if b is None:
                                continue
                            cap = tripped_cap(b, int(n_cand[q]),
                                              int(io_reads[q]),
                                              accounting, started, now)
                            if not cap:
                                continue
                            done[i] = True
                            reason[q] = "budget"
                            budget_cap[q] = cap
                            flight.note(
                                "budget_exhausted",
                                engine="sharded-adaptive",
                                query=q, cap=cap,
                                radius=int(radius),
                                candidates=int(n_cand[q]),
                                io_pages=int(io_reads[q]),
                            )
                    finished = group[done]
                    if finished.size:
                        self._fallback(replay, finished, k, n_cand,
                                       cand_ids, cand_dists, reason,
                                       io_reads)
                        failed = sup.failed_shards()
                        if failed:
                            snap = tuple(failed)
                            for q in finished:
                                fo_shards[int(q)] = snap
                        elapsed[finished] = time.perf_counter() - started
                    self.metrics.counter("shard.rounds").inc()
                    self.metrics.histogram("shard.round.seconds").observe(
                        time.perf_counter() - t_round)
                    rspan.set(
                        finished=int(finished.size),
                        probes_issued=int(probes_issued[group].sum()),
                        probes_skipped=int(probes_skipped[group].sum()),
                    )
                    levels[group[~done]] += 1
                    if finished.size:
                        keep = np.ones(n_queries, dtype=bool)
                        keep[finished] = False
                        active = active[keep[active]]
        finally:
            self._call(replay, "batch_end", (sid,), best_effort=True)

        tripped = [q for q in range(n_queries) if budget_cap[q]]
        if tripped:
            flight.dump("budget_exhausted", extra={
                "engine": "sharded-adaptive",
                "queries": tripped,
                "caps": sorted({budget_cap[q] for q in tripped}),
                "shards": self.n_shards,
                "workers": self.n_workers,
            })

        lost = sum(1 for q in range(n_queries) if fo_shards[q])
        if lost:
            self.metrics.counter(
                "shard.failover.degraded_queries").inc(lost)
        self.metrics.counter("shard.probes.issued").inc(
            int(probes_issued.sum()))
        self.metrics.counter("shard.probes.skipped").inc(
            int(probes_skipped.sum()))

        results = []
        for q in range(n_queries):
            stats = QueryStats(
                rounds=int(rounds[q]), final_radius=int(final_radius[q]),
                candidates=int(n_cand[q]), scanned_entries=int(scanned[q]),
                terminated_by=reason[q], elapsed_s=float(elapsed[q]),
                degraded=bool(budget_cap[q]) or bool(fo_shards[q]),
                budget_exhausted=budget_cap[q],
                failed_shards=fo_shards[q],
                probes_issued=int(probes_issued[q]),
                probes_skipped=int(probes_skipped[q]),
            )
            if accounting:
                stats.io_reads = int(io_reads[q])
                self.metrics.counter("shard.io.pages").inc(int(io_reads[q]))
            ids = (np.concatenate(cand_ids[q]) if cand_ids[q]
                   else np.empty(0, dtype=np.int64))
            dists = (np.concatenate(cand_dists[q]) if cand_dists[q]
                     else np.empty(0))
            results.append(QueryResult.from_candidates(ids, dists, k,
                                                       stats))
        return results

    # -- failover ------------------------------------------------------------

    def _call(self, replay, method, args=(), per_worker=None,
              best_effort=False):
        """One supervised protocol call, with policy-dispatched failover.

        Returns results keyed by worker index; a worker missing from the
        dict was lost and the policy chose to continue without it.
        ``"raise"`` re-raises as :class:`WorkerFailureError`;
        ``"rebuild"`` respawns each dead worker, replays this block's
        session onto it and retries the call — falling back to
        quarantine once its circuit breaker trips; ``"degrade"`` drops
        the worker and schedules a background respawn. ``best_effort``
        (session teardown) never replays: a dead worker's sessions died
        with it, so it is respawned fresh (rebuild) or dropped
        (degrade). Every failover decision leaves a flight-recorder
        postmortem.
        """
        sup = self._supervisor
        policy = sup.policy
        timeout = protocol_timeout(policy, replay["budget"],
                                   replay["started"])
        results, failures = sup.call(method, args, per_worker=per_worker,
                                     timeout=timeout)
        while failures:
            self._postmortem(method, failures)
            if policy.on_failure == "raise" and not best_effort:
                raise WorkerFailureError(method, failures, results)
            recovered = []
            for worker, cause in sorted(failures.items()):
                if best_effort:
                    # Never raise out of teardown — it would mask the
                    # failure that ended the block in the first place.
                    if (policy.on_failure == "rebuild"
                            and not sup.breaker.tripped(worker)
                            and sup.respawn(worker)):
                        continue  # fresh worker; no session to replay
                    sup.mark_dead(worker, cause=cause)
                    if policy.on_failure != "raise":
                        sup.schedule_respawn(worker)
                    continue
                rebuild = (policy.on_failure == "rebuild"
                           and not sup.breaker.tripped(worker))
                if rebuild and self._rebuild_worker(worker, replay,
                                                    timeout):
                    recovered.append(worker)
                elif rebuild:
                    sup.quarantine(worker, cause=cause)
                else:
                    sup.mark_dead(worker, cause=cause)
                    sup.schedule_respawn(worker)
            if not recovered:
                break
            more, failures = sup.call(method, args, per_worker=per_worker,
                                      workers=recovered, timeout=timeout)
            results.update(more)
        return results

    def _rebuild_worker(self, worker, replay, timeout):
        """Respawn ``worker`` and replay the current block's session.

        Per-round expansion is a deterministic function of (shard rows,
        hash functions, radius sequence, active arrays), so replaying
        ``batch_start`` plus every completed round reconstructs exactly
        the session state the worker lost — the retried call then
        returns bit-identical payloads to the ones the dead worker would
        have sent. Replay payloads are discarded wholesale: their
        candidates, spans and counter deltas were already merged during
        the rounds' first life, and folding them again would
        double-count.
        """
        sup = self._supervisor
        sid = replay["sid"]
        with trace.span("shard.rebuild", worker=worker,
                        rounds=len(replay["rounds"])) as span:
            if not sup.respawn(worker):
                span.set(ok=False)
                return False
            start_args = (sid, replay["queries"], replay["qids"])
            if replay.get("probe") is not None:
                start_args += (replay["probe"],)
            _, failures = sup.call(
                "batch_start", start_args,
                workers=[worker], timeout=timeout)
            for entry in replay["rounds"]:
                if failures:
                    break
                # Adaptive rounds carry their need dict; replaying it
                # reproduces the worker's chunked schedule exactly.
                radius, active = entry[0], entry[1]
                round_args = (sid, radius, active, False) \
                    if len(entry) == 2 \
                    else (sid, radius, active, False, entry[2])
                _, failures = sup.call(
                    "batch_round", round_args,
                    workers=[worker], timeout=timeout)
            span.set(ok=not failures)
            if failures:
                return False
        self.metrics.counter("shard.failover.rebuilds").inc()
        self.metrics.counter("shard.failover.replayed_rounds").inc(
            len(replay["rounds"]))
        flight.note("worker_rebuilt", worker=worker, sid=sid,
                    rounds=len(replay["rounds"]))
        return True

    def _postmortem(self, method, failures):
        """Flight-recorder postmortem on every failover decision."""
        flight.dump("worker_failure", extra={
            "engine": "sharded",
            "method": method,
            "failures": {int(w): c for w, c in sorted(failures.items())},
            "policy": self._failover.on_failure,
            "dead_workers": self._supervisor.dead_workers(),
            "failed_shards": self._supervisor.failed_shards(),
            "shards": self.n_shards,
            "workers": self.n_workers,
        })

    def _fallback(self, replay, finished, k, n_cand, cand_ids, cand_dists,
                  reason, io_reads):
        """Graceful fallback for terminated queries still short of ``k``.

        Reproduces the unsharded order exactly: each shard nominates its
        best-counted unverified objects, the coordinator merges them under
        (collision count desc, global id asc) — the total order behind
        ``argsort(-counts, kind="stable")`` — takes the global prefix, and
        only the selected objects are verified.

        Under degraded operation the merge simply sees fewer shards: dead
        workers nominate nothing, and a nominated id whose verification
        answer never arrived (its worker died between nomination and
        verify) is dropped rather than returned with an unverified
        distance.
        """
        sid = replay["sid"]
        fpb = self.params.false_positive_budget
        requests = {int(q): int(k - n_cand[q]) + fpb
                    for q in finished if n_cand[q] < k}
        if not requests:
            return
        self.metrics.counter("shard.fallback.queries").inc(len(requests))
        with trace.span("shard.fallback", queries=len(requests)):
            nominations = self._call(replay, "fallback_candidates",
                                     (sid, requests))
            by_shard = {}
            for worker in nominations.values():
                by_shard.update(worker)

            selected = {}
            for q, need in requests.items():
                gids, counts = [], []
                for shard_id in sorted(by_shard):
                    entry = by_shard[shard_id].get(q)
                    if entry is not None:
                        gids.append(entry[0])
                        counts.append(entry[1])
                if not gids:
                    continue
                gids = np.concatenate(gids)
                counts = np.concatenate(counts)
                order = np.lexsort((gids, -counts))[:need]
                selected[q] = gids[order]

            if not selected:
                return
            verify_req = {}
            placements = {}
            for q, gids in selected.items():
                shard_of = np.searchsorted(self._offsets, gids,
                                           side="right") - 1
                placements[q] = shard_of
                for shard_id in np.unique(shard_of):
                    worker = self._shard_worker[int(shard_id)]
                    verify_req.setdefault(worker, {}).setdefault(
                        int(shard_id), {})[q] = gids[shard_of == shard_id]
            collect = trace.active()
            answers = self._call(
                replay, "fallback_verify",
                per_worker={w: (sid, req, collect)
                            for w, req in verify_req.items()})
            merged = {}
            for worker in answers.values():
                if worker.get("spans"):
                    graft(worker["spans"])
                if worker.get("metrics"):
                    self._fold_metrics(worker["metrics"])
                merged.update(worker["answers"])

            for q, gids in selected.items():
                shard_of = placements[q]
                dists = np.empty(gids.size, dtype=np.float64)
                have = np.ones(gids.size, dtype=bool)
                for shard_id in np.unique(shard_of):
                    mask = shard_of == shard_id
                    entry = merged.get(int(shard_id), {}).get(q)
                    if entry is None:
                        have &= ~mask
                        continue
                    shard_dists, io = entry
                    dists[mask] = shard_dists
                    io_reads[q] += io
                if not have.all():
                    gids, dists = gids[have], dists[have]
                if gids.size == 0:
                    continue
                cand_ids[q].append(gids)
                cand_dists[q].append(dists)
                n_cand[q] += gids.size
                if reason[q] != "budget":
                    reason[q] = "fallback"

    # -- persistence ---------------------------------------------------------

    def save(self, path):
        """Persist the index + shard layout as a verified v2 container."""
        from .persist import save_sharded

        return save_sharded(self, path)

    @classmethod
    def load(cls, path, n_workers=None, **overrides):
        """Load an engine saved by :meth:`save`; see
        :func:`repro.sharding.load_sharded`."""
        from .persist import load_sharded

        return load_sharded(path, n_workers=n_workers, **overrides)

    def __repr__(self):
        if not self.is_fitted:
            state = "closed" if self._closed else "unfitted"
            return (f"ShardedC2LSH(shards={self.n_shards}, "
                    f"workers={self.n_workers}, {state})")
        return (f"ShardedC2LSH(n={self.n}, dim={self.dim}, "
                f"shards={self.n_shards}, workers={self.n_workers}, "
                f"m={self.params.m}, l={self.params.l})")
