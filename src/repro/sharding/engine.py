"""ShardedC2LSH: a multi-core C2LSH engine with exact fan-out queries.

The dataset is row-partitioned into ``S`` shards. Each shard holds a full
C2LSH counting structure (its own sorted hash tables and data file) built
over its rows — but all shards share *one* set of hash functions, one
distance scale and one global ``(m, l)`` design, all derived from the full
dataset exactly as :meth:`repro.core.c2lsh.C2LSH.fit` derives them. An
object's collision count with a query depends only on its own hashes, so
per-shard counts equal the unsharded counts restricted to the shard's
rows.

Queries run in **lockstep across shards**: every radius round fans out to
all workers, and the coordinator applies the T1/T2/exhaustion/budget
termination rules to the *union* of per-shard observations — the same
decisions, in the same order, that the lockstep batch engine
(:mod:`repro.core.batchengine`) applies to its global state. Merged
candidates keep ascending-global-id order within each round (shards own
contiguous row ranges, merged in shard order), so the final top-``k``
selection sees the identical candidate array the unsharded index builds —
results are **bit-identical**, ties included.

Parallelism is process-based: ``n_workers`` persistent single-process
pools, each owning a round-robin group of shards. The dataset is placed in
:mod:`multiprocessing.shared_memory` once at ``fit`` time and every worker
builds its shards over zero-copy slice views — no per-task pickling of the
data matrix. ``n_workers=0`` runs the identical protocol in-process (no
pools, no shared memory) so tests and small indexes pay no process
overhead.
"""

from __future__ import annotations

import itertools
import time
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.batchengine import MAX_ROUNDS, WithinRadiusTally
from ..core.params import design_params
from ..core.results import QueryResult, QueryStats
from ..core.scaling import resolve_base_radius
from ..hashing.pstable import PStableFamily
from ..obs import flight, trace
from ..obs.registry import MetricsRegistry
from ..obs.remote import graft
from ..reliability.faults import FaultPlan
from ..storage.pages import DEFAULT_PAGE_SIZE
from ..validation import as_data_matrix, as_query_matrix, as_query_vector
from .plan import assign_shards, default_parallelism, shard_offsets
from .worker import HostConfig, ShardHost, ShardSpec, _call_host, _init_host

__all__ = ["ShardedC2LSH"]

#: Query blocks are capped like the unsharded batch path, bounding every
#: worker's ``(block, n_shard)`` working matrices.
_BATCH_BLOCK = 1024


class _SerialRunner:
    """In-process execution of the worker protocol (``n_workers=0``).

    ``order`` is a test hook: a permutation of host indices controlling
    *execution* order. Results are always returned keyed by host index,
    which is how the engine's merges stay independent of scheduling.
    """

    def __init__(self, configs, order=None):
        self._hosts = [ShardHost(config) for config in configs]
        self.order = order

    def _sequence(self):
        if self.order is None:
            return range(len(self._hosts))
        return self.order

    def broadcast(self, method, *args):
        results = [None] * len(self._hosts)
        for i in self._sequence():
            results[i] = getattr(self._hosts[i], method)(*args)
        return results

    def scatter(self, method, per_worker_args):
        results = [None] * len(self._hosts)
        for i in self._sequence():
            results[i] = getattr(self._hosts[i], method)(
                *per_worker_args[i])
        return results

    def close(self):
        for host in self._hosts:
            host.close()
        self._hosts = []


class _ProcessRunner:
    """One persistent single-process pool per worker (shard affinity).

    A plain multi-worker ``ProcessPoolExecutor`` routes tasks to arbitrary
    idle workers; per-shard state (counting tables, live sessions) needs
    every task for a shard to land on the process that owns it. One
    executor per worker gives that affinity with stock library machinery.
    """

    def __init__(self, configs):
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else None)
        self._pools = [
            ProcessPoolExecutor(max_workers=1, mp_context=context,
                                initializer=_init_host, initargs=(config,))
            for config in configs
        ]

    def broadcast(self, method, *args):
        futures = [pool.submit(_call_host, method, *args)
                   for pool in self._pools]
        return [f.result() for f in futures]

    def scatter(self, method, per_worker_args):
        futures = [pool.submit(_call_host, method, *args)
                   for pool, args in zip(self._pools, per_worker_args)]
        return [f.result() for f in futures]

    def close(self):
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []


def _release_resources(runner, shm):
    """Idempotent teardown shared by close(), GC and interpreter exit."""
    if runner is not None:
        try:
            runner.close()
        except Exception:
            pass
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


class ShardedC2LSH:
    """Row-sharded C2LSH with parallel build and exact fan-out queries.

    Parameters
    ----------
    n_shards:
        Number of row partitions (``S``).
    n_workers:
        Worker processes. ``None`` resolves to
        ``min(available cpus, n_shards)`` via
        :func:`repro.sharding.default_parallelism`; ``0`` runs everything
        in-process (serial fallback — identical results, no process or
        shared-memory overhead).
    c, w, beta, delta, alpha, m, seed, rng, base_radius, data_layout:
        As on :class:`repro.core.c2lsh.C2LSH`; the derived design
        (``scale``, ``params``, hash functions) is computed from the
        *full* dataset with the exact RNG consumption order of
        ``C2LSH.fit``, so ``ShardedC2LSH(seed=s)`` answers queries
        bit-identically to ``C2LSH(seed=s)`` over the same data.
    use_t1:
        Disable the T1 stopping rule (A4 ablation parity).
    page_accounting:
        Give every shard its own :class:`repro.storage.PageManager`;
        per-query ``QueryStats.io_reads`` then reports the *sum* of pages
        charged across shards.
    page_size, page_latency_s:
        Forwarded to the per-shard page managers; ``page_latency_s``
        simulates a paged storage device (see
        :class:`repro.storage.PageManager`).
    fault_plan, fault_seed:
        Optional :class:`repro.reliability.FaultPlan` (or its dict form)
        installed on every shard's page manager, seeded per shard as
        ``fault_seed + shard_id``.
    metrics:
        A :class:`repro.obs.MetricsRegistry` for the engine's ``shard.*``
        counters and histograms; private registry when omitted.

    The engine owns OS resources (worker processes, a shared-memory
    segment); call :meth:`close` — or use it as a context manager — when
    done. Queries after :meth:`close` raise ``RuntimeError``.
    """

    def __init__(self, n_shards=4, n_workers=None, *, c=2, w=None,
                 beta=None, delta=0.01, alpha=None, m=None, seed=None,
                 rng=None, base_radius="auto", data_layout="scattered",
                 use_t1=True, page_accounting=False,
                 page_size=DEFAULT_PAGE_SIZE, page_latency_s=0.0,
                 fault_plan=None, fault_seed=0, metrics=None):
        if int(n_shards) < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        if n_workers is None:
            n_workers = default_parallelism(limit=self.n_shards)
        if int(n_workers) < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.n_workers = min(int(n_workers), self.n_shards)
        self._c = int(c)
        self._w = w
        self._beta = beta
        self._delta = delta
        self._alpha = alpha
        self._m_override = m
        if rng is None:
            rng = np.random.default_rng(seed)
        self._rng = rng
        self._base_radius = base_radius
        self._data_layout = data_layout
        self._use_t1 = bool(use_t1)
        self._page_accounting = bool(page_accounting)
        self._page_size = int(page_size)
        self._page_latency_s = float(page_latency_s)
        if fault_plan is not None and isinstance(fault_plan, FaultPlan):
            fault_plan = fault_plan.to_dict()
        self._fault_plan = fault_plan
        self._fault_seed = int(fault_seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        self.params = None
        self.build_info = None
        self._data = None
        self._funcs = None
        self._family = None
        self._scale = 1.0
        self._offsets = None
        self._shard_worker = None
        self._runner = None
        self._shm = None
        self._finalizer = None
        self._closed = False
        self._session_ids = itertools.count()

    # -- lifecycle -----------------------------------------------------------

    def fit(self, data):
        """Partition ``data``, build all shards in parallel; returns self.

        The design phase (distance scale, ``(m, l)``, hash-function
        sample) runs at the coordinator over the full dataset — the exact
        computation :meth:`repro.core.c2lsh.C2LSH.fit` performs — and the
        per-shard table builds fan out to the workers.
        """
        if self._runner is not None:
            raise RuntimeError(
                "engine is already fitted; create a new ShardedC2LSH"
            )
        data = as_data_matrix(data)
        n, dim = data.shape
        family = PStableFamily(dim, w=self._w, c=self._c)
        scale = resolve_base_radius(self._base_radius, data, self._rng,
                                    metric=family.metric)
        params = design_params(n, family, c=self._c, beta=self._beta,
                               delta=self._delta, alpha=self._alpha,
                               m=self._m_override)
        funcs = family.sample(params.m, self._rng)
        self._assemble(data, family, funcs, params, scale)
        return self

    def _assemble(self, data, family, funcs, params, scale, offsets=None):
        """Wire a prepared design into live shards (fit and load paths)."""
        n = data.shape[0]
        if self.n_shards > n:
            raise ValueError(
                f"cannot split {n} rows into {self.n_shards} shards"
            )
        self._family = family
        self._funcs = funcs
        self.params = params
        self._scale = float(scale)
        if offsets is None:
            offsets = shard_offsets(n, self.n_shards)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        specs = [ShardSpec(s, int(self._offsets[s]),
                           int(self._offsets[s + 1]))
                 for s in range(self.n_shards)]
        groups = assign_shards(self.n_shards, max(self.n_workers, 1))
        self._shard_worker = {}
        for w, group in enumerate(groups):
            for s in group:
                self._shard_worker[s] = w

        serial = self.n_workers == 0
        with trace.span("shard.build", shards=self.n_shards,
                        workers=self.n_workers, n=int(n)):
            common = dict(
                shape=tuple(data.shape), dtype=str(data.dtype),
                projections=funcs._projections, offsets=funcs._offsets,
                funcs_w=funcs.w, family_w=family.w, scale=self._scale,
                l=params.l, data_layout=self._data_layout,
                page_accounting=self._page_accounting,
                page_size=self._page_size,
                page_latency_s=self._page_latency_s,
                fault_plan=self._fault_plan, fault_seed=self._fault_seed,
            )
            if serial:
                self._data = data
                configs = [HostConfig(
                    shards=tuple(specs[s] for s in group), data=data,
                    **common,
                ) for group in groups]
                self._runner = _SerialRunner(configs)
            else:
                from multiprocessing import shared_memory

                self._shm = shared_memory.SharedMemory(create=True,
                                                       size=data.nbytes)
                shared = np.ndarray(data.shape, dtype=data.dtype,
                                    buffer=self._shm.buf)
                shared[:] = data
                self._data = shared
                configs = [HostConfig(
                    shards=tuple(specs[s] for s in group),
                    shm_name=self._shm.name, **common,
                ) for group in groups]
                self._runner = _ProcessRunner(configs)
            self._finalizer = weakref.finalize(
                self, _release_resources, self._runner, self._shm)
            started = time.perf_counter()
            infos = self._runner.broadcast("build")
            build_seconds = time.perf_counter() - started

        self.build_info = {
            "seconds": build_seconds,
            "shards": {sid: info for worker in infos
                       for sid, info in worker.items()},
        }
        self.metrics.gauge("shard.shards").set(self.n_shards)
        self.metrics.gauge("shard.workers").set(self.n_workers)
        self.metrics.histogram("shard.build.seconds").observe(build_seconds)

    def close(self):
        """Shut worker pools down and release the shared-memory segment."""
        if self._finalizer is not None:
            self._finalizer()
        self._runner = None
        self._shm = None
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- introspection -------------------------------------------------------

    @property
    def is_fitted(self):
        """True once fit() has run and the engine is not closed."""
        return self.params is not None and not self._closed

    def _require_fitted(self):
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._runner is None:
            raise RuntimeError("index is not fitted; call fit(data) first")

    @property
    def n(self):
        """Number of indexed objects across all shards."""
        self._require_fitted()
        return self._data.shape[0]

    @property
    def dim(self):
        """Dimensionality of the indexed vectors."""
        self._require_fitted()
        return self._data.shape[1]

    @property
    def m(self):
        """Number of hash functions (shared by every shard)."""
        self._require_fitted()
        return self.params.m

    @property
    def l(self):
        """Collision-count threshold (shared by every shard)."""
        self._require_fitted()
        return self.params.l

    @property
    def base_radius(self):
        """Distance unit: the radius the integer grid multiplies."""
        self._require_fitted()
        return self._scale

    @property
    def shard_boundaries(self):
        """Row offsets: shard ``s`` owns ``[off[s], off[s+1])``."""
        self._require_fitted()
        return tuple(int(x) for x in self._offsets)

    def io_totals(self):
        """Cumulative (reads, writes) per shard since build."""
        self._require_fitted()
        merged = {}
        for worker in self._runner.broadcast("io_totals"):
            merged.update(worker)
        return dict(sorted(merged.items()))

    def telemetry_snapshot(self):
        """The engine's ``shard.*`` metrics as one serializable dict."""
        return self.metrics.snapshot()

    def _fold_metrics(self, deltas):
        """Merge worker counter deltas into the coordinator registry.

        Workers key counters by shard id (``shard.worker.<sid>.*``), so
        adding the deltas is commutative across hosts and rounds and the
        coordinator's ``/metrics`` surface shows true per-shard totals.
        """
        for name, delta in deltas.items():
            self.metrics.counter(name).inc(delta)

    def explain(self, query, k=1):
        """Trace one query end to end; returns a
        :class:`repro.core.explain.ShardedQueryExplanation` with the
        coordinator's round timeline and the grafted per-shard worker
        spans (shard id, worker pid, kernel tier, pages, candidates)."""
        from ..core.explain import explain_sharded

        return explain_sharded(self, query, k=k)

    # -- querying ------------------------------------------------------------

    def query(self, query, k=1, budget=None):
        """Answer one c-k-ANN query; returns a :class:`QueryResult`.

        Identical ids/distances to the unsharded index — see the module
        docstring for the equivalence argument. ``budget`` caps the
        query's aggregate work (see :meth:`query_batch`).
        """
        self._require_fitted()
        query = as_query_vector(query, self.dim)
        return self.query_batch(query[None, :], k=k, budget=budget)[0]

    def query_batch(self, queries, k=1, budget=None):
        """Answer many queries with per-round shard fan-out.

        Each worker advances the PR-1 lockstep batch engine over its own
        shards; the coordinator merges every round's observations and
        applies the global termination rules. ``budget`` (a
        :class:`repro.reliability.QueryBudget`) applies to each query's
        *shard-aggregated* totals — candidate counts and page I/O are
        summed across shards and compared against the caps at round
        boundaries, in the same cap order as the unsharded paths, so the
        deterministic caps degrade identically to an unsharded index.
        """
        self._require_fitted()
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        queries = as_query_matrix(queries, self.dim)
        started = time.perf_counter()
        with trace.span("shard.query_batch",
                        queries=int(queries.shape[0]), k=int(k),
                        shards=self.n_shards) as qspan:
            with trace.span("hash", queries=int(queries.shape[0])):
                hashed = queries if self._scale == 1.0 \
                    else queries / self._scale
                all_qids = self._funcs.hash(hashed)
            results = []
            for start in range(0, queries.shape[0], _BATCH_BLOCK):
                stop = start + _BATCH_BLOCK
                results.extend(self._drive_block(
                    queries[start:stop], all_qids[start:stop], k,
                    budget, started))
            qspan.set(seconds=time.perf_counter() - started)
        self.metrics.counter("shard.queries").inc(len(results))
        self.metrics.histogram("shard.query_batch.seconds").observe(
            time.perf_counter() - started)
        return results

    def _drive_block(self, queries, qids, k, budget, started):
        """Drive one query block through the lockstep shard rounds.

        The control flow mirrors :func:`repro.core.batchengine.batch_query`
        decision for decision; only the counting/verification is remote.
        """
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        params = self.params
        n = self._data.shape[0]
        target = min(n, k + params.false_positive_budget)  # T2 threshold
        c = params.c
        scale = self._scale
        accounting = self._page_accounting

        sid = next(self._session_ids)
        self._runner.broadcast("batch_start", sid, queries, qids)

        cand_ids = [[] for _ in range(n_queries)]
        cand_dists = [[] for _ in range(n_queries)]
        n_cand = np.zeros(n_queries, dtype=np.int64)
        rounds = np.zeros(n_queries, dtype=np.int64)
        final_radius = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        io_reads = np.zeros(n_queries, dtype=np.int64)
        elapsed = np.zeros(n_queries, dtype=np.float64)
        reason = [""] * n_queries
        budget_cap = [""] * n_queries
        tallies = ([WithinRadiusTally() for _ in range(n_queries)]
                   if self._use_t1 else None)

        try:
            active = np.arange(n_queries)
            radius = 1
            round_no = 0
            while active.size:
                round_no += 1
                with trace.span("shard.round", radius=int(radius),
                                active=int(active.size)) as rspan:
                    t_round = time.perf_counter()
                    collect = trace.active()
                    worker_payloads = self._runner.broadcast(
                        "batch_round", sid, int(radius), active, collect)
                    self.metrics.counter("shard.fanout.tasks").inc(
                        len(worker_payloads))
                    payloads = sorted(
                        (p for worker in worker_payloads for p in worker),
                        key=lambda p: p.shard_id)

                    rounds[active] += 1
                    final_radius[active] = radius
                    exhausted = np.ones(active.size, dtype=bool)
                    for p in payloads:
                        if p.spans:
                            # Worker-side subtree, stamped shard/pid/
                            # kernels; grafts under this shard.round span.
                            graft(p.spans)
                        if p.metrics:
                            self._fold_metrics(p.metrics)
                        scanned[active] += p.scanned
                        io_reads[active] += p.io_pages
                        exhausted &= p.exhausted
                        self.metrics.histogram(
                            "shard.worker.seconds").observe(p.seconds)
                        if p.qpos.size == 0:
                            continue
                        bounds = np.searchsorted(
                            p.qpos, np.arange(active.size + 1))
                        for i in np.flatnonzero(np.diff(bounds)):
                            q = int(active[i])
                            lo, hi = int(bounds[i]), int(bounds[i + 1])
                            ids = p.ids[lo:hi]
                            dists = p.dists[lo:hi]
                            cand_ids[q].append(ids)
                            cand_dists[q].append(dists)
                            n_cand[q] += ids.size
                            if tallies is not None:
                                tallies[q].add(dists)

                    # Global termination, in the batch engine's priority
                    # order: T2, then T1, then exhaustion, then budget.
                    t2 = n_cand[active] >= target
                    t1 = np.zeros(active.size, dtype=bool)
                    if tallies is not None:
                        threshold = c * radius * scale
                        for i in np.flatnonzero(~t2
                                                & (n_cand[active] >= k)):
                            q = int(active[i])
                            t1[i] = tallies[q].count_within(threshold) >= k
                    if round_no >= MAX_ROUNDS:
                        exhausted[:] = True
                    done = t2 | t1 | exhausted
                    for i in np.flatnonzero(done):
                        reason[active[i]] = ("T2" if t2[i]
                                             else "T1" if t1[i]
                                             else "exhausted")
                    if budget is not None:
                        cand_hit = np.zeros(active.size, dtype=bool) \
                            if budget.max_candidates is None \
                            else n_cand[active] >= budget.max_candidates
                        io_hit = np.zeros(active.size, dtype=bool) \
                            if budget.max_io_pages is None \
                            or not accounting \
                            else io_reads[active] >= budget.max_io_pages
                        late = (budget.deadline_s is not None
                                and time.perf_counter() - started
                                >= budget.deadline_s)
                        over = ~done & (cand_hit | io_hit | late)
                        for i in np.flatnonzero(over):
                            q = int(active[i])
                            reason[q] = "budget"
                            budget_cap[q] = ("candidates" if cand_hit[i]
                                             else "io_pages" if io_hit[i]
                                             else "deadline")
                            flight.note(
                                "budget_exhausted", engine="sharded",
                                query=q, cap=budget_cap[q],
                                radius=int(radius),
                                candidates=int(n_cand[q]),
                                io_pages=int(io_reads[q]),
                            )
                        done |= over
                    finished = active[done]
                    if finished.size:
                        self._fallback(sid, finished, k, n_cand, cand_ids,
                                       cand_dists, reason, io_reads)
                        elapsed[finished] = time.perf_counter() - started
                    self.metrics.counter("shard.rounds").inc()
                    self.metrics.histogram("shard.round.seconds").observe(
                        time.perf_counter() - t_round)
                    rspan.set(finished=int(finished.size))
                    active = active[~done]
                    radius *= c
        finally:
            self._runner.broadcast("batch_end", sid)

        tripped = [q for q in range(n_queries) if budget_cap[q]]
        if tripped:
            flight.dump("budget_exhausted", extra={
                "engine": "sharded",
                "queries": tripped,
                "caps": sorted({budget_cap[q] for q in tripped}),
                "shards": self.n_shards,
                "workers": self.n_workers,
            })

        results = []
        for q in range(n_queries):
            stats = QueryStats(
                rounds=int(rounds[q]), final_radius=int(final_radius[q]),
                candidates=int(n_cand[q]), scanned_entries=int(scanned[q]),
                terminated_by=reason[q], elapsed_s=float(elapsed[q]),
                degraded=bool(budget_cap[q]),
                budget_exhausted=budget_cap[q],
            )
            if accounting:
                stats.io_reads = int(io_reads[q])
                self.metrics.counter("shard.io.pages").inc(int(io_reads[q]))
            ids = (np.concatenate(cand_ids[q]) if cand_ids[q]
                   else np.empty(0, dtype=np.int64))
            dists = (np.concatenate(cand_dists[q]) if cand_dists[q]
                     else np.empty(0))
            results.append(QueryResult.from_candidates(ids, dists, k,
                                                       stats))
        return results

    def _fallback(self, sid, finished, k, n_cand, cand_ids, cand_dists,
                  reason, io_reads):
        """Graceful fallback for terminated queries still short of ``k``.

        Reproduces the unsharded order exactly: each shard nominates its
        best-counted unverified objects, the coordinator merges them under
        (collision count desc, global id asc) — the total order behind
        ``argsort(-counts, kind="stable")`` — takes the global prefix, and
        only the selected objects are verified.
        """
        fpb = self.params.false_positive_budget
        requests = {int(q): int(k - n_cand[q]) + fpb
                    for q in finished if n_cand[q] < k}
        if not requests:
            return
        self.metrics.counter("shard.fallback.queries").inc(len(requests))
        with trace.span("shard.fallback", queries=len(requests)):
            nominations = self._runner.broadcast(
                "fallback_candidates", sid, requests)
            by_shard = {}
            for worker in nominations:
                by_shard.update(worker)

            selected = {}
            for q, need in requests.items():
                gids, counts = [], []
                for shard_id in sorted(by_shard):
                    entry = by_shard[shard_id].get(q)
                    if entry is not None:
                        gids.append(entry[0])
                        counts.append(entry[1])
                if not gids:
                    continue
                gids = np.concatenate(gids)
                counts = np.concatenate(counts)
                order = np.lexsort((gids, -counts))[:need]
                selected[q] = gids[order]

            if not selected:
                return
            verify_req = [{} for _ in range(max(self.n_workers, 1))]
            placements = {}
            for q, gids in selected.items():
                shard_of = np.searchsorted(self._offsets, gids,
                                           side="right") - 1
                placements[q] = shard_of
                for shard_id in np.unique(shard_of):
                    worker = self._shard_worker[int(shard_id)]
                    verify_req[worker].setdefault(int(shard_id), {})[q] = \
                        gids[shard_of == shard_id]
            collect = trace.active()
            answers = self._runner.scatter(
                "fallback_verify",
                [(sid, req, collect) for req in verify_req])
            merged = {}
            for worker in answers:
                if worker.get("spans"):
                    graft(worker["spans"])
                if worker.get("metrics"):
                    self._fold_metrics(worker["metrics"])
                merged.update(worker["answers"])

            for q, gids in selected.items():
                dists = np.empty(gids.size, dtype=np.float64)
                shard_of = placements[q]
                for shard_id in np.unique(shard_of):
                    shard_dists, io = merged[int(shard_id)][q]
                    dists[shard_of == shard_id] = shard_dists
                    io_reads[q] += io
                cand_ids[q].append(gids)
                cand_dists[q].append(dists)
                n_cand[q] += gids.size
                if reason[q] != "budget":
                    reason[q] = "fallback"

    # -- persistence ---------------------------------------------------------

    def save(self, path):
        """Persist the index + shard layout as a verified v2 container."""
        from .persist import save_sharded

        return save_sharded(self, path)

    @classmethod
    def load(cls, path, n_workers=None, **overrides):
        """Load an engine saved by :meth:`save`; see
        :func:`repro.sharding.load_sharded`."""
        from .persist import load_sharded

        return load_sharded(path, n_workers=n_workers, **overrides)

    def __repr__(self):
        if not self.is_fitted:
            state = "closed" if self._closed else "unfitted"
            return (f"ShardedC2LSH(shards={self.n_shards}, "
                    f"workers={self.n_workers}, {state})")
        return (f"ShardedC2LSH(n={self.n}, dim={self.dim}, "
                f"shards={self.n_shards}, workers={self.n_workers}, "
                f"m={self.params.m}, l={self.params.l})")
