"""Persist sharded engines through the verified v2 container format.

A sharded index is fully determined by the dataset, the *global* design
(hash functions, parameters, distance scale — shared by every shard) and
the shard layout, so one :func:`repro.core.persist.save_arrays` container
of kind ``"sharded-c2lsh"`` captures it: atomic write, CRC32-verified
load, :class:`~repro.reliability.CorruptIndexError` on damage. Per-shard
hash tables are rebuilt on load — in parallel, by the restored engine's
own workers — which is both cheaper than storing them and bit-identical
because hashing is deterministic.

Worker count is a *deployment* property, not an index property: the saved
file records the shard layout, and ``load_sharded(n_workers=...)`` may
restore it onto any worker width (including the serial fallback) without
changing a single query answer. Fault plans are runtime attachments and
are likewise not persisted.
"""

from __future__ import annotations

import numpy as np

from ..core.params import C2LSHParams
from ..core.persist import load_arrays, save_arrays
from ..hashing.pstable import PStableFamily, PStableFunctions
from .engine import ShardedC2LSH

__all__ = ["save_sharded", "load_sharded"]

_KIND = "sharded-c2lsh"


def save_sharded(engine, path):
    """Persist a fitted :class:`ShardedC2LSH` to ``path`` (``.npz``).

    Atomic and checksummed like every v2 container; returns the path
    written (``.npz`` appended when missing).
    """
    if not engine.is_fitted:
        raise ValueError("cannot save an unfitted or closed engine")
    if not isinstance(engine._family, PStableFamily):
        raise TypeError(
            "only engines over the default PStableFamily can be saved, "
            f"got {type(engine._family).__name__}"
        )
    p = engine.params
    return save_arrays(path, _KIND, {
        "data": np.asarray(engine._data),
        "projections": engine._funcs._projections,
        "offsets": engine._funcs._offsets,
        "funcs_w": engine._funcs.w,
        "family_w": engine._family.w,
        "scale": engine._scale,
        "params": np.array([p.n, p.c, p.w, p.p1, p.p2, p.alpha, p.m, p.l,
                            p.beta, p.delta]),
        "shard_offsets": np.asarray(engine._offsets, dtype=np.int64),
        "data_layout": np.array(engine._data_layout),
        "use_t1": engine._use_t1,
        "page_accounting": engine._page_accounting,
        "page_size": engine._page_size,
        "page_latency_s": engine._page_latency_s,
        "fault_seed": engine._fault_seed,
    })


def load_sharded(path, n_workers=None, *, page_latency_s=None,
                 fault_plan=None, on_worker_failure="rebuild",
                 failover=None, metrics=None):
    """Restore an engine written by :func:`save_sharded`.

    Every array is verified against its recorded CRC32/dtype/shape;
    damage raises :class:`~repro.reliability.CorruptIndexError` naming
    the bad section. The shard layout is restored exactly as saved;
    ``n_workers`` (default: auto width) chooses how the restored shards
    are spread over processes. ``page_latency_s`` and ``fault_plan``
    override/attach the runtime-only storage behaviors;
    ``on_worker_failure``/``failover`` select the restored deployment's
    failover policy (like worker width, a deployment property — not
    persisted); ``metrics`` supplies the registry for the restored
    engine's ``shard.*`` metrics.
    """
    blob = load_arrays(path, _KIND)
    data = np.ascontiguousarray(blob["data"])
    raw = blob["params"]
    params = C2LSHParams(
        n=int(raw[0]), c=int(raw[1]), w=float(raw[2]), p1=float(raw[3]),
        p2=float(raw[4]), alpha=float(raw[5]), m=int(raw[6]), l=int(raw[7]),
        beta=float(raw[8]), delta=float(raw[9]),
    )
    scale = float(blob["scale"])
    shard_off = np.asarray(blob["shard_offsets"], dtype=np.int64)
    if page_latency_s is None:
        page_latency_s = float(blob["page_latency_s"])

    engine = ShardedC2LSH(
        n_shards=shard_off.size - 1,
        n_workers=n_workers,
        c=params.c,
        base_radius=scale,
        data_layout=str(blob["data_layout"]),
        use_t1=bool(blob["use_t1"]),
        page_accounting=bool(blob["page_accounting"]),
        page_size=int(blob["page_size"]),
        page_latency_s=page_latency_s,
        fault_plan=fault_plan,
        fault_seed=int(blob["fault_seed"]),
        on_worker_failure=on_worker_failure,
        failover=failover,
        metrics=metrics,
    )
    family = PStableFamily(data.shape[1], w=float(blob["family_w"]))
    funcs = PStableFunctions(blob["projections"], blob["offsets"],
                             float(blob["funcs_w"]))
    engine._assemble(data, family, funcs, params, scale, offsets=shard_off)
    return engine
