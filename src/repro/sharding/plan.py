"""Shard layout and parallel-width policy.

Kept dependency-free (``os`` only) so hot modules — including
:mod:`repro.core.c2lsh` — can import the parallel-width helper lazily
without pulling in the whole sharding engine.
"""

from __future__ import annotations

import os

__all__ = ["default_parallelism", "shard_offsets", "assign_shards"]


def default_parallelism(limit=None):
    """The default width for any parallel fan-out in this repository.

    ``min(available cpus, limit)``, never below 1. ``limit`` is the
    natural task count (number of shards, queries in a batch, ...), so a
    4-shard index on a 32-core box gets 4 workers, not 32. Respects CPU
    affinity masks (cgroup/container limits) where the platform exposes
    them. This is *the* one place a parallel width is derived;
    :meth:`repro.core.c2lsh.C2LSH.query_batch` and
    :class:`repro.sharding.ShardedC2LSH` both resolve their defaults here.
    """
    try:
        width = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        width = os.cpu_count() or 1
    if limit is not None:
        limit = int(limit)
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        width = min(width, limit)
    return max(1, width)


def shard_offsets(n, n_shards):
    """Row-partition boundaries: shard ``s`` owns rows ``[off[s], off[s+1])``.

    Returns ``n_shards + 1`` monotonically increasing offsets with
    ``off[0] == 0`` and ``off[-1] == n``. Sizes differ by at most one row
    (the first ``n % n_shards`` shards get the extra row). Every shard is
    non-empty, so ``n_shards`` may not exceed ``n``.
    """
    n = int(n)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n < n_shards:
        raise ValueError(
            f"cannot split {n} rows into {n_shards} non-empty shards"
        )
    base, extra = divmod(n, n_shards)
    offsets = [0]
    for s in range(n_shards):
        offsets.append(offsets[-1] + base + (1 if s < extra else 0))
    return tuple(offsets)


def assign_shards(n_shards, n_workers):
    """Round-robin shard→worker assignment; returns one tuple per worker.

    Worker ``w`` owns shards ``w, w + W, w + 2W, ...`` — interleaving
    keeps per-worker row counts balanced when ``n_shards`` is not a
    multiple of ``n_workers``.
    """
    n_shards = int(n_shards)
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers > n_shards:
        n_workers = n_shards
    return tuple(
        tuple(range(w, n_shards, n_workers)) for w in range(n_workers)
    )
