"""Worker supervision: failure detection, respawn, and quarantine.

The sharded engine's worker protocol is synchronous fan-out: every round
broadcasts to all workers and waits. Before this module existed, that
wait was unbounded and unguarded — one OOM-killed or wedged process
stalled every in-flight query and stranded the shared-memory segment.
:class:`WorkerSupervisor` puts a supervision layer between the engine and
its execution backend:

* **Deadlines.** Every protocol call carries a timeout derived from the
  active :class:`~repro.reliability.QueryBudget` (remaining wall clock)
  plus the policy's round timeout, so a stuck worker is *detected*, not
  waited on (:func:`protocol_timeout`).
* **Failure detection.** The backend reports per-worker outcomes; a
  broken pool, a missed deadline, or an injected exit marks the worker
  failed without losing the survivors' results.
* **Respawn.** A failed worker's pool is rebuilt from its retained
  :class:`~repro.sharding.worker.HostConfig` — the coordinator still
  holds the shared-memory segment, so the respawned process reattaches
  and rebuilds only its own shards. Respawns run inline (``"rebuild"``
  policy) or on a background thread (quarantined / ``"degrade"``), and a
  respawned worker rejoins the fan-out at the next query block.
* **Circuit breaker.** A worker that keeps dying is quarantined after
  :attr:`FailoverPolicy.max_failures` failures inside
  :attr:`FailoverPolicy.failure_window_s` — the engine then serves
  degraded answers from the survivors instead of burning every query on
  rebuild-crash loops, while a background respawn tries to bring the
  worker back.
* **Heartbeats.** :meth:`WorkerSupervisor.probe` pings every worker
  under :attr:`FailoverPolicy.heartbeat_timeout_s`, distinguishing a
  stuck process from an idle one without issuing real protocol work.

What the supervisor deliberately does *not* own is the failover
*semantics*: replaying the lockstep session onto a respawned worker for
bit-identical answers, or marking queries degraded, is protocol
knowledge and lives in :class:`repro.sharding.ShardedC2LSH`. The split
keeps this module about process lifecycle only.

Everything lands in :mod:`repro.obs`: failures, respawns and
quarantines tick ``shard.failover.*`` counters and histograms, each
event is :func:`~repro.obs.flight.note`\\ d into the flight recorder, and
respawns run inside ``shard.respawn`` trace spans.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, replace

from ..obs import flight, trace

__all__ = ["FailoverPolicy", "CircuitBreaker", "WorkerSupervisor",
           "POLICIES", "protocol_timeout"]

#: Failure policies the engine accepts (``on_worker_failure=``).
POLICIES = ("rebuild", "degrade", "raise")

#: Failure causes that count toward a worker's circuit breaker. ``"dead"``
#: (a call routed at an already-failed worker) is bookkeeping, not news.
_REAL_CAUSES = ("broken_pool", "timeout", "worker_exit")


@dataclass(frozen=True)
class FailoverPolicy:
    """How the sharded engine reacts to a dead or stuck worker.

    Parameters
    ----------
    on_failure:
        ``"rebuild"`` — respawn the worker from its retained config,
        replay the current lockstep session, and retry the failed call;
        answers stay bit-identical to the unsharded index. ``"degrade"``
        — answer from surviving shards within the deadline, marking
        ``QueryStats.degraded`` and ``QueryStats.failed_shards``.
        ``"raise"`` — fail fast with
        :class:`~repro.reliability.WorkerFailureError` (the pre-
        supervision semantics, minus the hang and the leak).
    round_timeout_s:
        Per-call deadline on the worker protocol. When a query budget
        with ``deadline_s`` is active the effective deadline is the
        budget's *remaining* time plus this value (a worker is only
        declared stuck once it has overstayed the query's own deadline
        by a full round timeout). ``None`` disables deadlines entirely.
    build_timeout_s:
        Deadline for ``build`` calls (initial fit and respawns), which
        legitimately run much longer than a round.
    max_failures / failure_window_s:
        Circuit breaker: quarantine a worker after ``max_failures``
        failures within ``failure_window_s`` seconds. Quarantined
        workers are served around (degraded) while a background respawn
        runs, even under ``"rebuild"``.
    heartbeat_timeout_s:
        Deadline for :meth:`WorkerSupervisor.probe` pings.
    auto_respawn:
        Spawn background respawns for degraded/quarantined workers.
        Disable for deterministic tests that want failures to stay
        failed.
    """

    on_failure: str = "rebuild"
    round_timeout_s: float | None = 60.0
    build_timeout_s: float | None = 600.0
    max_failures: int = 3
    failure_window_s: float = 60.0
    heartbeat_timeout_s: float = 5.0
    auto_respawn: bool = True

    def __post_init__(self):
        if self.on_failure not in POLICIES:
            raise ValueError(
                f"unknown failure policy {self.on_failure!r}; "
                f"available: {POLICIES}"
            )
        if self.round_timeout_s is not None and self.round_timeout_s <= 0:
            raise ValueError(
                f"round_timeout_s must be positive, got {self.round_timeout_s}"
            )
        if self.build_timeout_s is not None and self.build_timeout_s <= 0:
            raise ValueError(
                f"build_timeout_s must be positive, got {self.build_timeout_s}"
            )
        if self.max_failures < 1:
            raise ValueError(
                f"max_failures must be >= 1, got {self.max_failures}"
            )
        if self.failure_window_s <= 0:
            raise ValueError(
                f"failure_window_s must be positive, got {self.failure_window_s}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be positive, "
                f"got {self.heartbeat_timeout_s}"
            )


def protocol_timeout(policy, budget=None, started=None):
    """The per-call deadline for one worker-protocol step, or ``None``.

    ``round_timeout_s`` alone bounds unbudgeted calls; with an active
    deadline budget the remaining budget is *added* (never substituted),
    so a legitimately slow round near the deadline is not misread as a
    dead worker — the budget check at the round boundary handles the
    overrun gracefully, and supervision only steps in when the worker
    has also exhausted the grace period.

    ``budget`` may also be a per-query sequence (the coalesced-batch
    form): the call must outlive the *longest*-lived query, so the
    maximum remaining time across deadline budgets is added; a batch
    containing any unbudgeted query (``None`` entry or no deadline) gets
    the unbudgeted timeout, since those queries are not deadline-bound.
    """
    if policy.round_timeout_s is None:
        return None
    deadline = policy.round_timeout_s
    if budget is not None and started is not None:
        budgets = budget if isinstance(budget, (list, tuple)) else [budget]
        remainings = []
        for b in budgets:
            remaining = b.remaining_s(started) if b is not None else None
            if remaining is None:
                # An unbudgeted query bounds nothing; the base
                # round_timeout_s alone governs the call.
                return deadline
            remainings.append(remaining)
        if remainings:
            deadline += max(remainings)
    return deadline


class CircuitBreaker:
    """Quarantine decision: too many failures in a sliding window.

    Thread-safe; keyed by worker index. A worker trips after
    ``max_failures`` :meth:`record` calls within ``window_s`` seconds
    and stays tripped until :meth:`reset` (a successful respawn).
    """

    def __init__(self, max_failures=3, window_s=60.0):
        self.max_failures = int(max_failures)
        self.window_s = float(window_s)
        self._events = collections.defaultdict(collections.deque)
        self._lock = threading.Lock()

    def record(self, worker, now=None):
        """Record one failure; returns True when the breaker is tripped."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            events = self._events[worker]
            events.append(now)
            while events and now - events[0] > self.window_s:
                events.popleft()
            return len(events) >= self.max_failures

    def tripped(self, worker, now=None):
        """Whether ``worker`` is currently quarantined."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            events = self._events.get(worker)
            if not events:
                return False
            while events and now - events[0] > self.window_s:
                events.popleft()
            return len(events) >= self.max_failures

    def reset(self, worker):
        """Forget ``worker``'s failures (a respawn proved it healthy)."""
        with self._lock:
            self._events.pop(worker, None)

    def snapshot(self):
        """``{worker: recent failure count}`` for observability."""
        now = time.monotonic()
        with self._lock:
            return {w: sum(1 for t in e if now - t <= self.window_s)
                    for w, e in self._events.items() if e}


class WorkerSupervisor:
    """Process-lifecycle layer between the engine and its runner.

    Parameters
    ----------
    runner:
        The execution backend (``_SerialRunner`` / ``_ProcessRunner``),
        providing ``run(method, args_for, workers, timeout)`` →
        ``(results, failures)`` and ``respawn(worker, config)``.
    configs:
        Retained per-worker :class:`~repro.sharding.worker.HostConfig`\\ s
        — everything a respawn needs (the shared-memory segment they
        name stays alive at the coordinator).
    groups:
        Per-worker shard-id tuples, for translating dead workers into
        failed shards.
    policy:
        The :class:`FailoverPolicy` in force.
    metrics:
        The engine's :class:`~repro.obs.MetricsRegistry`; all
        supervision telemetry lands under ``shard.failover.*``.
    """

    def __init__(self, runner, configs, groups, policy, metrics):
        self._runner = runner
        self._configs = list(configs)
        self._groups = [tuple(g) for g in groups]
        self.policy = policy
        self.metrics = metrics
        self.breaker = CircuitBreaker(policy.max_failures,
                                      policy.failure_window_s)
        self._lock = threading.RLock()
        self._dead = set()         # out of the fan-out right now
        self._ready = set()        # respawned, awaiting block-boundary adopt
        self._respawning = set()   # background respawn in flight
        self._generation = collections.defaultdict(int)
        self._closed = False

    def close(self):
        """Stop scheduling respawns — the engine is shutting down."""
        self._closed = True

    # -- membership ----------------------------------------------------------

    @property
    def n_workers(self):
        """Total worker slots, live or not."""
        return len(self._configs)

    def live_workers(self):
        """Workers currently in the fan-out, ascending."""
        with self._lock:
            return [w for w in range(self.n_workers) if w not in self._dead]

    def dead_workers(self):
        """Workers currently out of service, ascending."""
        with self._lock:
            return sorted(self._dead)

    def failed_shards(self):
        """Shard ids owned by currently dead workers (sorted)."""
        with self._lock:
            return sorted(s for w in self._dead for s in self._groups[w])

    def shards_of(self, worker):
        """Shard ids ``worker`` owns (dead or alive)."""
        return self._groups[worker]

    # -- calls ---------------------------------------------------------------

    def call(self, method, args=(), per_worker=None, workers=None,
             timeout=None):
        """One protocol call; returns ``(results, failures)`` by worker.

        ``args`` broadcasts the same tuple everywhere; ``per_worker``
        (``{worker: args tuple}``) scatters. ``workers`` defaults to the
        live set. Failures are recorded (metrics, flight recorder,
        circuit breaker) but *not* acted on — policy dispatch is the
        engine's job, which knows which queries a failure touches.
        """
        if workers is None:
            workers = self.live_workers()
        if per_worker is not None:
            workers = [w for w in workers if w in per_worker]
            args_for = per_worker.__getitem__
        else:
            def args_for(_w):
                return args
        results, failures = self._runner.run(method, args_for, workers,
                                             timeout)
        if failures:
            self.note_failures(method, failures)
        return results, failures

    def note_failures(self, method, failures):
        """Record failures in metrics, the flight ring, and the breaker."""
        for worker, cause in sorted(failures.items()):
            if cause not in _REAL_CAUSES:
                continue
            self.metrics.counter("shard.failover.failures").inc()
            self.metrics.counter(f"shard.failover.{cause}").inc()
            tripped = self.breaker.record(worker)
            flight.note("worker_failure", worker=worker, cause=cause,
                        method=method, shards=str(self._groups[worker]),
                        tripped=tripped)

    # -- state transitions ---------------------------------------------------

    def mark_dead(self, worker, cause=""):
        """Take ``worker`` out of the fan-out; survivors keep serving."""
        with self._lock:
            new = worker not in self._dead
            self._dead.add(worker)
            self._ready.discard(worker)
            dead = len(self._dead)
        if new:
            self.metrics.gauge("shard.failover.dead_workers").set(dead)
            flight.note("worker_dead", worker=worker, cause=cause,
                        shards=str(self._groups[worker]))

    def adopt_ready(self):
        """Fold background-respawned workers back in; returns them.

        Called by the engine at query-block boundaries only: a
        respawned worker has rebuilt shards but no session state, so it
        must rejoin where a fresh ``batch_start`` gives it one.
        """
        with self._lock:
            adopted = sorted(self._ready & self._dead)
            for worker in adopted:
                self._dead.discard(worker)
            self._ready.clear()
            dead = len(self._dead)
        if adopted:
            self.metrics.gauge("shard.failover.dead_workers").set(dead)
            for worker in adopted:
                flight.note("worker_adopted", worker=worker)
        return adopted

    # -- respawn -------------------------------------------------------------

    def respawn(self, worker):
        """Rebuild ``worker``'s process and shards.

        Returns the worker's ``{shard_id: build info}`` dict on success,
        ``None`` on failure (truthy/falsy tests read naturally). The
        retained config is re-issued with a bumped ``chaos_generation``
        so kill-``N``-times chaos rules do not re-kill every incarnation
        (see :class:`~repro.sharding.worker.HostConfig`). A respawn
        failure counts toward the worker's circuit breaker.
        """
        with self._lock:
            self._generation[worker] += 1
            config = replace(self._configs[worker],
                             chaos_generation=self._generation[worker])
            self._configs[worker] = config
        started = time.perf_counter()
        with trace.span("shard.respawn", worker=worker,
                        generation=self._generation[worker]) as span:
            try:
                self._runner.respawn(worker, config)
                results, failures = self._runner.run(
                    "build", lambda _w: (), [worker],
                    self.policy.build_timeout_s)
            except Exception:
                results, failures = {}, {worker: "respawn_error"}
            ok = worker in results and not failures
            span.set(ok=ok)
        seconds = time.perf_counter() - started
        self.metrics.histogram("shard.failover.respawn.seconds").observe(
            seconds)
        if ok:
            self.metrics.counter("shard.failover.respawns").inc()
            flight.note("worker_respawned", worker=worker,
                        seconds=seconds,
                        generation=self._generation[worker])
        else:
            self.metrics.counter("shard.failover.respawn_failures").inc()
            self.breaker.record(worker)
            flight.note("worker_respawn_failed", worker=worker,
                        causes=str(sorted(failures.values())))
        return results.get(worker) if ok else None

    def quarantine(self, worker, cause=""):
        """Dead + breaker-tripped: serve around it, heal in background."""
        self.metrics.counter("shard.failover.quarantines").inc()
        flight.note("worker_quarantined", worker=worker, cause=cause)
        self.mark_dead(worker, cause=cause)
        self.schedule_respawn(worker)

    def schedule_respawn(self, worker):
        """Background respawn; the worker rejoins via :meth:`adopt_ready`."""
        if not self.policy.auto_respawn or self._closed:
            return None
        with self._lock:
            if worker in self._respawning:
                return None
            self._respawning.add(worker)

        def _run():
            try:
                if not self._closed and self.respawn(worker):
                    with self._lock:
                        self._ready.add(worker)
                    self.breaker.reset(worker)
            finally:
                with self._lock:
                    self._respawning.discard(worker)

        thread = threading.Thread(target=_run, daemon=True,
                                  name=f"repro-shard-respawn-{worker}")
        thread.start()
        return thread

    # -- heartbeat -----------------------------------------------------------

    def probe(self, timeout=None):
        """Ping every worker; ``{worker: {"ok": bool, ...}}``.

        Dead workers are reported without being probed. A live worker
        that misses the heartbeat deadline is reported unhealthy but not
        auto-killed — diagnosis and policy stay separate (the engine's
        ``healthcheck(repair=True)`` wires them together).
        """
        timeout = timeout if timeout is not None \
            else self.policy.heartbeat_timeout_s
        report = {}
        with self._lock:
            dead = set(self._dead)
        for worker in sorted(dead):
            report[worker] = {"ok": False, "cause": "dead",
                              "shards": list(self._groups[worker])}
        live = [w for w in range(self.n_workers) if w not in dead]
        results, failures = self.call("ping", workers=live, timeout=timeout)
        for worker in live:
            if worker in results:
                report[worker] = {"ok": True, **results[worker]}
            else:
                report[worker] = {
                    "ok": False,
                    "cause": failures.get(worker, "unknown"),
                    "shards": list(self._groups[worker]),
                }
        return report
