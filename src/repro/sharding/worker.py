"""Shard-side execution: per-process shard state and lockstep round tasks.

A worker process (or the in-process serial runner) hosts one or more
*shards* — contiguous row ranges of the dataset, each with its own
:class:`~repro.core.counting.CollisionCounter`, :class:`~repro.storage.
DataFile` and :class:`~repro.storage.PageManager`. The dataset itself is
never pickled per task: process workers attach a
:mod:`multiprocessing.shared_memory` segment the coordinator filled once,
and every shard index is built over a zero-copy slice view of it.

The protocol is deliberately thin. The coordinator
(:class:`repro.sharding.ShardedC2LSH`) owns *all* termination logic; a
worker only ever executes one radius round (or one fallback step) for the
shards it hosts and reports raw per-query observations back. That split is
what makes the sharded engine bit-identical to the unsharded index: the
same global T1/T2/exhaustion/budget decisions are applied to the union of
per-shard observations that the lockstep batch engine applies to its own.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.adaptive import (
    _chunk_bounds,
    collide_levels,
    occupancy_table,
    probe_order,
)
from ..core.batchengine import BatchQueryCounter
from ..core.counting import CollisionCounter
from ..kernels import backend as _kernels_backend
from ..kernels import backend_name
from ..hashing.pstable import PStableFamily, PStableFunctions
from ..obs import trace
from ..obs.registry import Counter, MetricsRegistry
from ..obs.remote import export_events
from ..obs.trace import tracing
from ..reliability.errors import InjectedWorkerExit
from ..reliability.faults import FaultInjector, FaultPlan
from ..storage.datafile import DataFile
from ..storage.pages import PageManager

__all__ = ["ShardSpec", "HostConfig", "ShardHost", "RoundPayload"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: its id and global row range ``[start, stop)``."""

    shard_id: int
    start: int
    stop: int


@dataclass(frozen=True)
class HostConfig:
    """Everything a worker needs to build its shards (picklable).

    ``shm_name`` names a shared-memory segment holding the full dataset;
    when ``None`` (serial runner, or spawn-less fallbacks) ``data`` carries
    the matrix directly. ``projections``/``offsets``/``funcs_w`` are the
    *global* hash functions every shard shares — sampling them once at the
    coordinator is what makes per-shard collision counts equal the
    unsharded index's counts restricted to the shard's rows.

    ``worker_index`` is this host's position in the engine's worker
    layout; ``worker_exit.*`` fault rules scoped with
    :attr:`~repro.reliability.FaultRule.worker` match against it.
    ``chaos_generation`` counts how many times the supervisor has
    respawned this worker: ``worker_exit.*`` rules with ``max_triggers``
    are treated as exhausted once the generation reaches the trigger
    budget, so a kill-once chaos rule does not re-kill every respawned
    incarnation (each incarnation's injector state is necessarily
    fresh).
    """

    shards: tuple
    shape: tuple
    dtype: str
    shm_name: str | None = None
    data: object = None
    projections: object = None
    offsets: object = None
    funcs_w: float = 1.0
    family_w: float = 1.0
    scale: float = 1.0
    l: int = 1
    data_layout: str = "scattered"
    page_accounting: bool = False
    page_size: int = 4096
    page_latency_s: float = 0.0
    fault_plan: object = None
    fault_seed: int = 0
    c: int = 2
    incremental: bool = True
    worker_index: int = 0
    chaos_generation: int = 0


@dataclass
class RoundPayload:
    """One shard's observations for one radius round.

    ``qpos`` indexes into the round's *active* array; ``ids`` are global
    object ids (shard offset already applied) sorted ascending within each
    query, exactly the order the unsharded engine verifies them in.

    ``spans`` (present when the coordinator asked for collection) is the
    shard's span subtree for this round, exported with
    :func:`repro.obs.remote.export_events` and stamped worker-side with
    shard id, pid, and kernel tier; the coordinator grafts it into its
    live trace. ``metrics`` piggybacks the host's counter deltas since
    the last report (attached to one payload per host call).

    ``probes_issued`` / ``probes_skipped`` (adaptive rounds only; ``None``
    on classic rounds) count per-table bucket probes this shard executed
    vs. early-exited past, per active query — shipped home so the
    coordinator's global stats and termination decisions stay
    centralized.
    """

    shard_id: int
    qpos: np.ndarray
    ids: np.ndarray
    dists: np.ndarray
    scanned: np.ndarray
    io_pages: np.ndarray
    exhausted: np.ndarray
    seconds: float = 0.0
    spans: list = None
    metrics: dict = None
    probes_issued: np.ndarray = None
    probes_skipped: np.ndarray = None


@dataclass
class _Session:
    """Per-(shard, batch) lockstep state, kept between rounds.

    ``probe`` (adaptive sessions only) is the coordinator's probe payload:
    the ``(Q, m)`` projection coordinates plus the chunk/order knobs of
    the :class:`repro.core.adaptive.AdaptiveConfig` driving the block.
    """

    counter: BatchQueryCounter
    queries: np.ndarray
    is_candidate: np.ndarray = field(default=None)
    qids: np.ndarray = field(default=None)
    probe: dict = field(default=None)


class _ShardIndex:
    """One shard: counting tables + data file over a zero-copy row slice."""

    def __init__(self, spec, data_slice, funcs, config):
        self.spec = spec
        self.offset = spec.start
        self.n = data_slice.shape[0]
        pm = None
        if config.page_accounting:
            injector = None
            if config.fault_plan is not None:
                # Per-shard seeds keep fault schedules independent across
                # shards while staying deterministic for a fixed layout.
                injector = FaultInjector(
                    FaultPlan.from_dict(config.fault_plan),
                    seed=config.fault_seed + spec.shard_id,
                )
            pm = PageManager(page_size=config.page_size,
                             page_latency_s=config.page_latency_s,
                             fault_injector=injector)
        self.pm = pm
        self.family = PStableFamily(data_slice.shape[1], w=config.family_w)
        started = time.perf_counter()
        hashed = data_slice if config.scale == 1.0 \
            else data_slice / config.scale
        self.counter = CollisionCounter(funcs.hash(hashed), pm)
        self.datafile = DataFile(data_slice, pm, layout=config.data_layout)
        self.build_seconds = time.perf_counter() - started

    def io_totals(self):
        if self.pm is None:
            return (0, 0)
        return (self.pm.stats.reads, self.pm.stats.writes)


class ShardHost:
    """All shards hosted by one worker, plus their live batch sessions.

    Construction only attaches the data (shared memory or direct array);
    :meth:`build` does the actual index construction so the coordinator
    can time the parallel build phase.
    """

    def __init__(self, config):
        # Kernel tiers are a per-process decision: a spawned worker must
        # derive numpy-vs-numba from its own environment (REPRO_KERNELS
        # travels through the inherited environ), not inherit a pickled
        # coordinator choice. Idempotent in the serial in-process runner.
        _kernels_backend.reselect()
        self.config = config
        self._subprocess = False  # _init_host flips this in pool workers
        self._chaos = self._chaos_injector(config)
        self._shm = None
        if config.shm_name is not None:
            from multiprocessing import shared_memory

            # Attaching re-registers the segment with the resource
            # tracker, but pool children inherit the coordinator's tracker
            # process and its cache is a name-keyed set, so this is
            # idempotent; the coordinator's unlink() removes the single
            # entry. (Unregistering here instead would yank that entry
            # and make the coordinator's unlink die in the tracker.)
            self._shm = shared_memory.SharedMemory(name=config.shm_name)
            self._full = np.ndarray(config.shape, dtype=config.dtype,
                                    buffer=self._shm.buf)
        else:
            self._full = np.asarray(config.data)
        self._shards = {}
        self._sessions = {}
        # Host-local telemetry: counters accumulate here and ship to the
        # coordinator as deltas piggybacked on round payloads.
        self.metrics = MetricsRegistry()
        self._shipped = {}

    # -- chaos (worker_exit sites) -------------------------------------------

    @staticmethod
    def _chaos_injector(config):
        """The host's protocol-step injector, or ``None`` when inert.

        Only ``worker_exit.*`` rules are installed (page-fault rules stay
        with the per-shard page managers, whose seeds and op counts must
        be untouched for bit-identical replay after a respawn). Rules
        scoped to another worker are dropped, as are kill-``N``-times
        rules whose trigger budget the respawn generation has consumed.
        """
        if config.fault_plan is None:
            return None
        plan = FaultPlan.from_dict(config.fault_plan)
        rules = tuple(
            r for r in plan.rules
            if r.site.startswith("worker_exit")
            and (r.worker is None or r.worker == config.worker_index)
            and (r.max_triggers is None
                 or r.max_triggers > config.chaos_generation)
        )
        if not rules:
            return None
        return FaultInjector(
            FaultPlan(rules),
            seed=config.fault_seed + 100_003 + config.worker_index,
        )

    def _chaos_step(self, step):
        """One op at the ``worker_exit.<step>`` site; may stall or die.

        An ``"exit"`` rule firing here kills the worker process with
        ``os._exit`` — indistinguishable from an OOM kill as far as the
        coordinator's pool is concerned. In-process hosts (serial
        runner) let :class:`InjectedWorkerExit` propagate instead so the
        runner can simulate the death without taking the caller down.
        """
        if self._chaos is None:
            return
        try:
            self._chaos.check(f"worker_exit.{step}")
        except InjectedWorkerExit:
            if self._subprocess:
                os._exit(17)
            raise

    # -- build ---------------------------------------------------------------

    def build(self):
        """Build every hosted shard; returns per-shard build info."""
        self._chaos_step("build")
        funcs = PStableFunctions(self.config.projections,
                                 self.config.offsets, self.config.funcs_w)
        info = {}
        for spec in self.config.shards:
            shard = _ShardIndex(spec, self._full[spec.start:spec.stop],
                                funcs, self.config)
            self._shards[spec.shard_id] = shard
            reads, writes = shard.io_totals()
            info[spec.shard_id] = {
                "n": shard.n,
                "seconds": shard.build_seconds,
                "io_writes": writes,
            }
        return info

    # -- batch session protocol ---------------------------------------------

    def batch_start(self, session_id, queries, qids, probe=None):
        """Open a lockstep session for a ``(Q, dim)`` query block.

        ``probe`` (adaptive blocks only) carries the query projection
        coordinates and probing knobs; classic blocks omit it and every
        later round runs the exact classic protocol.
        """
        self._chaos_step("batch_start")
        for shard in self._shards.values():
            self._sessions[(session_id, shard.spec.shard_id)] = _Session(
                counter=BatchQueryCounter(shard.counter, qids),
                queries=queries,
                is_candidate=np.zeros((queries.shape[0], shard.n),
                                      dtype=bool),
                qids=np.asarray(qids, dtype=np.int64),
                probe=probe,
            )
        return True

    def batch_estimate(self, session_id):
        """Radius-start statistics for the session, reduced over shards.

        Returns ``{"collide": (Q, m) min collide levels, "occ": (Q, L)
        occupancy sums, "total": occupancy at saturation}`` — this
        worker's contribution to the coordinator's global
        :func:`repro.core.adaptive.merge_start_levels` reduction. Reads
        only the in-memory sorted id arrays; no pages are charged,
        matching the unsharded estimator.
        """
        self._chaos_step("batch_estimate")
        c = self.config.c
        collide = None
        occs = []
        total = 0
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            session = self._sessions[(session_id, shard_id)]
            levels = collide_levels(shard.counter, session.qids, c)
            collide = levels if collide is None \
                else np.minimum(collide, levels)
            occs.append(occupancy_table(shard.counter, session.qids, c))
            total += shard.counter.m * shard.n
        width = max(o.shape[1] for o in occs)
        occ = np.zeros((collide.shape[0], width), dtype=np.int64)
        for shard_occ, shard_id in zip(occs, sorted(self._shards)):
            w = shard_occ.shape[1]
            occ[:, :w] += shard_occ
            if w < width:
                # Past its saturation a shard's buckets cover all its
                # entries in every table.
                shard = self._shards[shard_id]
                occ[:, w:] += shard.counter.m * shard.n
        return {"collide": collide, "occ": occ, "total": int(total)}

    def batch_round(self, session_id, radius, active, collect=False,
                    need=None):
        """Advance every hosted shard one radius round for ``active``.

        Returns one :class:`RoundPayload` per shard. Counting, threshold
        crossing and verification mirror one round of
        :func:`repro.core.batchengine.batch_query` exactly, restricted to
        the shard's rows.

        ``need`` switches the round to adaptive probing (the session must
        have been opened with a probe payload): a dict whose ``"t2"``
        entry gives each active query's remaining T2 deficit, letting the
        shard stop probing a query whose local observations alone already
        guarantee the coordinator's global rule will fire. ``None`` (the
        default, and every classic caller) runs the exact classic round.

        When ``collect`` is true (the coordinator's trace is live) each
        shard's round runs inside a local span capture; the exported
        subtree — stamped with shard id, worker pid and kernel tier —
        ships back on the payload for the coordinator to graft.
        """
        self._chaos_step("batch_round")
        adaptive = need is not None
        payloads = []
        for shard_id in sorted(self._shards):
            if collect:
                with tracing() as local:
                    with trace.span(
                        "shard.worker.round",
                        shard=shard_id,
                        radius=int(radius),
                        pid=os.getpid(),
                        kernels=backend_name(),
                    ) as wspan:
                        payload = (self._shard_round_adaptive(
                            session_id, shard_id, radius, active, need)
                            if adaptive else self._shard_round(
                                session_id, shard_id, radius, active))
                        wspan.set(
                            pages=int(payload.io_pages.sum()),
                            candidates=int(payload.ids.size),
                            scanned=int(payload.scanned.sum()),
                        )
                        if payload.probes_issued is not None:
                            wspan.set(
                                probes_issued=int(
                                    payload.probes_issued.sum()),
                                probes_skipped=int(
                                    payload.probes_skipped.sum()),
                            )
                payload.spans = export_events(local.events)
            else:
                payload = (self._shard_round_adaptive(
                    session_id, shard_id, radius, active, need)
                    if adaptive else self._shard_round(
                        session_id, shard_id, radius, active))
            self._note_round(shard_id, payload)
            payloads.append(payload)
        if payloads:
            payloads[0].metrics = self._counter_deltas()
        return payloads

    def _shard_round(self, session_id, shard_id, radius, active):
        """One shard's expand/cross/verify for one radius round."""
        shard = self._shards[shard_id]
        session = self._sessions[(session_id, shard_id)]
        started = time.perf_counter()
        scanned, pages = session.counter.expand(radius, active)
        io_pages = (pages if pages is not None
                    else np.zeros(active.size, dtype=np.int64))
        qpos, fresh = session.counter.crossings(self.config.l)
        dists = np.empty(fresh.size, dtype=np.float64)
        if fresh.size:
            bounds = np.searchsorted(qpos, np.arange(active.size + 1))
            for i in range(active.size):
                s, e = int(bounds[i]), int(bounds[i + 1])
                if e <= s:
                    continue
                ids = fresh[s:e]
                vecs, io = self._read(shard, ids)
                io_pages[i] += io
                dists[s:e] = shard.family.distance(
                    vecs, session.queries[active[i]])
                session.is_candidate[active[i], ids] = True
        return RoundPayload(
            shard_id=shard_id,
            qpos=qpos,
            ids=fresh + shard.offset,
            dists=dists,
            scanned=scanned,
            io_pages=io_pages,
            exhausted=session.counter.exhausted_mask(active),
            seconds=time.perf_counter() - started,
        )

    def _shard_round_adaptive(self, session_id, shard_id, radius, active,
                              need):
        """One shard's margin-ordered, chunked round with local early exit.

        The shard probes its tables most-promising-first (the same
        :func:`~repro.core.adaptive.probe_order` ranking the unsharded
        adaptive engine uses), ``chunks`` at a time, verifying each
        chunk's threshold-crossers as it goes. A query stops probing —
        and charges nothing for its remaining tables — once this shard's
        new candidates alone cover the query's global T2 deficit
        (``need["t2"]``): the coordinator adds at least these candidates,
        so its centralized T2 decision is guaranteed to fire this round.
        Global T1/T2/exhaustion/budget decisions all remain at the
        coordinator; the shard only ever cuts provably-redundant local
        work, shipping the per-query probe counts home on the payload.
        """
        shard = self._shards[shard_id]
        session = self._sessions[(session_id, shard_id)]
        probe = session.probe
        started = time.perf_counter()
        counter = session.counter
        m = session.qids.shape[1]
        A = active.size
        chunks = int(probe.get("chunks", 1)) \
            if probe.get("early_exit", True) else 1
        if probe.get("ordered", True) and chunks > 1:
            order = probe_order(probe["uids"][active],
                                session.qids[active], radius)
        else:
            order = np.broadcast_to(np.arange(m, dtype=np.int64), (A, m))
        bounds = _chunk_bounds(m, chunks)
        deficit = np.asarray(need["t2"], dtype=np.int64)

        scanned = np.zeros(A, dtype=np.int64)
        io_pages = np.zeros(A, dtype=np.int64)
        probes_issued = np.zeros(A, dtype=np.int64)
        probes_skipped = np.zeros(A, dtype=np.int64)
        new_count = np.zeros(A, dtype=np.int64)
        parts = [[] for _ in range(A)]
        round_pos = np.arange(A)
        for ci in range(len(bounds) - 1):
            if round_pos.size == 0:
                break
            lo_t, hi_t = int(bounds[ci]), int(bounds[ci + 1])
            sub = active[round_pos]
            if len(bounds) == 2:
                tables = None  # whole round: identical to classic expand
            else:
                tables = np.zeros((sub.size, m), dtype=bool)
                np.put_along_axis(tables, order[round_pos, lo_t:hi_t],
                                  True, axis=1)
            chunk_scanned, chunk_pages = counter.expand(radius, sub,
                                                        tables=tables)
            scanned[round_pos] += chunk_scanned
            if chunk_pages is not None:
                io_pages[round_pos] += chunk_pages
            probes_issued[round_pos] += hi_t - lo_t

            qpos_c, fresh = counter.crossings(self.config.l)
            if fresh.size:
                qb = np.searchsorted(qpos_c, np.arange(sub.size + 1))
                for i in range(sub.size):
                    s, e = int(qb[i]), int(qb[i + 1])
                    if e <= s:
                        continue
                    ids = fresh[s:e]
                    vecs, io = self._read(shard, ids)
                    pos = int(round_pos[i])
                    io_pages[pos] += io
                    parts[pos].append((
                        ids,
                        shard.family.distance(vecs,
                                              session.queries[sub[i]]),
                    ))
                    session.is_candidate[sub[i], ids] = True
                    new_count[pos] += ids.size

            if ci < len(bounds) - 2:
                fired = new_count[round_pos] >= deficit[round_pos]
                if np.any(fired):
                    probes_skipped[round_pos[fired]] += m - hi_t
                    round_pos = round_pos[~fired]

        qpos_parts, ids_parts, dists_parts = [], [], []
        for pos in range(A):
            for ids, dists in parts[pos]:
                qpos_parts.append(np.full(ids.size, pos, dtype=np.int64))
                ids_parts.append(ids)
                dists_parts.append(dists)
        qpos = (np.concatenate(qpos_parts) if qpos_parts
                else np.empty(0, dtype=np.int64))
        ids = (np.concatenate(ids_parts) if ids_parts
               else np.empty(0, dtype=np.int64))
        dists = (np.concatenate(dists_parts) if dists_parts
                 else np.empty(0, dtype=np.float64))
        return RoundPayload(
            shard_id=shard_id,
            qpos=qpos,
            ids=ids + shard.offset,
            dists=dists,
            scanned=scanned,
            io_pages=io_pages,
            exhausted=counter.exhausted_mask(active),
            seconds=time.perf_counter() - started,
            probes_issued=probes_issued,
            probes_skipped=probes_skipped,
        )

    def _note_round(self, shard_id, payload):
        """Fold one round's numbers into the host-local registry."""
        self.metrics.counter(f"shard.worker.{shard_id}.rounds").inc()
        self.metrics.counter(f"shard.worker.{shard_id}.io.pages").inc(
            int(payload.io_pages.sum()))
        self.metrics.counter(f"shard.worker.{shard_id}.candidates").inc(
            int(payload.ids.size))
        if payload.probes_issued is not None:
            self.metrics.counter(
                f"shard.worker.{shard_id}.probes.issued").inc(
                int(payload.probes_issued.sum()))
            self.metrics.counter(
                f"shard.worker.{shard_id}.probes.skipped").inc(
                int(payload.probes_skipped.sum()))

    def _counter_deltas(self):
        """Counter movement since the last report, or ``None``.

        Only deltas travel, so the coordinator can fold them into its own
        registry with plain ``inc()`` regardless of how many broadcasts a
        batch takes. Shard ids live in the metric *names*, keeping the
        merge trivially commutative across hosts.
        """
        deltas = {}
        for name, metric in self.metrics:
            if not isinstance(metric, Counter):
                continue
            prev = self._shipped.get(name, 0)
            if metric.value != prev:
                deltas[name] = metric.value - prev
                self._shipped[name] = metric.value
        return deltas or None

    def fallback_candidates(self, session_id, requests):
        """Best-counted unverified objects per query, for the global merge.

        ``requests`` maps query index → how many fallback candidates the
        coordinator may still take. Each shard returns its top slice under
        the unsharded fallback order — collision count descending, global
        id ascending — so the coordinator's k-way merge reproduces
        ``argsort(-counts, kind="stable")`` over the whole database.
        """
        self._chaos_step("fallback_candidates")
        out = {}
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            session = self._sessions[(session_id, shard_id)]
            per_query = {}
            for q, need in requests.items():
                remaining = np.flatnonzero(~session.is_candidate[q])
                if remaining.size == 0:
                    continue
                counts = session.counter.counts[q, remaining]
                order = np.argsort(-counts, kind="stable")[:int(need)]
                per_query[q] = (remaining[order] + shard.offset,
                                counts[order].astype(np.int64))
            out[shard_id] = per_query
        return out

    def fallback_verify(self, session_id, requests, collect=False):
        """Verify globally selected fallback ids; returns dists + I/O.

        ``requests`` maps shard id → {query → global ids}, each id list in
        the coordinator's merged order. Returns ``{"answers": {shard_id:
        {query: (dists, io)}}, "spans": [...], "metrics": {...}}`` —
        fallback verification reads real pages, so its spans and counter
        deltas travel exactly like round payloads do.
        """
        self._chaos_step("fallback_verify")
        out = {}
        spans = []
        for shard_id, per_query in requests.items():
            if collect:
                with tracing() as local:
                    with trace.span(
                        "shard.worker.fallback",
                        shard=shard_id,
                        pid=os.getpid(),
                        kernels=backend_name(),
                    ) as wspan:
                        answers = self._shard_fallback_verify(
                            session_id, shard_id, per_query)
                        pages = sum(io for _, io in answers.values())
                        wspan.set(pages=int(pages),
                                  queries=len(per_query))
                spans.extend(export_events(local.events))
            else:
                answers = self._shard_fallback_verify(
                    session_id, shard_id, per_query)
                pages = sum(io for _, io in answers.values())
            self.metrics.counter(
                f"shard.worker.{shard_id}.io.pages").inc(int(pages))
            out[shard_id] = answers
        return {"answers": out, "spans": spans,
                "metrics": self._counter_deltas()}

    def _shard_fallback_verify(self, session_id, shard_id, per_query):
        """Verify one shard's fallback ids; ``{query: (dists, io)}``."""
        shard = self._shards[shard_id]
        session = self._sessions[(session_id, shard_id)]
        answers = {}
        for q, gids in per_query.items():
            ids = np.asarray(gids, dtype=np.int64) - shard.offset
            vecs, io = self._read(shard, ids)
            answers[q] = (shard.family.distance(vecs,
                                                session.queries[q]), io)
        return answers

    def batch_end(self, session_id):
        """Drop the session's per-shard state."""
        self._chaos_step("batch_end")
        for shard_id in self._shards:
            self._sessions.pop((session_id, shard_id), None)
        return True

    # -- introspection -------------------------------------------------------

    def ping(self):
        """Heartbeat probe: identity and liveness of this host.

        Deliberately does *not* pass through the chaos site — a probe
        answering "alive" must mean the process can still run protocol
        steps, and the supervisor uses the response to decide whether a
        quiet worker is stuck or merely idle.
        """
        return {
            "pid": os.getpid(),
            "worker": self.config.worker_index,
            "shards": sorted(self._shards),
            "sessions": len(self._sessions),
            "kernels": backend_name(),
        }

    def io_totals(self):
        """Cumulative (reads, writes) per hosted shard."""
        return {sid: shard.io_totals()
                for sid, shard in self._shards.items()}

    def close(self):
        """Drop all shard state and detach the shared-memory view."""
        self._shards.clear()
        self._sessions.clear()
        self._full = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        return True

    @staticmethod
    def _read(shard, ids):
        """Data-file read returning (vectors, pages charged)."""
        if shard.pm is None:
            return shard.datafile.read(ids), 0
        before = shard.pm.stats.reads
        vecs = shard.datafile.read(ids)
        return vecs, shard.pm.stats.reads - before


# -- process-pool entry points (module-level for picklability) ---------------

_HOST = None


def _init_host(config):
    """ProcessPoolExecutor initializer: build this worker's ShardHost."""
    global _HOST
    _HOST = ShardHost(config)
    # Real process death on injected exits: the coordinator's supervisor
    # must see a broken pool, exactly as it would after an OOM kill.
    _HOST._subprocess = True


def _call_host(method, *args):
    """Dispatch one task to the process-global host."""
    return getattr(_HOST, method)(*args)
