"""External-memory substrate: simulated pages, bucket files, B+-tree, Z-order.

Everything cost-related in the repository funnels through
:class:`PageManager`, so C2LSH, LSB-forest and E2LSH are compared under one
identical I/O model (see DESIGN.md §7).
"""

from .btree import BPlusTree, LeafCursor
from .costmodel import HDD, NVME, SSD, DeviceProfile, estimate_seconds
from .datafile import LAYOUTS, DataFile
from .extsort import ExternalSorter, external_sort_pages
from .hashfile import ENTRY_BYTES, SortedHashTable
from .pages import DEFAULT_PAGE_SIZE, IOStats, PageManager
from .vsearch import row_searchsorted
from .zorder import code_words, deinterleave, interleave, llcp, sort_order

__all__ = [
    "PageManager",
    "IOStats",
    "DEFAULT_PAGE_SIZE",
    "SortedHashTable",
    "ENTRY_BYTES",
    "BPlusTree",
    "LeafCursor",
    "interleave",
    "deinterleave",
    "llcp",
    "sort_order",
    "code_words",
    "row_searchsorted",
    "ExternalSorter",
    "external_sort_pages",
    "DataFile",
    "LAYOUTS",
    "DeviceProfile",
    "HDD",
    "SSD",
    "NVME",
    "estimate_seconds",
]
