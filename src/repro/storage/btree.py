"""A bulk-loaded B+-tree over simulated pages.

Substrate for the LSB-forest baseline: each LSB-tree stores its points
sorted by Z-order key in a B+-tree and answers queries by one root-to-leaf
descent followed by a bidirectional leaf sweep. The tree here is static
(bulk-loaded once from sorted keys), which matches how LSB-forest builds its
index, and charges page reads to a :class:`repro.storage.pages.PageManager`:
one read per node on a descent, one read per *leaf* first touched by a
cursor. Because every page touch funnels through those charge calls
(sites ``"btree_descend"`` and ``"btree_leaf"``), a
:class:`repro.reliability.FaultInjector` attached to the page manager can
inject transient I/O errors or latency into descents without the tree
knowing about it.

Keys can be any totally ordered Python values; LSB uses tuples of uint64
words (left-aligned Z-order codes), for which tuple comparison equals
numeric code comparison.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

__all__ = ["BPlusTree", "LeafCursor"]


@dataclass
class _Leaf:
    keys: list
    values: list
    index: int  # leaf sequence number, left to right


@dataclass
class _Inner:
    # separators[i] = smallest key in children[i + 1]'s subtree
    separators: list
    children: list = field(default_factory=list)


class BPlusTree:
    """Static B+-tree bulk-loaded from sorted ``(key, value)`` pairs.

    Parameters
    ----------
    keys:
        Sorted (non-decreasing) sequence of comparable keys.
    values:
        Sequence of payloads, same length as ``keys``.
    leaf_capacity:
        Entries per leaf page.
    fanout:
        Children per inner node.
    page_manager:
        Optional page accounting; build writes are charged at construction.
    """

    def __init__(self, keys, values, leaf_capacity=64, fanout=64,
                 page_manager=None):
        keys = list(keys)
        values = list(values)
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if leaf_capacity < 1 or fanout < 2:
            raise ValueError(
                f"need leaf_capacity >= 1 and fanout >= 2, got "
                f"{leaf_capacity}, {fanout}"
            )
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("keys must be sorted for bulk loading")
        self.n = len(keys)
        self.leaf_capacity = int(leaf_capacity)
        self.fanout = int(fanout)
        self._pm = page_manager

        self.leaves = [
            _Leaf(keys[i:i + leaf_capacity], values[i:i + leaf_capacity],
                  index=i // leaf_capacity)
            for i in range(0, self.n, leaf_capacity)
        ] or [_Leaf([], [], index=0)]
        # Cumulative entry offsets per leaf for position arithmetic.
        self._leaf_starts = [i * leaf_capacity for i in range(len(self.leaves))]

        self.root, self.height = self._build_inner_levels()
        if self._pm is not None:
            self._pm.charge_write(self.node_count(), site="build")

    def _build_inner_levels(self):
        level = list(self.leaves)
        height = 1
        min_keys = [leaf.keys[0] if leaf.keys else None for leaf in level]
        while len(level) > 1:
            parents = []
            parent_min_keys = []
            for i in range(0, len(level), self.fanout):
                group = level[i:i + self.fanout]
                group_mins = min_keys[i:i + self.fanout]
                node = _Inner(separators=group_mins[1:], children=group)
                parents.append(node)
                parent_min_keys.append(group_mins[0])
            level = parents
            min_keys = parent_min_keys
            height += 1
        return level[0], height

    # -- structure accounting ------------------------------------------------

    def node_count(self):
        """Total pages (leaf + inner nodes) occupied by the tree."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Inner):
                stack.extend(node.children)
        return count

    def check_invariants(self):
        """Raise AssertionError if the tree structure is malformed."""
        # Leaves partition the key sequence in order and within capacity.
        flat = [k for leaf in self.leaves for k in leaf.keys]
        assert len(flat) == self.n, "leaf entries do not cover all keys"
        assert all(flat[i] <= flat[i + 1] for i in range(len(flat) - 1)), \
            "leaf keys out of order"
        for leaf in self.leaves[:-1]:
            assert len(leaf.keys) == self.leaf_capacity, \
                "only the last leaf may be partial in a bulk-loaded tree"
        # Inner separators route correctly.
        def walk(node):
            if isinstance(node, _Leaf):
                return (node.keys[0], node.keys[-1]) if node.keys else (None, None)
            assert 1 <= len(node.children) <= self.fanout, "fanout violated"
            assert len(node.separators) == len(node.children) - 1
            lows, highs = [], []
            for child in node.children:
                lo, hi = walk(child)
                lows.append(lo)
                highs.append(hi)
            for i, sep in enumerate(node.separators):
                assert sep == lows[i + 1], "separator must be child-subtree min"
                if highs[i] is not None:
                    assert highs[i] <= sep, "left subtree exceeds separator"
            return lows[0], highs[-1]

        walk(self.root)
        return True

    # -- queries -------------------------------------------------------------

    def search_position(self, key):
        """Global rank of the first entry with ``key_at(pos) >= key``.

        Charges one page read per node on the root-to-leaf path. Returns a
        position in ``[0, n]`` (``n`` when every key is smaller).
        """
        node = self.root
        while isinstance(node, _Inner):
            if self._pm is not None:
                self._pm.charge_read(1, site="btree_descend")
            # bisect_left keeps lower-bound semantics when duplicates span
            # children: on an exact separator match the first occurrence may
            # live at the end of the left subtree.
            child_idx = bisect.bisect_left(node.separators, key)
            node = node.children[child_idx]
        if self._pm is not None:
            self._pm.charge_read(1, site="btree_descend")
        slot = bisect.bisect_left(node.keys, key)
        # If the key exceeds everything in this leaf, leaf_start + len(keys)
        # is exactly the next leaf's start, so the global rank stays correct.
        return self._leaf_starts[node.index] + slot

    def key_at(self, pos):
        """Key stored at global position pos (no charging)."""
        leaf, slot = self._locate(pos)
        return leaf.keys[slot]

    def value_at(self, pos):
        """Payload stored at global position pos (no charging)."""
        leaf, slot = self._locate(pos)
        return leaf.values[slot]

    def leaf_index_of(self, pos):
        """Which leaf page holds global position ``pos``."""
        leaf, _ = self._locate(pos)
        return leaf.index

    def _locate(self, pos):
        if not (0 <= pos < self.n):
            raise IndexError(f"position {pos} out of range for n={self.n}")
        leaf = self.leaves[pos // self.leaf_capacity]
        return leaf, pos % self.leaf_capacity

    def cursor(self, pos):
        """A charging cursor anchored at global position ``pos``."""
        return LeafCursor(self, pos)

    def __len__(self):
        return self.n


class LeafCursor:
    """Sequential reader over leaf entries with per-leaf page charging.

    The first access to each distinct leaf costs one page read; subsequent
    entries on the same leaf are free, which models a buffered sequential
    sweep. Positions may run off either end (``peek`` returns ``None``).
    """

    def __init__(self, tree, pos):
        self._tree = tree
        self.pos = int(pos)
        self._charged_leaves = set()

    def valid(self):
        """Whether the cursor currently points inside the key sequence."""
        return 0 <= self.pos < self._tree.n

    def peek(self):
        """``(key, value)`` at the current position, or ``None`` if off-end."""
        if not self.valid():
            return None
        leaf, slot = self._tree._locate(self.pos)
        if leaf.index not in self._charged_leaves:
            self._charged_leaves.add(leaf.index)
            if self._tree._pm is not None:
                self._tree._pm.charge_read(1, site="btree_leaf")
        return leaf.keys[slot], leaf.values[slot]

    def advance(self, step):
        """Move by ``step`` (use +1 / -1 for bidirectional sweeps)."""
        self.pos += int(step)

    @property
    def leaves_touched(self):
        """Distinct leaf pages this cursor has charged."""
        return len(self._charged_leaves)
