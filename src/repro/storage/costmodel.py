"""Device cost model: from page counts to estimated seconds.

Page counts only matter because storage devices make them expensive — and
*how* expensive depends on the device. This module turns
:class:`repro.storage.IOStats` into estimated wall-clock time under
standard device profiles, which is how the 2012-era "C2LSH on spinning
disks" economics can be related to today's hardware.

A read/write is priced as ``latency + page_size / bandwidth``; sequential
accesses amortize the latency over a run (the caller says how sequential
its workload is via ``run_length``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .pages import DEFAULT_PAGE_SIZE

__all__ = ["DeviceProfile", "HDD", "SSD", "NVME", "estimate_seconds"]


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth of one storage device class.

    Attributes
    ----------
    name:
        Human-readable label.
    latency_s:
        Cost to start a random access (seek + rotational for disks,
        command overhead for flash).
    bandwidth_bps:
        Sustained transfer rate in bytes/second.
    """

    name: str
    latency_s: float
    bandwidth_bps: float

    def access_time(self, pages, page_size=DEFAULT_PAGE_SIZE, run_length=1):
        """Seconds to read/write ``pages`` pages in runs of ``run_length``.

        ``run_length = 1`` means fully random I/O (every page pays the
        latency); larger runs amortize it, approaching pure bandwidth.
        """
        if pages < 0:
            raise ValueError(f"pages must be non-negative, got {pages}")
        if run_length < 1:
            raise ValueError(f"run_length must be >= 1, got {run_length}")
        if pages == 0:
            return 0.0
        seeks = -(-pages // run_length)  # ceil
        return (seeks * self.latency_s
                + pages * page_size / self.bandwidth_bps)


#: A 7200-rpm disk of the paper's era: ~8 ms seek+rotation, ~100 MB/s.
HDD = DeviceProfile("hdd", latency_s=8e-3, bandwidth_bps=100e6)
#: A SATA SSD: ~80 us access, ~500 MB/s.
SSD = DeviceProfile("ssd", latency_s=8e-5, bandwidth_bps=500e6)
#: An NVMe drive: ~15 us access, ~3 GB/s.
NVME = DeviceProfile("nvme", latency_s=1.5e-5, bandwidth_bps=3e9)


def estimate_seconds(io_stats, device=HDD, page_size=DEFAULT_PAGE_SIZE,
                     read_run_length=1, write_run_length=64):
    """Estimated device time for an :class:`IOStats` tally.

    Reads default to random access (index probes and verifications are
    scattered); writes default to long sequential runs (index builds write
    files front to back).
    """
    return (device.access_time(io_stats.reads, page_size,
                               read_run_length)
            + device.access_time(io_stats.writes, page_size,
                                 write_run_length))
