"""Simulated layout of the raw-vector data file.

Verifying a candidate means reading its vector from the data file; what
that *costs* depends on how the file is laid out:

* ``"scattered"`` — the paper's model: every verified object is one random
  page read, regardless of which page it shares with other candidates.
  This is the default everywhere, keeping the repository's headline
  numbers on the published cost model.
* ``"id"`` — objects stored in id order, one batch read charged per
  *distinct page*: candidates that happen to share a page are read
  together.
* ``"zorder"`` — objects reordered along a Z-order space-filling curve
  over their (quantized) leading coordinates before being written, so
  spatially close objects share pages. LSH candidates are spatially close
  by construction, which is exactly when clustering the data file pays —
  the A5 layout ablation measures how much.
"""

from __future__ import annotations

import numpy as np

from .zorder import interleave, sort_order

__all__ = ["DataFile", "LAYOUTS"]

LAYOUTS = ("scattered", "id", "zorder")

#: Coordinates and bits used for the Z-order placement key.
_ZORDER_DIMS = 6
_ZORDER_BITS = 8


class DataFile:
    """Raw vectors plus a placement policy and page-charged reads.

    Parameters
    ----------
    data:
        ``(n, dim)`` float64 matrix (already validated by the caller).
    page_manager:
        Optional :class:`PageManager`; ``None`` disables charging.
    layout:
        One of :data:`LAYOUTS`.
    """

    def __init__(self, data, page_manager=None, layout="scattered"):
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {layout!r}; available: {LAYOUTS}"
            )
        self.data = data
        self.layout = layout
        self._pm = page_manager
        n, dim = data.shape
        self.entry_bytes = dim * 8
        if page_manager is not None:
            self._epp = page_manager.entries_per_page(self.entry_bytes)
            self._object_pages = max(
                1, page_manager.pages_for(1, self.entry_bytes))
            page_manager.charge_write(page_manager.pages_for(
                n, self.entry_bytes), site="build")
        else:
            self._epp = 1
            self._object_pages = 1
        if layout == "zorder":
            self._position = self._zorder_positions(data)
        else:
            # "id" and "scattered" both store objects in id order; they
            # differ only in how reads are charged.
            self._position = None

    @staticmethod
    def _zorder_positions(data):
        """Placement rank of each object along a Z-order curve."""
        dims = min(_ZORDER_DIMS, data.shape[1])
        coords = data[:, :dims]
        lo = coords.min(axis=0)
        span = coords.max(axis=0) - lo
        span[span == 0] = 1.0
        cells = np.floor(
            (coords - lo) / span * (2 ** _ZORDER_BITS - 1)
        ).astype(np.int64)
        codes = interleave(cells, _ZORDER_BITS)
        order = sort_order(codes)
        position = np.empty(data.shape[0], dtype=np.int64)
        position[order] = np.arange(data.shape[0])
        return position

    @property
    def pages(self):
        """Pages the data file occupies."""
        if self._pm is None:
            raise RuntimeError("data file was created without a page manager")
        return self._pm.pages_for(self.data.shape[0], self.entry_bytes)

    def read(self, ids):
        """Vectors for ``ids``, charging reads per the layout policy.

        ``scattered`` charges ``object_pages`` per id; ``id``/``zorder``
        charge one read per *distinct* page touched by the batch. When
        the page manager carries a fault injector, the charge is
        retry-guarded and the returned block passes through the
        injector's ``data_read`` corruption rules.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._pm is not None and ids.size:
            if self.layout == "scattered":
                self._pm.charge_read(self._object_pages * ids.size,
                                     site="data_read")
            else:
                slots = ids if self._position is None \
                    else self._position[ids]
                distinct = np.unique(slots // self._epp).size
                self._pm.charge_read(
                    max(distinct, distinct * self._object_pages),
                    site="data_read")
        vectors = self.data[ids]
        if self._pm is not None and self._pm.fault_injector is not None \
                and ids.size:
            vectors = self._pm.fault_injector.corrupt("data_read", vectors)
        return vectors

    def sequential_scan(self):
        """The whole matrix, charged as one sequential sweep."""
        if self._pm is not None:
            self._pm.charge_sequential_read(self.data.shape[0],
                                            self.entry_bytes,
                                            site="data_scan")
        return self.data

    def __repr__(self):
        return (f"DataFile(n={self.data.shape[0]}, "
                f"dim={self.data.shape[1]}, layout={self.layout!r})")
