"""External merge sort with page accounting.

Building C2LSH's m sorted bucket files over an out-of-core dataset is an
external sort per hash table; the build-I/O column of the index table needs
its cost. This module implements the classic run-formation + k-way-merge
pipeline *structurally* — real runs, real merge passes, real page charges —
while the in-memory work inside each step uses numpy (this is a simulator:
the I/O counts are exact for the modeled pipeline, the CPU work is not the
object of study).

Cost recap (N data pages, M memory pages, fan-in F = M - 1):
run formation reads + writes N pages in runs of M; each merge pass reads
and writes N pages; ``ceil(log_F(ceil(N/M)))`` passes. ``sorted_order``
verifies against ``numpy.argsort`` in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from .hashfile import ENTRY_BYTES

__all__ = ["ExternalSorter", "external_sort_pages"]


def external_sort_pages(n_entries, page_manager, memory_pages=64,
                        entry_bytes=ENTRY_BYTES):
    """Analytic page I/O of externally sorting ``n_entries`` entries.

    Returns total pages (reads + writes) without charging anything.
    """
    if memory_pages < 2:
        raise ValueError(f"need at least 2 memory pages, got {memory_pages}")
    n_pages = page_manager.pages_for(n_entries, entry_bytes)
    if n_pages <= memory_pages:
        return 2 * n_pages  # single in-memory run: read once, write once
    n_runs = math.ceil(n_pages / memory_pages)
    fan_in = memory_pages - 1
    passes = math.ceil(math.log(n_runs, fan_in)) if fan_in > 1 else n_runs
    return 2 * n_pages * (1 + passes)


class ExternalSorter:
    """Sorts integer key arrays through a simulated memory budget.

    Parameters
    ----------
    page_manager:
        Charged for every run/merge read and write.
    memory_pages:
        Simulated buffer-pool size; runs hold ``memory_pages`` pages and
        merges use fan-in ``memory_pages - 1``.
    entry_bytes:
        On-disk entry size.
    """

    def __init__(self, page_manager, memory_pages=64,
                 entry_bytes=ENTRY_BYTES):
        if memory_pages < 2:
            raise ValueError(
                f"need at least 2 memory pages, got {memory_pages}"
            )
        self._pm = page_manager
        self.memory_pages = int(memory_pages)
        self.entry_bytes = int(entry_bytes)
        self.passes = 0  # merge passes performed by the last sort()

    @property
    def _run_entries(self):
        return self.memory_pages * self._pm.entries_per_page(self.entry_bytes)

    def _charge_pass(self, n_entries):
        pages = self._pm.pages_for(n_entries, self.entry_bytes)
        self._pm.charge_read(pages)
        self._pm.charge_write(pages)

    def sorted_order(self, keys):
        """Stable order (as ``argsort``) of ``keys``, with external-sort I/O.

        The returned permutation is exactly ``np.argsort(keys, kind='stable')``;
        what differs from an in-memory sort is the page traffic charged to
        the manager.
        """
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        n = keys.shape[0]
        self.passes = 0
        if n == 0:
            return np.empty(0, dtype=np.int64)

        # Run formation: read input, write sorted runs.
        run_entries = self._run_entries
        self._charge_pass(n)
        runs = []
        for start in range(0, n, run_entries):
            idx = np.arange(start, min(start + run_entries, n))
            order = idx[np.argsort(keys[idx], kind="stable")]
            runs.append(order)

        # Merge passes with fan-in memory_pages - 1.
        fan_in = max(2, self.memory_pages - 1)
        while len(runs) > 1:
            self._charge_pass(n)
            self.passes += 1
            merged = []
            for start in range(0, len(runs), fan_in):
                group = runs[start:start + fan_in]
                ids = np.concatenate(group)
                order = np.argsort(keys[ids], kind="stable")
                merged.append(ids[order])
            runs = merged
        return runs[0].astype(np.int64)
