"""Disk layout of a single C2LSH hash table.

One hash table per LSH function, stored as the list of ``(bucket_id,
object_id)`` entries sorted by bucket id. Because virtual rehashing turns a
radius-``R`` lookup into a *range* of ``R`` consecutive base buckets, a
sorted file supports every radius with one binary search (the directory) and
one sequential scan — this is exactly why C2LSH needs no physical rehash.

The bucket-id column doubles as the in-memory directory: position lookups
are free (the directory is assumed cached, as in the paper), while entry
scans are charged to the :class:`repro.storage.pages.PageManager`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SortedHashTable", "ENTRY_BYTES"]

#: Bytes per hash-table entry: 8-byte bucket id + 4-byte object id.
ENTRY_BYTES = 12


class SortedHashTable:
    """One LSH function's bucket file, sorted by bucket id.

    Parameters
    ----------
    bucket_ids:
        Shape ``(n,)`` int64 array; ``bucket_ids[i]`` is object ``i``'s base
        bucket under this table's hash function.
    page_manager:
        Optional :class:`PageManager` to charge build/scan I/O to. When
        ``None`` the table runs in pure in-memory mode (no accounting).
    entry_bytes:
        On-disk size of one entry (default :data:`ENTRY_BYTES`).
    """

    def __init__(self, bucket_ids, page_manager=None, entry_bytes=ENTRY_BYTES):
        bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
        if bucket_ids.ndim != 1:
            raise ValueError("bucket_ids must be one-dimensional")
        self.n = bucket_ids.shape[0]
        self._order = np.argsort(bucket_ids, kind="stable").astype(np.int64)
        self._sorted_ids = bucket_ids[self._order]
        self._pm = page_manager
        self._entry_bytes = int(entry_bytes)
        if self._pm is not None:
            # Building the table writes the whole entry file once.
            self._pm.charge_write(self._pm.pages_for(self.n, self._entry_bytes))

    @property
    def min_bucket(self):
        """Smallest bucket id present (0 for an empty table)."""
        return int(self._sorted_ids[0]) if self.n else 0

    @property
    def max_bucket(self):
        """Largest bucket id present (-1 for an empty table)."""
        return int(self._sorted_ids[-1]) if self.n else -1

    def interval_positions(self, lo_id, hi_id):
        """Positions ``[lo, hi)`` of entries with bucket id in ``[lo_id, hi_id)``.

        Pure directory lookup — not charged.
        """
        if hi_id < lo_id:
            raise ValueError(f"empty-interval bounds reversed: [{lo_id}, {hi_id})")
        lo = int(np.searchsorted(self._sorted_ids, lo_id, side="left"))
        hi = int(np.searchsorted(self._sorted_ids, hi_id, side="left"))
        return lo, hi

    def read_positions(self, lo, hi, charge=True):
        """Object ids stored at sorted positions ``[lo, hi)``.

        Charges a sequential scan of the range (at least one page — locating
        the range lands on its first data page) when ``charge`` is true and a
        page manager is attached; empty ranges are free.
        """
        if not (0 <= lo <= hi <= self.n):
            raise IndexError(f"positions [{lo}, {hi}) out of range for n={self.n}")
        if charge and self._pm is not None and hi > lo:
            self._pm.charge_bucket_scans([hi - lo], self._entry_bytes)
        return self._order[lo:hi]

    def scan_bucket_range(self, lo_id, hi_id, charge=True):
        """Object ids whose bucket id lies in ``[lo_id, hi_id)``."""
        lo, hi = self.interval_positions(lo_id, hi_id)
        return self.read_positions(lo, hi, charge=charge)

    def storage_pages(self, page_manager=None):
        """Pages occupied by this table's entry file."""
        pm = page_manager or self._pm
        if pm is None:
            raise ValueError("no page manager available for sizing")
        return pm.pages_for(self.n, self._entry_bytes)

    def __len__(self):
        return self.n

    def __repr__(self):
        return f"SortedHashTable(n={self.n}, entry_bytes={self._entry_bytes})"
