"""Page-based storage cost model.

C2LSH was published as an external-memory method: its headline efficiency
metric is the number of 4-KiB pages read per query. This module provides a
single accounting object, :class:`PageManager`, that every index in the
repository charges its page accesses to, so all methods are measured under
one identical cost model:

* scanning ``s`` consecutive entries of ``entry_bytes`` each costs
  ``ceil(s / entries_per_page)`` sequential page reads;
* locating a bucket / descending one B-tree node costs one page read;
* verifying one data object (reading its raw vector) costs
  ``pages_for(1, dim * 8)`` random page reads (one page unless the vector is
  larger than a page).

The pages themselves are simulated — data lives in memory — but the counts
are exact for the modeled layout.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..obs import trace as _trace

__all__ = ["IOStats", "PageManager", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Cumulative page-access counters."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self):
        """Reads plus writes."""
        return self.reads + self.writes

    def copy(self):
        """An independent copy of the counters."""
        return IOStats(reads=self.reads, writes=self.writes)

    def __sub__(self, other):
        return IOStats(reads=self.reads - other.reads,
                       writes=self.writes - other.writes)


class PageManager:
    """Charges and accumulates page I/O under a fixed page size.

    ``fault_injector`` optionally attaches a
    :class:`repro.reliability.FaultInjector`: every charge call then
    consults the injector's retry-guarded fault check for its site
    before the pages are counted, so latency and transient-error rules
    fire exactly where the modeled I/O happens. Charges are counted only
    for operations that (eventually) succeed; retries are recorded in
    the injector's metrics registry, not in :attr:`stats`.

    ``page_latency_s`` turns the accounting model into a *timing* model:
    every charged page blocks the charging thread for that many seconds,
    simulating the device the paper's cost model assumes (data on paged
    storage rather than RAM). The charge is per page, so a round that
    scans 50 pages stalls 50x longer than one scanning a single page —
    which is exactly the property that makes page counts the right
    efficiency metric. Because the stall happens in whichever *process*
    charges the I/O, shards on separate workers overlap their device
    waits; this is what sharded wall-clock benchmarks measure.
    """

    def __init__(self, page_size=DEFAULT_PAGE_SIZE, fault_injector=None,
                 page_latency_s=0.0):
        if page_size < 16:
            raise ValueError(f"page size unreasonably small: {page_size}")
        if page_latency_s < 0:
            raise ValueError(
                f"page latency must be non-negative, got {page_latency_s}"
            )
        self.page_size = int(page_size)
        self.page_latency_s = float(page_latency_s)
        self.stats = IOStats()
        self.fault_injector = fault_injector

    def entries_per_page(self, entry_bytes):
        """How many fixed-size entries fit on one page (at least 1)."""
        if entry_bytes <= 0:
            raise ValueError(f"entry size must be positive, got {entry_bytes}")
        return max(1, self.page_size // int(entry_bytes))

    def pages_for(self, n_entries, entry_bytes):
        """Pages needed to store ``n_entries`` entries contiguously."""
        if n_entries < 0:
            raise ValueError(f"entry count must be non-negative, got {n_entries}")
        if n_entries == 0:
            return 0
        return math.ceil(n_entries / self.entries_per_page(entry_bytes))

    def charge_read(self, pages=1, site=None):
        """Record page reads; ``site`` names the charging call site.

        When a :mod:`repro.obs` trace is active, the charge is also
        reported as an I/O event attributed to ``site`` (default
        ``"unattributed"``) and to the currently open span.
        """
        if pages < 0:
            raise ValueError("cannot charge a negative number of page reads")
        if self.fault_injector is not None:
            self.fault_injector.guard(site or "unattributed")
        if self.page_latency_s and pages:
            time.sleep(int(pages) * self.page_latency_s)
        self.stats.reads += int(pages)
        trace = _trace.current()
        if trace is not None:
            trace.record_io("read", int(pages), site or "unattributed")

    def charge_write(self, pages=1, site=None):
        """Record page writes; ``site`` names the charging call site."""
        if pages < 0:
            raise ValueError("cannot charge a negative number of page writes")
        if self.fault_injector is not None:
            self.fault_injector.guard(site or "unattributed")
        if self.page_latency_s and pages:
            time.sleep(int(pages) * self.page_latency_s)
        self.stats.writes += int(pages)
        trace = _trace.current()
        if trace is not None:
            trace.record_io("write", int(pages), site or "unattributed")

    def charge_sequential_read(self, n_entries, entry_bytes, site=None):
        """Charge a sequential scan of ``n_entries`` entries; returns pages."""
        pages = self.pages_for(n_entries, entry_bytes)
        self.charge_read(pages, site=site)
        return pages

    def bucket_scan_pages(self, entry_counts, entry_bytes):
        """Per-scan page costs of bucket-range scans, without charging.

        Locating a non-empty range lands on its first data page, so each
        positive count costs ``max(1, ceil(count / entries_per_page))``
        pages; zero counts are free. This is *the* bucket cost formula —
        every index in the repository routes range scans through it (via
        :meth:`charge_bucket_scans`) so the methods stay comparable; the
        batch query engine uses the uncharged form to attribute one global
        charge back to individual queries.
        """
        counts = np.asarray(entry_counts, dtype=np.int64)
        if np.any(counts < 0):
            raise ValueError("entry counts must be non-negative")
        epp = self.entries_per_page(entry_bytes)
        return np.maximum(1, -(-counts // epp)) * (counts > 0)

    def charge_bucket_scans(self, entry_counts, entry_bytes,
                            site="bucket_scan"):
        """Charge one bucket-range scan per count; returns total pages.

        See :meth:`bucket_scan_pages` for the per-scan cost formula.
        """
        pages = int(self.bucket_scan_pages(entry_counts, entry_bytes).sum())
        self.charge_read(pages, site=site)
        return pages

    def snapshot(self):
        """A copy of the counters, for before/after differencing."""
        return self.stats.copy()

    def since(self, snapshot):
        """I/O accumulated since ``snapshot`` was taken."""
        return self.stats - snapshot

    def reset(self):
        """Zero all counters."""
        self.stats = IOStats()

    def __repr__(self):
        return (f"PageManager(page_size={self.page_size}, "
                f"reads={self.stats.reads}, writes={self.stats.writes})")
