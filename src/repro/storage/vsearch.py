"""Vectorized row-wise binary search.

``numpy.searchsorted`` only handles one sorted array at a time; C2LSH and
QALSH need *m* simultaneous lookups, one per hash table, every radius step.
``row_searchsorted`` runs all m binary searches in lockstep, which is what
keeps queries fast (the repro band's "hashing loops slow without C
extensions" warning).

The search also batches across *queries*: passing a ``(Q, m)`` target
matrix runs all ``Q * m`` lookups against the shared ``(m, n)`` sorted rows
together, which is the primitive the lockstep batch query engine
(:mod:`repro.core.batchengine`) is built on.

The implementation lives in the kernel tier (:mod:`repro.kernels`): the
pure-numpy fallback runs all searches with ``O(log n)`` vectorized passes,
the numba tier compiles the per-key bisection loops; both produce
identical positions (the search performs only comparisons, never
arithmetic on the values). This module remains the public entry point.
"""

from __future__ import annotations

from ..kernels import row_searchsorted

__all__ = ["row_searchsorted"]
