"""Vectorized row-wise binary search.

``numpy.searchsorted`` only handles one sorted array at a time; C2LSH and
QALSH need *m* simultaneous lookups, one per hash table, every radius step.
``row_searchsorted`` runs all m binary searches in lockstep with
``O(log n)`` vectorized passes, which is what keeps pure-numpy queries fast
(the repro band's "hashing loops slow without C extensions" warning).

The search also batches across *queries*: passing a ``(Q, m)`` target
matrix runs all ``Q * m`` lookups against the shared ``(m, n)`` sorted rows
in the same ``O(log n)`` passes, which is the primitive the lockstep batch
query engine (:mod:`repro.core.batchengine`) is built on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_searchsorted"]


def row_searchsorted(sorted_rows, targets, side="left"):
    """Insertion positions of ``targets[..., i]`` within ``sorted_rows[i]``.

    Parameters
    ----------
    sorted_rows:
        ``(m, n)`` array, each row sorted ascending.
    targets:
        ``(m,)`` array of per-row search keys, or ``(..., m)`` — most
        usefully ``(Q, m)`` — to search every row with a whole batch of
        keys at once. Row ``i`` always answers ``targets[..., i]``.
    side:
        ``"left"`` (first position with ``row[pos] >= target``) or
        ``"right"`` (first position with ``row[pos] > target``), matching
        ``numpy.searchsorted`` semantics.

    Returns
    -------
    numpy.ndarray of int64, same shape as ``targets``, values in ``[0, n]``.
    """
    sorted_rows = np.asarray(sorted_rows)
    targets = np.asarray(targets)
    if sorted_rows.ndim != 2:
        raise ValueError(f"sorted_rows must be 2-D, got {sorted_rows.shape}")
    m, n = sorted_rows.shape
    if targets.ndim == 0 or targets.shape[-1] != m:
        raise ValueError(
            f"targets must have shape (..., {m}), got {targets.shape}"
        )
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")

    if n == 0:
        return np.zeros(targets.shape, dtype=np.int64)
    lo = np.zeros(targets.shape, dtype=np.int64)
    hi = np.full(targets.shape, n, dtype=np.int64)
    rows = np.arange(m)  # broadcasts over any leading target axes
    # Invariant: per key the answer lies in [lo, hi]; each pass halves the
    # active ranges. Converged keys (lo == hi) may hold lo == n, so probe a
    # clamped index and mask their updates out.
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        vals = sorted_rows[rows, np.minimum(mid, n - 1)]
        if side == "left":
            go_right = vals < targets
        else:
            go_right = vals <= targets
        lo = np.where(active & go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    return lo
