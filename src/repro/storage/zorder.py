"""Z-order (Morton) codes over multi-word bitstrings.

The LSB-tree baseline (Tao et al., SIGMOD 2009) interleaves the bits of
``m`` quantized hash values of ``u`` bits each into a single ``m * u``-bit
key, and ranks points by the Length of the Longest Common Prefix (LLCP)
between keys. Keys routinely exceed 64 bits, so codes are represented as
``(n, n_words)`` arrays of ``uint64`` words, **left-aligned**: bit ``t`` of
the conceptual bitstring (``t = 0`` is the most significant bit) lives in
word ``t // 64`` at bit position ``63 - t % 64``. Left alignment makes the
lexicographic order of word tuples equal to the numeric order of the codes
and makes LLCP computation uniform across words.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interleave",
    "deinterleave",
    "llcp",
    "sort_order",
    "code_words",
]


def code_words(m, u):
    """Number of 64-bit words needed for an ``m * u``-bit code."""
    _check_dims(m, u)
    return (m * u + 63) // 64


def _check_dims(m, u):
    if m < 1 or u < 1:
        raise ValueError(f"need m >= 1 and u >= 1, got m={m}, u={u}")


def interleave(values, u):
    """Interleave ``(n, m)`` non-negative ints of ``u`` bits into Morton codes.

    Bit layout: the output code is ``v0[u-1], v1[u-1], ..., v_{m-1}[u-1],
    v0[u-2], ...`` — one bit from each value per round, most significant
    round first, so a long common prefix means agreement in the high bits of
    *all* coordinates (the LSB-tree cell structure).

    Returns an ``(n, n_words)`` uint64 array, left-aligned.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"values must have shape (n, m), got {values.shape}")
    n, m = values.shape
    _check_dims(m, u)
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    if np.any(values >> u != 0):
        raise ValueError(f"values do not fit in u={u} bits")
    values = values.astype(np.uint64)
    total_bits = m * u
    words = np.zeros((n, code_words(m, u)), dtype=np.uint64)
    for t in range(total_bits):
        j = t % m
        src_bit = np.uint64(u - 1 - t // m)
        bit = (values[:, j] >> src_bit) & np.uint64(1)
        shift = np.uint64(63 - t % 64)
        words[:, t // 64] |= bit << shift
    return words


def deinterleave(codes, m, u):
    """Invert :func:`interleave`; returns an ``(n, m)`` int64 array."""
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 2 or codes.shape[1] != code_words(m, u):
        raise ValueError(
            f"codes must have shape (n, {code_words(m, u)}), got {codes.shape}"
        )
    n = codes.shape[0]
    values = np.zeros((n, m), dtype=np.uint64)
    for t in range(m * u):
        j = t % m
        src_bit = np.uint64(u - 1 - t // m)
        shift = np.uint64(63 - t % 64)
        bit = (codes[:, t // 64] >> shift) & np.uint64(1)
        values[:, j] |= bit << src_bit
    return values.astype(np.int64)


def _clz64(x):
    """Vectorized count-leading-zeros for uint64 (returns 64 for zero)."""
    x = np.asarray(x, dtype=np.uint64).copy()
    clz = np.zeros(x.shape, dtype=np.int64)
    for k in (32, 16, 8, 4, 2, 1):
        y = x >> np.uint64(k)
        stuck = y == 0
        clz += np.where(stuck, k, 0)
        x = np.where(stuck, x, y)
    clz = np.where(x == 0, 64, clz)
    return clz


def llcp(codes, query_code, total_bits):
    """Length of the longest common prefix of each code with ``query_code``.

    Parameters
    ----------
    codes:
        ``(n, n_words)`` uint64 codes.
    query_code:
        ``(n_words,)`` uint64 code.
    total_bits:
        Meaningful bit length ``m * u`` (results are clipped to it).

    Returns
    -------
    numpy.ndarray of int64, shape ``(n,)``.
    """
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint64))
    query_code = np.asarray(query_code, dtype=np.uint64).ravel()
    if codes.shape[1] != query_code.shape[0]:
        raise ValueError(
            f"word-count mismatch: codes have {codes.shape[1]}, "
            f"query has {query_code.shape[0]}"
        )
    xor = codes ^ query_code
    nonzero = xor != 0
    # Index of the first differing word; rows with no difference get 0 from
    # argmax but are fixed up below.
    first = np.argmax(nonzero, axis=1)
    any_diff = nonzero.any(axis=1)
    diff_words = xor[np.arange(xor.shape[0]), first]
    result = first * 64 + _clz64(diff_words)
    result[~any_diff] = total_bits
    return np.minimum(result, total_bits)


def sort_order(codes):
    """Indices that sort codes lexicographically (ascending numeric order)."""
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 2:
        raise ValueError("codes must have shape (n, n_words)")
    # numpy.lexsort treats the *last* key as primary, so feed words reversed.
    return np.lexsort(tuple(codes[:, w] for w in range(codes.shape[1] - 1, -1, -1)))
