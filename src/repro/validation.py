"""Shared input validation for every index in the repository.

All six index classes accept the same two shapes — an ``(n, dim)`` data
matrix at fit time and a ``(dim,)`` query vector — and all of them break in
confusing ways on NaN/inf coordinates (``floor(nan)`` buckets, distances
that never satisfy any threshold). Validating once, here, keeps the error
messages identical everywhere and the checks impossible to forget.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_data_matrix", "as_query_matrix", "as_query_vector",
           "require_finite"]


def require_finite(array, name):
    """Raise ``ValueError`` if the array holds NaN or infinity."""
    if not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise ValueError(
            f"{name} contains {bad} non-finite (NaN/inf) value(s); "
            "LSH bucket ids and distances are undefined for them"
        )
    return array


def as_data_matrix(data, name="data"):
    """Validate and normalize fit-time input to contiguous float64.

    Requires a non-empty 2-D matrix of finite values.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
        raise ValueError(
            f"{name} must be a non-empty (n, dim) matrix, got shape "
            f"{data.shape}"
        )
    return require_finite(data, name)


def as_query_vector(query, dim, name="query"):
    """Validate and normalize one query to a finite float64 ``(dim,)``."""
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (dim,):
        raise ValueError(
            f"{name} must have shape ({dim},), got {query.shape}"
        )
    return require_finite(query, name)


def as_query_matrix(queries, dim, name="queries"):
    """Validate a ``(q, dim)`` query batch with per-row finiteness errors.

    The batch analogue of :func:`as_query_vector`: a NaN/inf coordinate
    is reported against the specific offending row (``queries[3]
    contains ...``), exactly as the sequential path reports it for the
    single query, rather than as an opaque whole-matrix failure.
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != dim:
        raise ValueError(
            f"{name} must have shape (q, {dim}), got {queries.shape}"
        )
    finite = np.isfinite(queries)
    if not finite.all():
        row = int(np.flatnonzero(~finite.all(axis=1))[0])
        require_finite(queries[row], f"{name}[{row}]")
    return queries
