"""Shared fixtures for the test suite.

Datasets are deliberately small (hundreds to a few thousand points) so the
whole suite stays fast; statistical assertions use generous tolerances and
fixed seeds so they are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_clusters, split_queries


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def clustered():
    """A small clustered dataset plus 10 held-out queries."""
    raw = gaussian_clusters(1510, dim=20, n_clusters=8, cluster_std=1.0,
                            spread=12.0, seed=7)
    data, queries = split_queries(raw, 10, seed=8)
    return data, queries


@pytest.fixture(scope="session")
def tiny():
    """A tiny dataset where exact answers are easy to eyeball."""
    rng = np.random.default_rng(3)
    data = rng.standard_normal((200, 8))
    queries = rng.standard_normal((5, 8))
    return data, queries
