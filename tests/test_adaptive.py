"""Adaptive probing: classic-oracle parity plus its own invariants.

The adaptive engine's contract has two halves. With the early exits
disabled (``chunks=1, start_estimate=False``) it must be *bit-identical*
to the classic oracle — same ids, distances, stats, page charges — on
every path (sequential, batch, sharded). With the defaults on, it must
preserve the result contract (exact verified distances, sorted, valid
unique ids, full result size) while reading strictly fewer pages, and
its probe accounting must balance. Adversarial datasets (duplicates,
ties, single queries, empty batches) are pinned by a Hypothesis
property; chaos cases reuse the ``REPRO_CHAOS_SEED`` convention from
the reliability suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveConfig,
    C2LSH,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PageManager,
    QueryBudget,
    RetryPolicy,
    ShardedC2LSH,
)
from repro.core import explain, tune_c2lsh
from repro.core.adaptive import (
    _chunk_bounds,
    as_probe_config,
    check_adaptive_supported,
    collide_levels,
    estimate_start_levels,
    merge_start_levels,
    occupancy_table,
    probe_order,
    saturation_level,
)
from repro.core.explain import QueryExplanation, explain_sharded
from repro.data import exact_knn
from repro.hashing import SignRandomProjectionFamily

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

EXACT = AdaptiveConfig(chunks=1, start_estimate=False)

STAT_FIELDS = ("rounds", "final_radius", "candidates", "scanned_entries",
               "terminated_by", "io_reads")


def build(data, seed=0, **kwargs):
    return C2LSH(seed=seed, page_manager=PageManager(), **kwargs).fit(data)


def assert_bit_equal(classic, adaptive):
    assert len(classic) == len(adaptive)
    for i, (s, a) in enumerate(zip(classic, adaptive)):
        assert np.array_equal(s.ids, a.ids), f"query {i}: ids differ"
        assert np.array_equal(s.distances, a.distances), \
            f"query {i}: distances differ"
        for field in STAT_FIELDS:
            assert getattr(s.stats, field) == getattr(a.stats, field), \
                f"query {i}: stats.{field} differs"


def assert_contract(result, data, query, k):
    """The result-shape contract every probing mode must preserve."""
    n = data.shape[0]
    assert result.ids.size == min(k, n)
    assert result.ids.size == result.distances.size
    assert np.unique(result.ids).size == result.ids.size
    assert np.all((result.ids >= 0) & (result.ids < n))
    assert np.all(np.diff(result.distances) >= 0)
    exact = np.linalg.norm(data[result.ids] - query, axis=1)
    np.testing.assert_allclose(result.distances, exact)


# -- probe argument handling -------------------------------------------------


class TestProbeArg:
    def test_normalization(self):
        assert as_probe_config(None) is None
        assert as_probe_config("classic") is None
        assert as_probe_config("adaptive") == AdaptiveConfig()
        cfg = AdaptiveConfig(chunks=4)
        assert as_probe_config(cfg) is cfg

    def test_bad_probe_rejected(self, tiny):
        data, queries = tiny
        index = build(data)
        with pytest.raises(ValueError, match="probe"):
            index.query(queries[0], probe="fast")
        with pytest.raises(ValueError, match="probe"):
            as_probe_config(7)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="chunks"):
            AdaptiveConfig(chunks=0)
        with pytest.raises(ValueError, match="provisional_min_frac"):
            AdaptiveConfig(provisional_min_frac=0.0)
        with pytest.raises(ValueError, match="provisional_pool_mult"):
            AdaptiveConfig(provisional_pool_mult=0.5)

    def test_nonrehashable_family_rejected(self, tiny):
        data, queries = tiny
        index = C2LSH(family=SignRandomProjectionFamily(data.shape[1]),
                      seed=1).fit(data)
        index.query(queries[0], k=2)  # classic path still fine
        with pytest.raises(ValueError, match="rehashable"):
            index.query(queries[0], k=2, probe="adaptive")

    def test_recount_ablation_rejected(self, tiny):
        data, queries = tiny
        index = build(data, incremental=False)
        index.query(queries[0], k=2)  # classic path still fine
        with pytest.raises(ValueError, match="incremental"):
            index.query_batch(queries, k=2, probe="adaptive")

    def test_supported_check_is_direct(self, tiny):
        data, _ = tiny
        index = build(data)
        check_adaptive_supported(index._funcs)  # no raise
        with pytest.raises(ValueError, match="incremental"):
            check_adaptive_supported(index._funcs, incremental=False)


# -- estimator ---------------------------------------------------------------


class TestEstimator:
    def _qids(self, index, queries):
        return index._funcs.hash(index._hash_view(queries))

    def test_collide_levels_match_bruteforce(self, tiny):
        data, queries = tiny
        index = build(data)
        counter = index._counter
        qids = self._qids(index, queries)
        got = collide_levels(counter, qids, index.params.c)
        sat = saturation_level(counter.id_span, index.params.c)
        for qi in range(qids.shape[0]):
            for t in range(counter.m):
                ids = counter.sorted_ids[t]
                level, radius = 0, 1
                while level < sat:
                    anchor = (qids[qi, t] // radius) * radius
                    if np.any((ids >= anchor) & (ids < anchor + radius)):
                        break
                    level += 1
                    radius *= index.params.c
                assert got[qi, t] == level

    def test_occupancy_table_matches_bruteforce(self, tiny):
        data, queries = tiny
        index = build(data)
        counter = index._counter
        qids = self._qids(index, queries)
        c = index.params.c
        occ = occupancy_table(counter, qids, c)
        sat = saturation_level(counter.id_span, c)
        assert occ.shape == (qids.shape[0], sat + 1)
        for qi in range(qids.shape[0]):
            radius = 1
            for level in range(sat + 1):
                total = 0
                for t in range(counter.m):
                    ids = counter.sorted_ids[t]
                    if radius >= 2 * (counter.id_span + 1):
                        total += ids.size
                    else:
                        anchor = (qids[qi, t] // radius) * radius
                        total += int(np.sum((ids >= anchor)
                                            & (ids < anchor + radius)))
                assert occ[qi, level] == total
                radius *= c
        # Saturation column covers everything, and occupancy only grows.
        assert np.all(occ[:, -1] == counter.m * counter.n)
        assert np.all(np.diff(occ, axis=1) >= 0)

    def test_start_levels_are_sound(self, tiny):
        """Below the start level no object can cross the threshold."""
        data, queries = tiny
        index = build(data)
        counter = index._counter
        params = index.params
        qids = self._qids(index, queries)
        k = 3
        levels = estimate_start_levels(counter, qids, params.l, params.c,
                                       k=k)
        coll = collide_levels(counter, qids, params.c)
        occ = occupancy_table(counter, qids, params.c)
        for qi in range(qids.shape[0]):
            for t in range(int(levels[qi])):
                nonempty = int(np.sum(coll[qi] <= t))
                # Either not enough non-empty buckets for any object to
                # collect l collisions, or the total occupancy cannot
                # hold k threshold-crossers: the round is outcome-free.
                assert (nonempty < params.l
                        or occ[qi, t] < params.l * k)

    def test_merge_single_payload_matches_unsharded(self, tiny):
        data, queries = tiny
        index = build(data)
        counter = index._counter
        params = index.params
        qids = self._qids(index, queries)
        payload = {
            "collide": collide_levels(counter, qids, params.c),
            "occ": occupancy_table(counter, qids, params.c),
            "total": counter.m * counter.n,
        }
        expect = estimate_start_levels(counter, qids, params.l, params.c,
                                       k=2)
        got = merge_start_levels([payload], params.l, params.l * 2)
        np.testing.assert_array_equal(got, expect)
        # An empty shard contributes nothing: its buckets never fill, so
        # the merged start levels cannot move.
        sat = payload["occ"].shape[1] - 1
        empty = {
            "collide": np.full_like(payload["collide"], sat),
            "occ": np.zeros((qids.shape[0], 1), dtype=np.int64),
            "total": 0,
        }
        got2 = merge_start_levels([payload, empty], params.l,
                                  params.l * 2)
        np.testing.assert_array_equal(got2, expect)

    def test_probe_order_prefers_central_buckets(self):
        # Query sits mid-bucket in table 0, on the edge in table 1.
        uids = np.array([[4.5, 4.999]])
        qids = np.floor(uids).astype(np.int64)
        order = probe_order(uids, qids, 1)
        np.testing.assert_array_equal(order[0], [0, 1])

    def test_chunk_bounds(self):
        np.testing.assert_array_equal(_chunk_bounds(10, 1), [0, 10])
        bounds = _chunk_bounds(10, 4)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert np.all(np.diff(bounds) >= 1)
        # More chunks than tables degrades to one table per chunk.
        np.testing.assert_array_equal(_chunk_bounds(3, 8), [0, 1, 2, 3])


# -- bit-identity against the classic oracle ---------------------------------


class TestBitIdentity:
    def test_chunks1_no_estimate_is_bit_identical(self, tiny):
        data, queries = tiny
        classic = build(data).query_batch(queries, k=5)
        adaptive = build(data).query_batch(queries, k=5, probe=EXACT)
        assert_bit_equal(classic, adaptive)
        m = build(data).params.m
        for s, a in zip(classic, adaptive):
            assert a.stats.probes_issued == m * s.stats.rounds
            assert a.stats.probes_skipped == 0

    def test_start_estimate_is_answer_preserving(self, tiny):
        data, queries = tiny
        classic = build(data).query_batch(queries, k=5)
        index = build(data)
        adaptive = index.query_batch(
            queries, k=5, probe=AdaptiveConfig(chunks=1))
        m = index.params.m
        for i, (s, a) in enumerate(zip(classic, adaptive)):
            np.testing.assert_array_equal(s.ids, a.ids)
            np.testing.assert_array_equal(s.distances, a.distances)
            assert s.stats.terminated_by == a.stats.terminated_by
            assert s.stats.final_radius == a.stats.final_radius
            assert s.stats.candidates == a.stats.candidates
            # The skipped prefix is pure savings: same answer, fewer
            # rounds, no more pages, and the accounting balances.
            assert a.stats.rounds <= s.stats.rounds
            assert a.stats.io_reads <= s.stats.io_reads
            assert a.stats.probes_skipped == \
                m * (s.stats.rounds - a.stats.rounds)

    def test_query_matches_query_batch(self, tiny):
        data, queries = tiny
        index = build(data)
        batch = index.query_batch(queries, k=4, probe="adaptive")
        solo_index = build(data)
        for q, b in zip(queries, batch):
            s = solo_index.query(q, k=4, probe="adaptive")
            np.testing.assert_array_equal(s.ids, b.ids)
            np.testing.assert_array_equal(s.distances, b.distances)
            assert s.stats.terminated_by == b.stats.terminated_by

    def test_default_adaptive_contract_and_savings(self, clustered):
        data, queries = clustered
        k = 5
        classic = build(data).query_batch(queries, k=k)
        index = build(data)
        adaptive = index.query_batch(queries, k=k, probe="adaptive")
        for q, r in zip(queries, adaptive):
            assert_contract(r, data, q, k)
            assert r.stats.probes_issued > 0
        pages_classic = sum(r.stats.io_reads for r in classic)
        pages_adaptive = sum(r.stats.io_reads for r in adaptive)
        assert pages_adaptive < pages_classic
        # Probe accounting balances: every (round, table) pair of the
        # classic schedule from radius 1 to the final radius is either
        # probed or skipped.
        for r in adaptive:
            assert r.stats.probes_issued + r.stats.probes_skipped >= \
                index.params.m * r.stats.rounds

    def test_empty_batch(self, tiny):
        data, _ = tiny
        index = build(data)
        assert index.query_batch(np.empty((0, data.shape[1])),
                                 k=3, probe="adaptive") == []


# -- adversarial parity (Hypothesis) -----------------------------------------


class TestAdversarialParity:
    @settings(max_examples=20, deadline=None)
    @given(data_seed=st.integers(0, 2**20), n=st.integers(5, 40),
           dim=st.integers(2, 5), k=st.integers(1, 5))
    def test_duplicates_and_ties(self, data_seed, n, dim, k):
        # Integer-grid data maximizes duplicate rows and tied distances —
        # exactly where a reordered probe schedule could leak.
        rng = np.random.default_rng(data_seed)
        data = rng.integers(-3, 4, size=(n, dim)).astype(np.float64)
        query = rng.integers(-3, 4, size=dim).astype(np.float64)
        classic = build(data).query(query, k=k)
        exact = build(data).query(query, k=k, probe=EXACT)
        np.testing.assert_array_equal(classic.ids, exact.ids)
        np.testing.assert_array_equal(classic.distances, exact.distances)
        for field in STAT_FIELDS:
            assert getattr(classic.stats, field) == \
                getattr(exact.stats, field)
        fast = build(data).query(query, k=k, probe="adaptive")
        assert_contract(fast, data, query, k)

    def test_all_duplicates_dataset(self):
        # Every point identical: maximal ties, zero distances.
        data = np.zeros((3, 4))
        r = build(data).query(np.ones(4), k=2, probe="adaptive")
        assert_contract(r, data, np.ones(4), 2)


# -- budgets and chaos -------------------------------------------------------


class TestBudgetsAndChaos:
    def test_budget_degrades_gracefully(self, tiny):
        data, queries = tiny
        # A fine radius grid forces a multi-round search, so the
        # round-boundary budget check fires before natural termination
        # (budgets, like classic's, never cut a naturally-done query).
        index = build(data, base_radius=0.05)
        tight = QueryBudget(max_io_pages=3)
        r = index.query(queries[0], k=3, probe="adaptive", budget=tight)
        assert r.stats.degraded
        assert r.stats.budget_exhausted == "io_pages"
        assert r.stats.terminated_by == "budget"
        assert_contract(r, data, queries[0], 3)

    def test_loose_budget_is_a_noop(self, tiny):
        data, queries = tiny
        plain = build(data).query_batch(queries, k=4, probe="adaptive")
        loose = build(data).query_batch(
            queries, k=4, probe="adaptive",
            budget=QueryBudget(max_io_pages=10**9))
        for p, l in zip(plain, loose):
            np.testing.assert_array_equal(p.ids, l.ids)
            np.testing.assert_array_equal(p.distances, l.distances)
            assert not l.stats.degraded

    def test_chaos_determinism_and_contract(self, tiny):
        """Transient faults + retries: deterministic, contract intact."""
        data, queries = tiny
        plan = FaultPlan((
            FaultRule("bucket_scan", "error", probability=0.05),
            FaultRule("data_read", "error", probability=0.05),
        ))

        def run():
            injector = FaultInjector(plan, seed=CHAOS_SEED,
                                     retry=RetryPolicy(max_retries=8))
            index = C2LSH(
                seed=0,
                page_manager=PageManager(fault_injector=injector),
            ).fit(data)
            return index.query_batch(queries, k=3, probe="adaptive")

        first, second = run(), run()
        for q, a, b in zip(queries, first, second):
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert a.stats.io_reads == b.stats.io_reads
            assert a.stats.probes_issued == b.stats.probes_issued
            assert_contract(a, data, q, 3)


# -- explain -----------------------------------------------------------------


class TestExplain:
    def test_adaptive_explain_shows_skips_and_probes(self, tiny):
        data, _ = tiny
        index = build(data)
        # A far-away query has empty small-radius buckets, so the
        # estimator provably skips the first rounds.
        far = data[0] + 200.0
        exp = explain(index, far, k=2, probe="adaptive")
        assert any(r.skipped for r in exp.rounds)
        skipped = [r for r in exp.rounds if r.skipped]
        assert all(r.io_reads == 0 and r.probes_issued == 0
                   for r in skipped)
        assert sum(r.probes_skipped for r in exp.rounds) > 0
        text = exp.render()
        assert "probes" in text and "pages_saved" in text
        assert "skip" in text

    def test_classic_explain_renders_zero_probe_columns(self, tiny):
        data, queries = tiny
        index = build(data)
        exp = explain(index, queries[0], k=2)
        assert exp.rounds
        assert all(r.probes_issued == 0 and r.probes_skipped == 0
                   and r.pages_saved == 0 and not r.skipped
                   for r in exp.rounds)
        assert "probes" in exp.render()

    def test_t2_early_verdict_renders(self):
        exp = QueryExplanation(
            rounds=[], terminated_by="T2-early", k=1, target=5,
            result_ids=np.empty(0, dtype=np.int64),
            result_distances=np.empty(0))
        assert "provisional" in exp.render()


# -- sharded engine ----------------------------------------------------------


class TestSharded:
    @pytest.fixture(scope="class")
    def setup(self, clustered):
        data, queries = clustered
        classic = build(data, seed=3).query_batch(queries, k=4)
        with ShardedC2LSH(n_shards=3, n_workers=0, seed=3,
                          page_accounting=True).fit(data) as eng:
            yield data, queries, classic, eng

    def test_classic_sharded_still_bit_identical(self, setup):
        data, queries, classic, eng = setup
        sharded = eng.query_batch(queries, k=4)
        for s, g in zip(classic, sharded):
            np.testing.assert_array_equal(s.ids, g.ids)
            np.testing.assert_array_equal(s.distances, g.distances)
            assert s.stats.terminated_by == g.stats.terminated_by

    def test_adaptive_sharded_contract_and_recall(self, setup):
        data, queries, classic, eng = setup
        k = 4
        base = eng.query_batch(queries, k=k)
        fast = eng.query_batch(queries, k=k, probe="adaptive")
        for q, r in zip(queries, fast):
            assert_contract(r, data, q, k)
            assert r.stats.probes_issued > 0
        assert sum(r.stats.io_reads for r in fast) <= \
            sum(r.stats.io_reads for r in base)
        # Recall stays at the classic level on this easy clustered set.
        true_ids, _ = exact_knn(data, queries, k)

        def recall(results):
            hit = sum(np.intersect1d(r.ids, t).size
                      for r, t in zip(results, true_ids))
            return hit / true_ids.size
        assert recall(fast) >= recall(base) - 0.1

    def test_adaptive_sharded_estimator_saves_pages(self, setup):
        """Out-of-distribution queries have empty small-radius buckets,
        so the merged cross-shard start estimate must skip whole levels
        — fewer probes, strictly fewer pages, same exact contract."""
        data, queries, classic, eng = setup
        far = queries + 100.0
        base = eng.query_batch(far, k=4)
        fast = eng.query_batch(far, k=4, probe="adaptive")
        assert sum(r.stats.probes_skipped for r in fast) > 0
        assert sum(r.stats.io_reads for r in fast) < \
            sum(r.stats.io_reads for r in base)
        for q, r in zip(far, fast):
            assert_contract(r, data, q, 4)

    def test_adaptive_sharded_explain(self, setup):
        data, queries, classic, eng = setup
        exp = explain_sharded(eng, queries[0], k=3, probe="adaptive")
        assert exp.spans
        assert sum(s.probes_issued for s in exp.spans) > 0
        assert "probes" in exp.render()

    def test_sharded_chaos_parity(self, clustered):
        """Worker-side transient faults: adaptive answers stay exact."""
        data, queries = clustered
        plan = FaultPlan((
            FaultRule("bucket_scan", "error", probability=0.02),
        ))
        with ShardedC2LSH(n_shards=2, n_workers=0, seed=5,
                          page_accounting=True, fault_plan=plan,
                          fault_seed=CHAOS_SEED).fit(data) as eng:
            for q in queries[:4]:
                r = eng.query(q, k=3, probe="adaptive")
                assert_contract(r, data, q, 3)


# -- tuning pass-through -----------------------------------------------------


def test_tune_accepts_probe(tiny):
    data, _ = tiny
    result = tune_c2lsh(data, target_recall=0.1, k=2, n_validation=5,
                        c_grid=(2,), budget_grid=(25,), seed=0,
                        probe="adaptive")
    assert result.trials
