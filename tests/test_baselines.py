"""Tests for the baselines: LinearScan, E2LSH, LSB-forest."""

import numpy as np
import pytest

from repro import E2LSH, LinearScan, LSBForest, PageManager
from repro.data import exact_knn


class TestLinearScan:
    def test_is_exact(self, tiny):
        data, queries = tiny
        index = LinearScan().fit(data)
        true_ids, true_dists = exact_knn(data, queries, 7)
        for q, ids_row, dists_row in zip(queries, true_ids, true_dists):
            result = index.query(q, k=7)
            assert np.allclose(result.distances, dists_row)
            assert set(result.ids.tolist()) == set(ids_row.tolist())

    def test_io_is_full_scan(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = LinearScan(page_manager=pm).fit(data)
        result = index.query(queries[0], k=1)
        assert result.stats.io_reads == pm.pages_for(
            data.shape[0], data.shape[1] * 8)

    def test_candidates_is_n(self, tiny):
        data, queries = tiny
        index = LinearScan().fit(data)
        assert index.query(queries[0], k=1).stats.candidates == data.shape[0]

    def test_custom_metric(self, tiny):
        data, queries = tiny

        def manhattan(points, q):
            return np.abs(points - q).sum(axis=1)

        index = LinearScan(metric=manhattan).fit(data)
        result = index.query(queries[0], k=3)
        expected = np.sort(manhattan(data, queries[0]))[:3]
        assert np.allclose(result.distances, expected)

    def test_bad_metric_rejected(self):
        with pytest.raises(ValueError):
            LinearScan(metric="cosine-ish")

    def test_validation(self, tiny):
        data, queries = tiny
        index = LinearScan().fit(data)
        with pytest.raises(RuntimeError):
            LinearScan().query(queries[0])
        with pytest.raises(ValueError):
            index.query(queries[0], k=0)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))


class TestE2LSH:
    def test_theoretical_parameters_grow_with_n(self):
        K1, L1 = E2LSH.theoretical_parameters(1_000)
        K2, L2 = E2LSH.theoretical_parameters(1_000_000)
        assert K2 > K1
        assert L2 > L1

    def test_theoretical_L_is_large(self):
        """The paper's point: hundreds of tables at theory settings."""
        _, L = E2LSH.theoretical_parameters(60_000)
        assert L > 100

    def test_recall_on_clustered_data(self, clustered):
        data, queries = clustered
        index = E2LSH(K=6, L=32, seed=0).fit(data)
        true_ids, _ = exact_knn(data, queries, 5)
        hits = 0
        for q, truth in zip(queries, true_ids):
            got = index.query(q, k=5)
            hits += len(set(got.ids.tolist()) & set(truth.tolist()))
        assert hits / (5 * len(queries)) > 0.7

    def test_exact_match_in_bucket(self, clustered):
        data, _ = clustered
        index = E2LSH(K=6, L=16, seed=0).fit(data)
        result = index.query(data[3], k=1)
        assert result.ids[0] == 3

    def test_index_pages_scale_with_L(self, tiny):
        data, _ = tiny
        pm1, pm2 = PageManager(), PageManager()
        a = E2LSH(K=4, L=4, seed=0, page_manager=pm1).fit(data)
        b = E2LSH(K=4, L=8, seed=0, page_manager=pm2).fit(data)
        assert b.index_pages() == 2 * a.index_pages()

    def test_multi_radius_grid(self, clustered):
        data, queries = clustered
        index = E2LSH(K=6, L=8, radii=(1, 2, 4), seed=0).fit(data)
        result = index.query(queries[0], k=3)
        assert result.stats.final_radius in (1, 2, 4)

    def test_empty_result_possible_with_tiny_tables(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((50, 4))
        index = E2LSH(K=14, L=1, seed=0, base_radius=0.0001).fit(data)
        result = index.query(rng.standard_normal(4) * 50, k=1)
        assert len(result) in (0, 1)  # may legitimately find nothing

    def test_io_accounting(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = E2LSH(K=4, L=8, seed=0, page_manager=pm).fit(data)
        result = index.query(queries[0], k=2)
        assert result.stats.io_reads >= 8  # at least one probe per table

    def test_validation(self, tiny):
        data, queries = tiny
        with pytest.raises(ValueError):
            E2LSH(radii=())
        with pytest.raises(ValueError):
            E2LSH(radii=(0,))
        with pytest.raises(ValueError):
            E2LSH(K=0, L=1).fit(data)
        index = E2LSH(K=4, L=4, seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))
        with pytest.raises(RuntimeError):
            E2LSH(K=4, L=4).query(queries[0])

    def test_determinism(self, tiny):
        data, queries = tiny
        a = E2LSH(K=4, L=8, seed=3).fit(data).query(queries[0], k=3)
        b = E2LSH(K=4, L=8, seed=3).fit(data).query(queries[0], k=3)
        assert np.array_equal(a.ids, b.ids)


class TestLSBForest:
    def test_theoretical_parameters(self):
        m, L = LSBForest.theoretical_parameters(60_000, 50)
        assert m >= 2
        assert L > 50  # sqrt(dn/B) is large: the huge-index story

    def test_recall_on_clustered_data(self, clustered):
        data, queries = clustered
        index = LSBForest(n_trees=8, seed=0).fit(data)
        true_ids, _ = exact_knn(data, queries, 5)
        hits = 0
        for q, truth in zip(queries, true_ids):
            got = index.query(q, k=5)
            hits += len(set(got.ids.tolist()) & set(truth.tolist()))
        assert hits / (5 * len(queries)) > 0.5

    def test_exact_match_found(self, clustered):
        data, _ = clustered
        index = LSBForest(n_trees=8, seed=0).fit(data)
        result = index.query(data[25], k=1)
        assert result.ids[0] == 25

    def test_budget_bounds_visited_entries(self, clustered):
        data, queries = clustered
        index = LSBForest(n_trees=4, budget_factor=0.02, t1_scale=0.0,
                          seed=0).fit(data)
        budget = int(0.02 * (4096 // 12) * 4)
        for q in queries[:3]:
            stats = index.query(q, k=3).stats
            assert stats.scanned_entries <= budget
            assert stats.terminated_by == "T2"

    def test_t1_label_when_threshold_generous(self, clustered):
        data, queries = clustered
        index = LSBForest(n_trees=4, t1_scale=100.0, seed=0).fit(data)
        assert index.query(queries[0], k=1).stats.terminated_by == "T1"

    def test_index_pages_scale_with_trees(self, tiny):
        data, _ = tiny
        pm1, pm2 = PageManager(), PageManager()
        a = LSBForest(n_trees=2, seed=0, page_manager=pm1).fit(data)
        b = LSBForest(n_trees=4, seed=0, page_manager=pm2).fit(data)
        assert b.index_pages() == 2 * a.index_pages()

    def test_build_charges_node_writes(self, tiny):
        data, _ = tiny
        pm = PageManager()
        index = LSBForest(n_trees=3, seed=0, page_manager=pm).fit(data)
        assert pm.stats.writes >= index.index_pages()

    def test_validation(self, tiny):
        data, queries = tiny
        with pytest.raises(ValueError):
            LSBForest(u_bits=0)
        with pytest.raises(ValueError):
            LSBForest(n_trees=0).fit(data)
        index = LSBForest(n_trees=2, seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))
        with pytest.raises(ValueError):
            index.query(queries[0], k=0)
        with pytest.raises(RuntimeError):
            LSBForest(n_trees=2).query(queries[0])

    def test_determinism(self, tiny):
        data, queries = tiny
        a = LSBForest(n_trees=3, seed=5).fit(data).query(queries[0], k=3)
        b = LSBForest(n_trees=3, seed=5).fit(data).query(queries[0], k=3)
        assert np.array_equal(a.ids, b.ids)

    def test_more_trees_do_not_hurt_recall(self, clustered):
        data, queries = clustered
        true_ids, _ = exact_knn(data, queries, 5)

        def recall(n_trees):
            index = LSBForest(n_trees=n_trees, seed=0, t1_scale=0.0,
                              budget_factor=0.5).fit(data)
            hits = 0
            for q, truth in zip(queries, true_ids):
                got = index.query(q, k=5)
                hits += len(set(got.ids.tolist()) & set(truth.tolist()))
            return hits

        assert recall(8) >= recall(1)
