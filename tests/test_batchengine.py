"""Batch query engine: lockstep counting must match the sequential path.

The contract of :mod:`repro.core.batchengine` is *bit-identical* results:
same ids, same distances, same :class:`QueryStats` (including charged page
I/O), for every query in the batch — only the wall-clock differs. Every
test here therefore builds two identically seeded indexes and compares
``query_batch`` against a plain ``query`` loop field by field.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2LSH, PageManager
from repro.core import BatchQueryCounter, WithinRadiusTally
from repro.core.batchengine import batch_query
from repro.hashing import SignRandomProjectionFamily

STAT_FIELDS = ("rounds", "final_radius", "candidates", "scanned_entries",
               "terminated_by", "io_reads", "io_writes")


def build_pair(data, seed=0, **kwargs):
    """Two independent, identically seeded indexes (separate page managers)."""
    indexes = []
    for _ in range(2):
        kw = dict(kwargs)
        if kw.pop("sign_family", False):
            kw["family"] = SignRandomProjectionFamily(data.shape[1])
        indexes.append(
            C2LSH(seed=seed, page_manager=PageManager(), **kw).fit(data)
        )
    return indexes


def assert_equivalent(seq_results, batch_results):
    assert len(seq_results) == len(batch_results)
    for i, (s, b) in enumerate(zip(seq_results, batch_results)):
        assert np.array_equal(s.ids, b.ids), f"query {i}: ids differ"
        assert np.array_equal(s.distances, b.distances), \
            f"query {i}: distances differ"
        for field in STAT_FIELDS:
            assert getattr(s.stats, field) == getattr(b.stats, field), \
                f"query {i}: stats.{field} differs"
        # elapsed_s parity: both paths measure wall time, so the values
        # cannot be equal — but both must be populated and positive.
        assert s.stats.elapsed_s > 0.0, f"query {i}: sequential elapsed_s"
        assert b.stats.elapsed_s > 0.0, f"query {i}: batch elapsed_s"


class TestWithinRadiusTally:
    def test_matches_rescan(self):
        rng = np.random.default_rng(0)
        tally = WithinRadiusTally()
        seen = []
        threshold = 0.0
        for _ in range(12):
            fresh = rng.uniform(0, 10, size=rng.integers(0, 6))
            tally.add(fresh)
            seen.extend(fresh)
            threshold += rng.uniform(0, 3)  # non-decreasing
            expect = int(np.sum(np.asarray(seen) <= threshold))
            assert tally.count_within(threshold) == expect

    def test_empty(self):
        tally = WithinRadiusTally()
        assert tally.count_within(1.0) == 0
        tally.add(np.empty(0))
        assert tally.count_within(2.0) == 0


class TestBatchEquivalence:
    @pytest.mark.parametrize("layout", ["scattered", "id", "zorder"])
    def test_layouts(self, tiny, layout):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data, data_layout=layout)
        seq = [seq_idx.query(q, k=5) for q in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=5))

    def test_clustered_mixed_termination(self, clustered):
        data, queries = clustered
        # Mix in far-off queries so termination radii differ across the
        # batch — otherwise the active-set bookkeeping is untested.
        rng = np.random.default_rng(11)
        far = queries + rng.normal(0, 40.0, size=queries.shape)
        queries = np.concatenate([queries, far])
        seq_idx, bat_idx = build_pair(data)
        seq = [seq_idx.query(q, k=10) for q in queries]
        bat = bat_idx.query_batch(queries, k=10)
        assert_equivalent(seq, bat)
        assert len({r.stats.final_radius for r in bat}) > 1

    def test_single_granularity_family(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data, sign_family=True)
        seq = [seq_idx.query(q, k=3) for q in queries]
        bat = bat_idx.query_batch(queries, k=3)
        assert_equivalent(seq, bat)
        assert all(r.stats.rounds == 1 for r in bat)

    def test_k_exceeds_n(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data)
        k = data.shape[0] + 10
        seq = [seq_idx.query(q, k=k) for q in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=k))

    def test_single_query_batch(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data)
        seq = [seq_idx.query(queries[0], k=4)]
        assert_equivalent(seq, bat_idx.query_batch(queries[:1], k=4))

    def test_empty_batch(self, tiny):
        data, _ = tiny
        _, bat_idx = build_pair(data)
        assert bat_idx.query_batch(np.empty((0, data.shape[1]))) == []

    def test_t1_disabled(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data, use_t1=False)
        seq = [seq_idx.query(q, k=4) for q in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=4))

    def test_n_jobs_identical(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data)
        seq = [seq_idx.query(q, k=5) for q in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=5, n_jobs=4))

    def test_recount_ablation_uses_sequential_path(self, tiny):
        data, queries = tiny
        seq_idx, bat_idx = build_pair(data, incremental=False)
        seq = [seq_idx.query(q, k=4) for q in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=4))

    def test_no_page_manager(self, tiny):
        data, queries = tiny
        seq_idx = C2LSH(seed=0).fit(data)
        bat_idx = C2LSH(seed=0).fit(data)
        seq = [seq_idx.query(q, k=5) for q in queries]
        bat = bat_idx.query_batch(queries, k=5)
        for s, b in zip(seq, bat):
            assert np.array_equal(s.ids, b.ids)
            assert s.stats.io_reads == b.stats.io_reads == 0

    def test_validation(self, tiny):
        data, queries = tiny
        _, idx = build_pair(data)
        with pytest.raises(ValueError):
            idx.query_batch(queries, k=0)
        with pytest.raises(ValueError):
            idx.query_batch(queries[:, :-1])
        with pytest.raises(RuntimeError):
            C2LSH(seed=0).query_batch(queries)

    @settings(deadline=None, max_examples=15)
    @given(
        n=st.integers(30, 120),
        dim=st.integers(2, 12),
        q=st.integers(1, 6),
        k=st.integers(1, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_equivalence(self, n, dim, q, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim))
        queries = rng.standard_normal((q, dim))
        seq_idx, bat_idx = build_pair(data, seed=seed % 1000)
        seq = [seq_idx.query(qv, k=k) for qv in queries]
        assert_equivalent(seq, bat_idx.query_batch(queries, k=k))


class TestBatchQueryCounter:
    def test_shape_validated(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        with pytest.raises(ValueError):
            BatchQueryCounter(index._counter, np.zeros((3, 2)))

    def test_counts_match_sequential_counters(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        qids = index._funcs.hash(index._hash_view(queries))
        batch = BatchQueryCounter(index._counter, qids)
        seq = [index._counter.start_query(row) for row in qids]
        active = np.arange(len(queries))
        radius = 1
        for _ in range(3):
            batch.expand(radius, active)
            for counter in seq:
                counter.expand(radius)
            for i, counter in enumerate(seq):
                assert np.array_equal(batch.counts[i], counter.counts)
            radius *= index.params.c

    def test_partial_active_set(self, tiny):
        """Dropped-out queries keep their counts frozen."""
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        qids = index._funcs.hash(index._hash_view(queries))
        batch = BatchQueryCounter(index._counter, qids)
        batch.expand(1, np.arange(len(queries)))
        frozen = batch.counts[0].copy()
        batch.expand(index.params.c, np.arange(1, len(queries)))
        assert np.array_equal(batch.counts[0], frozen)

    def test_dense_and_sparse_kernels_agree(self, tiny):
        """Force each kernel on the same expansion; counts must match."""
        from repro.core import batchengine

        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        qids = index._funcs.hash(index._hash_view(queries))
        active = np.arange(len(queries))
        orig = batchengine._DENSE_CUTOVER
        try:
            batchengine._DENSE_CUTOVER = 10**9  # never dense
            sparse = BatchQueryCounter(index._counter, qids)
            sparse.expand(1, active)
            sparse.expand(index.params.c, active)
            batchengine._DENSE_CUTOVER = 0  # always dense
            dense = BatchQueryCounter(index._counter, qids)
            dense.expand(1, active)
            dense.expand(index.params.c, active)
        finally:
            batchengine._DENSE_CUTOVER = orig
        assert np.array_equal(sparse.counts, dense.counts)

    def test_crossings_sorted_by_query_then_id(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        qids = index._funcs.hash(index._hash_view(queries))
        batch = BatchQueryCounter(index._counter, qids)
        batch.expand(1, np.arange(len(queries)))
        qs, ids = batch.crossings(1)
        assert np.all(np.diff(qs) >= 0)
        for q in np.unique(qs):
            assert np.all(np.diff(ids[qs == q]) > 0)

    def test_batch_query_k_validated(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        qids = index._funcs.hash(index._hash_view(queries))
        with pytest.raises(ValueError):
            batch_query(index, queries, qids, k=0)
