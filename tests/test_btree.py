"""Tests for the bulk-loaded B+-tree and its charging cursor."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree, PageManager


def make_tree(keys, leaf_capacity=4, fanout=3, pm=None):
    return BPlusTree(sorted(keys), list(range(len(keys))),
                     leaf_capacity=leaf_capacity, fanout=fanout,
                     page_manager=pm)


class TestConstruction:
    def test_invariants_small(self):
        tree = make_tree(range(100))
        assert tree.check_invariants()

    def test_invariants_empty(self):
        tree = make_tree([])
        assert len(tree) == 0
        assert tree.check_invariants()

    def test_single_key(self):
        tree = make_tree([7])
        assert tree.key_at(0) == 7

    def test_build_charges_node_writes(self):
        pm = PageManager()
        tree = make_tree(range(50), pm=pm)
        assert pm.stats.writes == tree.node_count()

    def test_unsorted_keys_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree([3, 1, 2], [0, 1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree([1, 2], [0])

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree([1], [0], leaf_capacity=0)
        with pytest.raises(ValueError):
            BPlusTree([1], [0], fanout=1)

    def test_duplicate_keys_allowed(self):
        tree = make_tree([5, 5, 5, 5, 5, 5])
        assert tree.check_invariants()

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_property_invariants(self, n, cap, fanout):
        tree = make_tree(range(n), leaf_capacity=cap, fanout=fanout)
        assert tree.check_invariants()

    def test_height_grows_logarithmically(self):
        small = make_tree(range(4), leaf_capacity=4, fanout=4)
        large = make_tree(range(1000), leaf_capacity=4, fanout=4)
        assert small.height == 1
        assert large.height >= 4


class TestSearch:
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                    max_size=80),
           st.integers(min_value=-55, max_value=55))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_bisect_left(self, keys, probe):
        keys = sorted(keys)
        tree = BPlusTree(keys, list(range(len(keys))), leaf_capacity=3,
                         fanout=3)
        assert tree.search_position(probe) == bisect.bisect_left(keys, probe)

    def test_search_charges_height_reads(self):
        pm = PageManager()
        tree = make_tree(range(200), leaf_capacity=4, fanout=4, pm=pm)
        pm.reset()
        tree.search_position(57)
        assert pm.stats.reads == tree.height

    def test_tuple_keys(self):
        keys = sorted([(0, 5), (1, 2), (1, 3), (2, 0)])
        tree = BPlusTree(keys, list(range(4)), leaf_capacity=2, fanout=2)
        assert tree.search_position((1, 0)) == 1
        assert tree.search_position((9, 9)) == 4

    def test_key_and_value_at(self):
        tree = make_tree([10, 20, 30], leaf_capacity=2)
        assert tree.key_at(1) == 20
        assert tree.value_at(2) == 2

    def test_position_out_of_range(self):
        tree = make_tree([1, 2, 3])
        with pytest.raises(IndexError):
            tree.key_at(3)
        with pytest.raises(IndexError):
            tree.key_at(-1)


class TestLeafCursor:
    def test_peek_and_advance(self):
        tree = make_tree(range(10), leaf_capacity=4)
        cur = tree.cursor(0)
        seen = []
        while cur.valid():
            key, _ = cur.peek()
            seen.append(key)
            cur.advance(1)
        assert seen == list(range(10))

    def test_backwards_sweep(self):
        tree = make_tree(range(10), leaf_capacity=4)
        cur = tree.cursor(9)
        seen = []
        while cur.valid():
            seen.append(cur.peek()[0])
            cur.advance(-1)
        assert seen == list(range(9, -1, -1))

    def test_off_end_peek_is_none(self):
        tree = make_tree(range(3))
        assert tree.cursor(-1).peek() is None
        assert tree.cursor(3).peek() is None

    def test_charges_one_read_per_leaf(self):
        pm = PageManager()
        tree = make_tree(range(12), leaf_capacity=4, pm=pm)
        pm.reset()
        cur = tree.cursor(0)
        while cur.valid():
            cur.peek()
            cur.advance(1)
        assert pm.stats.reads == 3  # 12 entries / 4 per leaf
        assert cur.leaves_touched == 3

    def test_repeek_same_leaf_is_free(self):
        pm = PageManager()
        tree = make_tree(range(8), leaf_capacity=8, pm=pm)
        pm.reset()
        cur = tree.cursor(0)
        cur.peek()
        cur.advance(1)
        cur.peek()
        assert pm.stats.reads == 1
