"""End-to-end tests for the C2LSH index."""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.data import exact_knn
from repro.hashing import (
    BitSamplingFamily,
    PStableFamily,
    SignRandomProjectionFamily,
)


class TestFitValidation:
    def test_unfitted_query_rejected(self):
        with pytest.raises(RuntimeError):
            C2LSH(seed=0).query(np.zeros(4))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            C2LSH(seed=0).fit(np.empty((0, 4)))

    def test_1d_data_rejected(self):
        with pytest.raises(ValueError):
            C2LSH(seed=0).fit(np.zeros(10))

    def test_fit_returns_self(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0)
        assert index.fit(data) is index
        assert index.is_fitted

    def test_query_dimension_checked(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(np.zeros(9))

    def test_k_validated(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query(queries[0], k=0)

    def test_params_exposed(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        assert index.m == index.params.m
        assert index.l == index.params.l
        assert "C2LSH" in repr(index)

    def test_repr_unfitted(self):
        assert "unfitted" in repr(C2LSH())

    def test_base_radius_validated(self, tiny):
        data, _ = tiny
        with pytest.raises(ValueError):
            C2LSH(seed=0, base_radius=-2.0).fit(data)


class TestAccuracy:
    def test_high_recall_on_clustered_data(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        true_ids, _ = exact_knn(data, queries, 10)
        hits = 0
        for q, truth in zip(queries, true_ids):
            result = index.query(q, k=10)
            hits += len(set(result.ids.tolist()) & set(truth.tolist()))
        assert hits / (10 * len(queries)) > 0.8

    def test_exact_match_query_finds_itself(self, clustered):
        data, _ = clustered
        index = C2LSH(c=2, seed=1).fit(data)
        result = index.query(data[17], k=1)
        assert result.ids[0] == 17
        assert result.distances[0] == 0.0

    def test_c2_guarantee_holds_empirically(self, clustered):
        """Returned NN distance <= c^2 * true NN distance, with margin for
        the 1/2 - delta probability (we allow a small failure fraction)."""
        data, queries = clustered
        index = C2LSH(c=2, seed=2).fit(data)
        _, true_dists = exact_knn(data, queries, 1)
        failures = 0
        for q, true_d in zip(queries, true_dists[:, 0]):
            got = index.query(q, k=1).distances[0]
            if got > 4 * true_d + 1e-9:
                failures += 1
        assert failures <= len(queries) // 2

    def test_distances_match_returned_ids(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        result = index.query(queries[0], k=5)
        expected = np.linalg.norm(data[result.ids] - queries[0], axis=1)
        assert np.allclose(result.distances, expected)

    def test_results_sorted_ascending(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        for q in queries:
            d = index.query(q, k=8).distances
            assert np.all(np.diff(d) >= 0)

    def test_k_larger_than_candidates_still_returns(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        result = index.query(queries[0], k=150)
        assert len(result) == 150
        assert len(set(result.ids.tolist())) == 150


class TestDeterminism:
    def test_same_seed_same_answers(self, tiny):
        data, queries = tiny
        a = C2LSH(seed=9).fit(data).query(queries[0], k=5)
        b = C2LSH(seed=9).fit(data).query(queries[0], k=5)
        assert np.array_equal(a.ids, b.ids)

    def test_different_seeds_differ_in_hashing(self, tiny):
        data, _ = tiny
        a = C2LSH(seed=1).fit(data)
        b = C2LSH(seed=2).fit(data)
        assert not np.array_equal(
            a._funcs.hash(data[:5] / a.base_radius),
            b._funcs.hash(data[:5] / b.base_radius),
        )


class TestTermination:
    def test_termination_label_is_set(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0).fit(data)
        for q in queries[:5]:
            label = index.query(q, k=5).stats.terminated_by
            assert label in {"T1", "T2", "exhausted", "fallback"}

    def test_t2_budget_bounds_candidates(self, clustered):
        data, queries = clustered
        index = C2LSH(c=2, seed=0, beta=0.02).fit(data)
        budget = index.params.false_positive_budget
        for q in queries[:5]:
            stats = index.query(q, k=5).stats
            if stats.terminated_by == "T2":
                # T2 fires as soon as the budget fills; one final round may
                # overshoot by at most the objects crossing in that round.
                assert stats.candidates >= 5 + budget

    def test_disabling_t1_costs_more_candidates(self, clustered):
        data, queries = clustered
        with_t1 = C2LSH(c=2, seed=0).fit(data)
        without = C2LSH(c=2, seed=0, use_t1=False).fit(data)
        a = np.mean([with_t1.query(q, k=5).stats.candidates
                     for q in queries])
        b = np.mean([without.query(q, k=5).stats.candidates
                     for q in queries])
        assert b >= a

    def test_incremental_and_recount_agree_on_answers(self, clustered):
        data, queries = clustered
        inc = C2LSH(c=2, seed=0, incremental=True).fit(data)
        rec = C2LSH(c=2, seed=0, incremental=False).fit(data)
        for q in queries[:5]:
            assert np.array_equal(inc.query(q, k=5).ids,
                                  rec.query(q, k=5).ids)

    def test_c3_grid(self, clustered):
        data, queries = clustered
        index = C2LSH(c=3, seed=0).fit(data)
        result = index.query(queries[0], k=5)
        assert len(result) == 5


class TestIOAccounting:
    def test_io_counted_when_page_manager_attached(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = C2LSH(seed=0, page_manager=pm).fit(data)
        assert pm.stats.writes > 0  # index + data files written
        result = index.query(queries[0], k=3)
        assert result.stats.io_reads > 0

    def test_io_zero_in_memory_mode(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        assert index.query(queries[0], k=3).stats.io_reads == 0

    def test_index_pages_matches_counter(self, tiny):
        data, _ = tiny
        pm = PageManager()
        index = C2LSH(seed=0, page_manager=pm).fit(data)
        assert index.index_pages() == index.params.m * pm.pages_for(
            data.shape[0], 12)

    def test_index_pages_requires_page_manager(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        with pytest.raises(RuntimeError):
            index.index_pages()

    def test_verification_charged_per_candidate(self, tiny):
        data, queries = tiny
        pm = PageManager()
        index = C2LSH(seed=0, page_manager=pm).fit(data)
        result = index.query(queries[0], k=3)
        # I/O must at least cover one read per verified candidate.
        assert result.stats.io_reads >= result.stats.candidates


class TestBaseRadius:
    def test_auto_scale_estimated(self, clustered):
        data, _ = clustered
        index = C2LSH(seed=0).fit(data)
        assert index.base_radius > 0

    def test_explicit_scale_respected(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0, base_radius=2.5).fit(data)
        assert index.base_radius == 2.5

    def test_badly_scaled_data_still_works(self):
        """The same geometry at 1000x the coordinate scale must still work."""
        rng = np.random.default_rng(0)
        base = rng.standard_normal((800, 12))
        data = base * 1000.0
        index = C2LSH(c=2, seed=0).fit(data)
        result = index.query(data[3] + 0.001, k=1)
        assert result.ids[0] == 3


class TestOtherFamilies:
    def test_angular_family_single_granularity(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((500, 16))
        data /= np.linalg.norm(data, axis=1, keepdims=True)
        family = SignRandomProjectionFamily(dim=16)
        index = C2LSH(family=family, c=2, seed=0).fit(data)
        result = index.query(data[7], k=1)
        assert result.ids[0] == 7

    def test_hamming_family(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=(400, 64)).astype(np.float64)
        family = BitSamplingFamily(dim=64)
        index = C2LSH(family=family, c=2, seed=0).fit(data)
        result = index.query(data[11], k=1)
        assert result.distances[0] == 0.0

    def test_explicit_euclidean_family(self, tiny):
        data, queries = tiny
        family = PStableFamily(dim=8, w=3.0)
        index = C2LSH(family=family, seed=0).fit(data)
        assert len(index.query(queries[0], k=3)) == 3


class TestBatch:
    def test_query_batch_matches_single(self, tiny):
        data, queries = tiny
        index = C2LSH(seed=0).fit(data)
        batch = index.query_batch(queries, k=4)
        assert len(batch) == len(queries)
        for q, res in zip(queries, batch):
            assert np.array_equal(res.ids, index.query(q, k=4).ids)

    def test_batch_requires_2d(self, tiny):
        data, _ = tiny
        index = C2LSH(seed=0).fit(data)
        with pytest.raises(ValueError):
            index.query_batch(np.zeros(8), k=1)
