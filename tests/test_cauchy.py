"""Tests for the 1-stable (Cauchy / Manhattan-distance) family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import C2LSH
from repro.data import exact_knn
from repro.hashing import (
    CauchyFamily,
    cauchy_collision_probability,
    check_family_calibration,
    choose_w_l1,
)


class TestCollisionProbability:
    def test_zero_distance(self):
        assert cauchy_collision_probability(0.0, w=1.0) == 1.0

    def test_monotone_decreasing(self):
        s = np.linspace(0.05, 30, 200)
        p = cauchy_collision_probability(s, w=2.0)
        assert np.all(np.diff(p) < 0)

    def test_scale_invariance(self):
        a = cauchy_collision_probability(1.0, w=3.0)
        b = cauchy_collision_probability(2.0, w=6.0)
        assert a == pytest.approx(b, rel=1e-12)

    def test_known_value(self):
        """w = s = 1: p = 2*atan(1)/pi - ln 2/pi = 1/2 - ln2/pi."""
        import math
        expected = 0.5 - math.log(2.0) / math.pi
        assert cauchy_collision_probability(1.0, 1.0) == pytest.approx(
            expected, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            cauchy_collision_probability(1.0, w=0.0)
        with pytest.raises(ValueError):
            cauchy_collision_probability(-1.0, w=1.0)

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1e-2, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_always_a_probability(self, s, w):
        p = cauchy_collision_probability(s, w)
        assert 0.0 <= p <= 1.0


class TestChooseWL1:
    def test_positive(self):
        assert choose_w_l1(2.0) > 0

    def test_is_local_maximum_of_gap(self):
        w = choose_w_l1(2.0)

        def gap(width):
            return (cauchy_collision_probability(1.0, width)
                    - cauchy_collision_probability(2.0, width))

        assert gap(w) >= gap(w * 1.2) - 1e-9
        assert gap(w) >= gap(w * 0.8) - 1e-9

    def test_interior_optimum(self):
        """The gap objective has a real interior maximum (rho does not)."""
        w = choose_w_l1(2.0)
        assert 0.05 < w < 39.9

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            choose_w_l1(1.0)


class TestCauchyFamily:
    def test_metric_label(self):
        assert CauchyFamily(8).metric == "manhattan"

    def test_hash_shapes_and_rehashable(self):
        rng = np.random.default_rng(0)
        funcs = CauchyFamily(8, w=4.0).sample(5, rng)
        assert funcs.rehashable is True
        ids = funcs.hash(rng.standard_normal((20, 8)))
        assert ids.shape == (20, 5)

    def test_distance_is_l1(self):
        family = CauchyFamily(4)
        points = np.array([[1.0, 2, 3, 4], [0, 0, 0, 0]])
        q = np.zeros(4)
        assert np.allclose(family.distance(points, q), [10.0, 0.0])

    def test_calibration_against_model(self):
        """Measured collision rate matches the analytic formula."""
        family = CauchyFamily(16, w=2.0)
        report = check_family_calibration(family, [0.5, 1.0, 3.0],
                                          n_functions=4000)
        assert report.calibrated, report.rows()

    def test_validation(self):
        with pytest.raises(ValueError):
            CauchyFamily(0)
        with pytest.raises(ValueError):
            CauchyFamily(4, w=-1.0)


class TestL1C2LSH:
    def test_exact_l1_neighbors_recovered(self):
        from repro.data import gaussian_clusters
        data = gaussian_clusters(1500, 16, n_clusters=8, cluster_std=1.0,
                                 spread=10.0, seed=5)
        index = C2LSH(family=CauchyFamily(16, c=2), c=2, seed=0).fit(data)
        hits = 0
        rng = np.random.default_rng(6)
        picks = rng.integers(0, 1500, size=10)
        for i in picks:
            q = data[i] + 0.001
            result = index.query(q, k=5)
            true_ids, _ = exact_knn(data, q, 5, metric="manhattan")
            hits += len(set(result.ids.tolist()) & set(true_ids.tolist()))
        assert hits / 50 > 0.8

    def test_distances_reported_in_l1(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((400, 8))
        index = C2LSH(family=CauchyFamily(8, c=2), c=2, seed=0).fit(data)
        q = rng.standard_normal(8)
        result = index.query(q, k=3)
        expected = np.abs(data[result.ids] - q).sum(axis=1)
        assert np.allclose(result.distances, expected)

    def test_virtual_rehashing_runs_multiple_rounds(self):
        """With a tiny starting unit, l1 C2LSH must walk the radius grid."""
        rng = np.random.default_rng(2)
        data = rng.standard_normal((500, 8)) * 10
        index = C2LSH(family=CauchyFamily(8, c=2), c=2, seed=0,
                      base_radius=0.5).fit(data)
        result = index.query(rng.standard_normal(8) * 10, k=3)
        assert result.stats.rounds >= 2
