"""Tests for the dynamic collision-counting engine (virtual rehashing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import CollisionCounter
from repro.storage import PageManager


def brute_counts(bucket_ids, qids, radius):
    """Reference: #tables where floor(id/R) == floor(q/R), per object."""
    merged = bucket_ids // radius
    merged_q = qids // radius
    return (merged == merged_q).sum(axis=1)


@pytest.fixture()
def small_index():
    rng = np.random.default_rng(0)
    bucket_ids = rng.integers(-20, 20, size=(120, 7))
    qids = rng.integers(-20, 20, size=7)
    return bucket_ids, qids


class TestCollisionCounter:
    def test_shapes_and_validation(self):
        with pytest.raises(ValueError):
            CollisionCounter(np.zeros(5))
        with pytest.raises(ValueError):
            CollisionCounter(np.zeros((0, 3)))

    def test_query_id_shape_validated(self, small_index):
        bucket_ids, _ = small_index
        counter = CollisionCounter(bucket_ids)
        with pytest.raises(ValueError):
            counter.start_query(np.zeros(3, dtype=np.int64))

    def test_storage_pages(self, small_index):
        bucket_ids, _ = small_index
        pm = PageManager()
        counter = CollisionCounter(bucket_ids, page_manager=pm)
        assert counter.storage_pages(pm) == 7 * pm.pages_for(120, 12)
        assert pm.stats.writes == counter.storage_pages(pm)


class TestCountsCorrectness:
    def test_counts_match_brute_force_radius_1(self, small_index):
        bucket_ids, qids = small_index
        counter = CollisionCounter(bucket_ids)
        qc = counter.start_query(qids)
        qc.expand(1)
        assert np.array_equal(qc.counts, brute_counts(bucket_ids, qids, 1))

    def test_counts_match_after_expansion(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        for radius in (1, 2, 4, 8, 16):
            qc.expand(radius)
            assert np.array_equal(
                qc.counts, brute_counts(bucket_ids, qids, radius)
            ), f"counts diverge at radius {radius}"

    def test_counts_with_c3_grid(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        for radius in (1, 3, 9, 27):
            qc.expand(radius)
            assert np.array_equal(
                qc.counts, brute_counts(bucket_ids, qids, radius)
            )

    @given(st.integers(min_value=0, max_value=2**31),
           st.sampled_from([2, 3, 5]))
    @settings(max_examples=40, deadline=None)
    def test_property_counts_match_brute_force(self, seed, c):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(2, 60), rng.integers(1, 6)
        bucket_ids = rng.integers(-30, 30, size=(n, m))
        qids = rng.integers(-30, 30, size=m)
        counter = CollisionCounter(bucket_ids)
        qc = counter.start_query(qids)
        radius = 1
        for _ in range(4):
            if radius >= 2 * (counter.id_span + 1):
                break  # beyond this the engine saturates by design
            qc.expand(radius)
            assert np.array_equal(
                qc.counts, brute_counts(bucket_ids, qids, radius)
            )
            radius *= c

    def test_counts_monotone_in_radius(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        prev = np.zeros(120, dtype=np.int64)
        for radius in (1, 2, 4, 8, 16, 32):
            qc.expand(radius)
            assert np.all(qc.counts >= prev)
            prev = qc.counts.copy()

    def test_counts_bounded_by_m(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        qc.expand(1)
        qc.expand(64)
        assert np.all(qc.counts <= 7)


class TestExpansionProtocol:
    def test_touched_ids_are_new_collisions_only(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        first = qc.expand(1)
        before = brute_counts(bucket_ids, qids, 1).sum()
        assert first.size == before
        second = qc.expand(2)
        total = brute_counts(bucket_ids, qids, 2).sum()
        assert second.size == total - before

    def test_radius_must_grow_by_integer_factor(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        qc.expand(2)
        with pytest.raises(ValueError):
            qc.expand(3)
        with pytest.raises(ValueError):
            qc.expand(2)

    def test_non_positive_or_fractional_radius_rejected(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        with pytest.raises(ValueError):
            qc.expand(0)
        with pytest.raises(ValueError):
            qc.expand(1.5)

    def test_exhausted_after_huge_radius(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        assert not qc.exhausted
        qc.expand(1)
        qc.expand(2 ** 40)
        assert qc.exhausted
        assert np.all(qc.counts == 7)

    def test_newly_frequent_detects_crossings(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        threshold = 3
        reported = set()
        for radius in (1, 2, 4, 8, 16, 32, 64):
            qc.expand(radius)
            fresh = qc.newly_frequent(threshold)
            assert not (set(fresh.tolist()) & reported), \
                "an id crossed the threshold twice"
            reported |= set(fresh.tolist())
            expected = set(np.flatnonzero(
                brute_counts(bucket_ids, qids, radius) >= threshold
            ).tolist())
            assert reported == expected

    def test_frequent_helper(self, small_index):
        bucket_ids, qids = small_index
        qc = CollisionCounter(bucket_ids).start_query(qids)
        qc.expand(1)
        assert set(qc.frequent(2).tolist()) == set(
            np.flatnonzero(brute_counts(bucket_ids, qids, 1) >= 2).tolist()
        )


class TestRecountMode:
    def test_recount_matches_incremental_counts(self, small_index):
        bucket_ids, qids = small_index
        counter = CollisionCounter(bucket_ids)
        inc = counter.start_query(qids, incremental=True)
        rec = counter.start_query(qids, incremental=False)
        for radius in (1, 2, 4, 8):
            inc.expand(radius)
            rec.expand(radius)
            assert np.array_equal(inc.counts, rec.counts)

    def test_recount_costs_more_io(self, small_index):
        bucket_ids, qids = small_index
        pm_inc = PageManager()
        pm_rec = PageManager()
        inc = CollisionCounter(bucket_ids, page_manager=pm_inc) \
            .start_query(qids, incremental=True)
        rec = CollisionCounter(bucket_ids, page_manager=pm_rec) \
            .start_query(qids, incremental=False)
        pm_inc.reset()
        pm_rec.reset()
        for radius in (1, 2, 4, 8, 16):
            inc.expand(radius)
            rec.expand(radius)
        assert pm_rec.stats.reads >= pm_inc.stats.reads


class TestIOCharging:
    def test_expansion_charges_only_new_segments(self, small_index):
        bucket_ids, qids = small_index
        pm = PageManager()
        counter = CollisionCounter(bucket_ids, page_manager=pm)
        qc = counter.start_query(qids)
        pm.reset()
        qc.expand(1)
        first = pm.stats.reads
        assert first > 0
        qc.expand(2)
        # Each new segment costs at least one page, but re-reading covered
        # ranges would cost the full first-round amount again.
        assert pm.stats.reads >= first
