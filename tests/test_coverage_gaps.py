"""Direct tests for helpers previously only covered indirectly."""

import numpy as np
import pytest

from repro.baselines.lsb import _LSBTree
from repro.data import aerial_like, color_like, mnist_like, nus_like
from repro.storage import BPlusTree, PageManager


class TestLeafIndexOf:
    def test_maps_positions_to_leaves(self):
        tree = BPlusTree(list(range(10)), list(range(10)), leaf_capacity=4)
        assert tree.leaf_index_of(0) == 0
        assert tree.leaf_index_of(3) == 0
        assert tree.leaf_index_of(4) == 1
        assert tree.leaf_index_of(9) == 2

    def test_out_of_range_rejected(self):
        tree = BPlusTree([1, 2], [0, 1])
        with pytest.raises(IndexError):
            tree.leaf_index_of(2)


class TestLSBTreeInternals:
    @pytest.fixture()
    def tree(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((200, 8)) * 3
        return data, _LSBTree(data, m=4, u=6, rng=rng, leaf_capacity=32,
                              fanout=16, page_manager=None)

    def test_quantize_fits_in_u_bits(self, tree):
        data, lsb = tree
        values = lsb.quantize(data @ lsb.projections)
        assert values.min() >= 0
        assert values.max() < 2 ** 6

    def test_quantize_clamps_out_of_range_queries(self, tree):
        data, lsb = tree
        extreme = np.full((1, 4), 1e9)  # projections beyond the data span
        values = lsb.quantize(extreme)
        assert values.max() == 2 ** 6 - 1

    def test_query_key_is_tuple_of_words(self, tree):
        data, lsb = tree
        key = lsb.query_key(data[0])
        assert isinstance(key, tuple)
        assert all(isinstance(w, int) for w in key)

    def test_identical_point_maps_to_stored_key(self, tree):
        data, lsb = tree
        key = lsb.query_key(data[5])
        pos = lsb.btree.search_position(key)
        # The stored entry for point 5 must sit in the equal-key run.
        probe = pos
        found = False
        while probe < len(lsb.btree) and lsb.btree.key_at(probe) == key:
            if lsb.btree.value_at(probe) == 5:
                found = True
                break
            probe += 1
        assert found


class TestProfileFactoriesDirect:
    @pytest.mark.parametrize("factory,dim", [
        (mnist_like, 50), (color_like, 32), (aerial_like, 60),
        (nus_like, 500),
    ])
    def test_direct_call_matches_registry_shape(self, factory, dim):
        ds = factory(scale=0.001, n_queries=3, seed=1)
        assert ds.dim == dim
        assert ds.queries.shape[0] == 3
        assert np.all(np.isfinite(ds.data))
