"""Tests for the dataset CLI and metric-general ground truth."""

import numpy as np
import pytest

from repro.data import exact_knn, read_fvecs, read_ivecs
from repro.data.__main__ import main


class TestMetricGeneralExactKnn:
    def test_angular_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((50, 6))
        q = rng.standard_normal(6)
        ids, dists = exact_knn(data, q, 3, metric="angular")
        cosine = (data @ q) / (np.linalg.norm(data, axis=1)
                               * np.linalg.norm(q))
        angles = np.arccos(np.clip(cosine, -1, 1))
        order = np.argsort(angles, kind="stable")[:3]
        assert set(ids.tolist()) == set(order.tolist())
        assert np.allclose(np.sort(dists), np.sort(angles[order]))

    def test_hamming_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=(40, 16)).astype(np.float64)
        q = data[7]
        ids, dists = exact_knn(data, q, 1, metric="hamming")
        assert dists[0] == 0.0

    def test_callable_metric(self):
        rng = np.random.default_rng(2)
        data = rng.random((30, 4))
        q = rng.random(4)

        def manhattan(points, chunk):
            return np.array([np.abs(points - query).sum(axis=1)
                             for query in chunk])

        ids, dists = exact_knn(data, q, 2, metric=manhattan)
        ref = np.abs(data - q).sum(axis=1)
        assert dists[0] == pytest.approx(ref.min())

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            exact_knn(np.zeros((5, 2)), np.zeros(2), 1, metric="cosine-ish")

    def test_bad_callable_shape_rejected(self):
        with pytest.raises(ValueError):
            exact_knn(np.zeros((5, 2)), np.zeros(2), 1,
                      metric=lambda d, c: np.zeros((1, 3)))

    def test_angular_zero_vector_rejected(self):
        data = np.zeros((3, 4))
        with pytest.raises(ValueError):
            exact_knn(data, np.ones(4), 1, metric="angular")


class TestDatasetCLI:
    def test_generate_writes_files(self, tmp_path, capsys):
        rc = main(["generate", "color", "--scale", "0.001", "--queries",
                   "5", "--k", "3", "--out-dir", str(tmp_path)])
        assert rc == 0
        base = read_fvecs(tmp_path / "color-like.base.fvecs")
        queries = read_fvecs(tmp_path / "color-like.query.fvecs")
        gt_ids = read_ivecs(tmp_path / "color-like.gt.ivecs")
        assert base.shape[1] == 32
        assert queries.shape == (5, 32)
        assert gt_ids.shape == (5, 3)
        assert "wrote" in capsys.readouterr().out

    def test_generate_skips_gt_when_k_zero(self, tmp_path):
        main(["generate", "color", "--scale", "0.001", "--queries", "5",
              "--k", "0", "--out-dir", str(tmp_path)])
        assert not (tmp_path / "color-like.gt.ivecs").exists()

    def test_groundtruth_roundtrip(self, tmp_path):
        main(["generate", "color", "--scale", "0.001", "--queries", "5",
              "--k", "0", "--out-dir", str(tmp_path)])
        out = tmp_path / "gt"
        rc = main(["groundtruth", str(tmp_path / "color-like.base.fvecs"),
                   str(tmp_path / "color-like.query.fvecs"),
                   "--k", "4", "--out", str(out)])
        assert rc == 0
        ids = read_ivecs(f"{out}.ivecs")
        dists = read_fvecs(f"{out}.fvecs")
        assert ids.shape == (5, 4)
        assert np.all(np.diff(dists, axis=1) >= 0)

    def test_gt_ids_match_recomputation(self, tmp_path):
        main(["generate", "color", "--scale", "0.001", "--queries", "4",
              "--k", "5", "--out-dir", str(tmp_path)])
        base = read_fvecs(tmp_path / "color-like.base.fvecs")
        queries = read_fvecs(tmp_path / "color-like.query.fvecs")
        stored = read_ivecs(tmp_path / "color-like.gt.ivecs")
        # fvecs stores float32, so recompute on the *stored* vectors.
        ids, _ = exact_knn(base, queries, 5)
        assert np.array_equal(stored, ids.astype(np.int32))

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "imagenet"])
