"""Tests for dataset profiles, ground truth and vector-file formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    exact_knn,
    load_profile,
    pairwise_euclidean,
    read_fvecs,
    read_ivecs,
    write_fvecs,
    write_ivecs,
)
from repro.data.profiles import PROFILES


class TestProfiles:
    def test_registry_contains_paper_datasets(self):
        assert set(PROFILES) == {"mnist", "color", "aerial", "nus"}

    @pytest.mark.parametrize("name,dim", [
        ("mnist", 50), ("color", 32), ("aerial", 60), ("nus", 500),
    ])
    def test_dimensions_match_paper(self, name, dim):
        ds = load_profile(name, scale=0.02, n_queries=5, seed=0)
        assert ds.dim == dim
        assert ds.queries.shape == (5, dim)

    def test_scale_controls_size(self):
        small = load_profile("mnist", scale=0.02, n_queries=5)
        large = load_profile("mnist", scale=0.05, n_queries=5)
        assert large.n > small.n

    def test_minimum_size_floor(self):
        ds = load_profile("color", scale=0.001, n_queries=5)
        assert ds.n >= 995  # floor of 1000 minus held-out queries

    def test_reproducible(self):
        a = load_profile("color", scale=0.02, n_queries=5, seed=3)
        b = load_profile("color", scale=0.02, n_queries=5, seed=3)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.queries, b.queries)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            load_profile("imagenet")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_profile("mnist", scale=0.0)
        with pytest.raises(ValueError):
            load_profile("mnist", scale=2.0)

    def test_ground_truth_shape(self):
        ds = load_profile("color", scale=0.02, n_queries=4, seed=0)
        ids, dists = ds.ground_truth(3)
        assert ids.shape == (4, 3)
        assert np.all(np.diff(dists, axis=1) >= 0)

    def test_dataset_repr(self):
        ds = load_profile("color", scale=0.02, n_queries=4, seed=0)
        assert "color-like" in repr(ds)

    def test_color_is_nonnegative_histograms(self):
        ds = load_profile("color", scale=0.02, n_queries=4)
        assert np.all(ds.data >= 0)

    def test_nus_is_sparse(self):
        ds = load_profile("nus", scale=0.02, n_queries=4)
        assert np.count_nonzero(ds.data) / ds.data.size < 0.2


class TestExactKnn:
    def test_matches_naive(self, tiny):
        data, queries = tiny
        ids, dists = exact_knn(data, queries, 5)
        for q, ids_row, dists_row in zip(queries, ids, dists):
            naive = np.linalg.norm(data - q, axis=1)
            order = np.argsort(naive, kind="stable")[:5]
            assert np.allclose(dists_row, naive[order])
            assert set(ids_row.tolist()) == set(order.tolist())

    def test_single_query_vector(self, tiny):
        data, queries = tiny
        ids, dists = exact_knn(data, queries[0], 3)
        assert ids.shape == (3,)
        assert dists.shape == (3,)

    def test_blocking_does_not_change_answers(self, tiny):
        data, queries = tiny
        a = exact_knn(data, queries, 4, block=1)
        b = exact_knn(data, queries, 4, block=1000)
        assert np.array_equal(a[0], b[0])

    def test_k_equals_n(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((7, 3))
        ids, dists = exact_knn(data, data[0], 7)
        assert sorted(ids.tolist()) == list(range(7))

    def test_k_validated(self, tiny):
        data, queries = tiny
        with pytest.raises(ValueError):
            exact_knn(data, queries, 0)
        with pytest.raises(ValueError):
            exact_knn(data, queries, data.shape[0] + 1)

    def test_self_distance_zero(self, tiny):
        data, _ = tiny
        ids, dists = exact_knn(data, data[5], 1)
        assert ids[0] == 5
        assert dists[0] == 0.0

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_first_neighbor_is_minimum(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((30, 4))
        q = rng.standard_normal(4)
        _, dists = exact_knn(data, q, 1)
        assert dists[0] == pytest.approx(
            np.linalg.norm(data - q, axis=1).min())


class TestPairwiseEuclidean:
    def test_matches_norm(self, tiny):
        data, queries = tiny
        mat = pairwise_euclidean(data, queries)
        assert mat.shape == (queries.shape[0], data.shape[0])
        assert np.allclose(mat[0], np.linalg.norm(data - queries[0], axis=1))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_euclidean(np.zeros((3, 4)), np.zeros((2, 5)))


class TestVectorFiles:
    def test_fvecs_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((20, 7))
        path = tmp_path / "x.fvecs"
        write_fvecs(path, data)
        back = read_fvecs(path)
        assert back.shape == (20, 7)
        assert np.allclose(back, data, atol=1e-6)  # float32 payload

    def test_ivecs_roundtrip(self, tmp_path):
        data = np.arange(24, dtype=np.int32).reshape(4, 6)
        path = tmp_path / "x.ivecs"
        write_ivecs(path, data)
        assert np.array_equal(read_ivecs(path), data)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        assert read_fvecs(path).size == 0

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        np.array([-3, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(ValueError):
            read_fvecs(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.fvecs"
        np.array([4, 0, 0], dtype=np.int32).tofile(path)  # 4-dim, 2 values
        with pytest.raises(ValueError):
            read_fvecs(path)

    def test_inconsistent_dims_rejected(self, tmp_path):
        path = tmp_path / "mixed.ivecs"
        np.array([2, 1, 1, 3, 1, 1], dtype=np.int32).tofile(path)
        with pytest.raises(ValueError):
            read_ivecs(path)

    def test_write_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_fvecs(tmp_path / "x", np.empty((3, 0)))
