"""Tests for the raw-vector data-file layout model."""

import numpy as np
import pytest

from repro import C2LSH, PageManager
from repro.storage import DataFile


@pytest.fixture()
def vectors():
    # 64-byte pages, 8-byte entries at dim=1? Use dim=8 -> 64-byte objects.
    return np.random.default_rng(0).standard_normal((500, 8))


def make(vectors, layout, page_size=4096):
    pm = PageManager(page_size=page_size)
    pm.reset()
    df = DataFile(vectors, pm, layout=layout)
    pm.reset()  # drop the build write for read-cost assertions
    return pm, df


class TestConstruction:
    def test_build_charges_file_write(self, vectors):
        pm = PageManager()
        DataFile(vectors, pm)
        assert pm.stats.writes == pm.pages_for(500, 64)

    def test_pages_property(self, vectors):
        pm, df = make(vectors, "id")
        assert df.pages == pm.pages_for(500, 64)

    def test_no_manager_mode(self, vectors):
        df = DataFile(vectors, None)
        assert np.array_equal(df.read(np.array([3, 4])), vectors[[3, 4]])
        with pytest.raises(RuntimeError):
            df.pages

    def test_unknown_layout_rejected(self, vectors):
        with pytest.raises(ValueError):
            DataFile(vectors, None, layout="btree")


class TestReadCharging:
    def test_scattered_charges_per_object(self, vectors):
        pm, df = make(vectors, "scattered")
        df.read(np.array([0, 1, 2, 3]))
        assert pm.stats.reads == 4

    def test_id_layout_dedupes_within_page(self, vectors):
        pm, df = make(vectors, "id")
        # 4096/64 = 64 objects per page: ids 0..3 share one page.
        df.read(np.array([0, 1, 2, 3]))
        assert pm.stats.reads == 1

    def test_id_layout_counts_distinct_pages(self, vectors):
        pm, df = make(vectors, "id")
        df.read(np.array([0, 100, 200]))  # pages 0, 1, 3
        assert pm.stats.reads == 3

    def test_empty_read_free(self, vectors):
        pm, df = make(vectors, "id")
        df.read(np.empty(0, dtype=np.int64))
        assert pm.stats.reads == 0

    def test_returned_vectors_unaffected_by_layout(self, vectors):
        ids = np.array([7, 3, 410])
        for layout in ("scattered", "id", "zorder"):
            _, df = make(vectors, layout)
            assert np.array_equal(df.read(ids), vectors[ids])

    def test_sequential_scan_cost(self, vectors):
        pm, df = make(vectors, "id")
        df.sequential_scan()
        assert pm.stats.reads == pm.pages_for(500, 64)


class TestZorderLayout:
    def test_clusters_cost_less_than_scattered(self):
        """Verifying one spatial cluster touches few pages under z-order."""
        rng = np.random.default_rng(1)
        centers = rng.uniform(-50, 50, size=(10, 8))
        data = np.vstack([
            center + 0.5 * rng.standard_normal((100, 8))
            for center in centers
        ])
        perm = rng.permutation(len(data))  # ids carry no spatial order
        data = data[perm]
        cluster_ids = np.flatnonzero(
            np.linalg.norm(data - centers[0], axis=1) < 5.0
        )
        assert cluster_ids.size > 50

        pm_z, df_z = make(data, "zorder", page_size=1024)
        df_z.read(cluster_ids)
        pm_s, df_s = make(data, "scattered", page_size=1024)
        df_s.read(cluster_ids)
        assert pm_z.stats.reads < pm_s.stats.reads / 2

    def test_positions_are_a_permutation(self, vectors):
        _, df = make(vectors, "zorder")
        assert sorted(df._position.tolist()) == list(range(500))


class TestC2LSHIntegration:
    def test_default_layout_matches_legacy_charges(self, vectors):
        """Scattered layout reproduces one-read-per-candidate accounting."""
        pm = PageManager()
        index = C2LSH(seed=0, page_manager=pm).fit(vectors)
        result = index.query(vectors[0], k=3)
        assert result.stats.io_reads >= result.stats.candidates

    def test_zorder_layout_reduces_verification_io(self):
        rng = np.random.default_rng(2)
        centers = rng.uniform(-50, 50, size=(10, 8))
        data = np.vstack([
            center + 0.5 * rng.standard_normal((200, 8))
            for center in centers
        ])
        data = data[rng.permutation(len(data))]

        def total_io(layout):
            pm = PageManager(page_size=1024)
            index = C2LSH(seed=0, page_manager=pm,
                          data_layout=layout).fit(data)
            return sum(index.query(data[i], k=10).stats.io_reads
                       for i in range(10))

        assert total_io("zorder") < total_io("scattered")

    def test_same_answers_any_layout(self, vectors):
        results = []
        for layout in ("scattered", "id", "zorder"):
            index = C2LSH(seed=0, page_manager=PageManager(),
                          data_layout=layout).fit(vectors)
            results.append(index.query(vectors[5], k=5).ids)
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])
