"""Documentation-coverage meta-tests.

Deliverable (e) requires doc comments on every public item; these tests
make that property permanent by walking the package and asserting that
every public module, class, function and method carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        try:
            yield importlib.import_module(info.name)
        except ImportError:
            # Optional-dependency tiers (repro.kernels._numba without the
            # 'fast' extra installed) are only documented when importable.
            continue


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


def _public_members():
    seen = set()
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue  # re-exported third-party objects
            key = (obj.__module__, getattr(obj, "__qualname__", name))
            if key in seen:
                continue
            seen.add(key)
            yield key, obj


PUBLIC = list(_public_members())


@pytest.mark.parametrize("key,obj", PUBLIC, ids=[f"{k[0]}.{k[1]}"
                                                 for k, _ in PUBLIC])
def test_public_object_has_docstring(key, obj):
    assert obj.__doc__ and obj.__doc__.strip(), \
        f"{key[0]}.{key[1]} lacks a docstring"


def test_public_methods_have_docstrings():
    missing = []
    for (module, qualname), obj in PUBLIC:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") or not callable(member):
                continue
            if isinstance(member, property):
                member = member.fget
            doc = inspect.getdoc(member)
            if not doc:
                missing.append(f"{module}.{qualname}.{name}")
    assert not missing, f"methods without docstrings: {missing}"


def test_public_properties_have_docstrings():
    missing = []
    for (module, qualname), obj in PUBLIC:
        if not inspect.isclass(obj):
            continue
        for name, member in vars(obj).items():
            if name.startswith("_") or not isinstance(member, property):
                continue
            if not (member.fget and inspect.getdoc(member.fget)):
                missing.append(f"{module}.{qualname}.{name}")
    assert not missing, f"properties without docstrings: {missing}"
